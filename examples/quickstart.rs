//! Quickstart: repair a faulty DRAM device row through the LLC and watch
//! the data survive, end to end.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use relaxfault::prelude::*;

fn main() {
    // The paper's node: 8 × 8 GiB DDR3 DIMMs, 8 MiB 16-way LLC.
    let dram_cfg = DramConfig::isca16_reliability();
    let llc_cfg = CacheConfig::isca16_llc();

    // 1. Build a bit-accurate DRAM and write some data into bank 2, row 99.
    let mut dram = FaultyDram::new(&dram_cfg);
    let block_addr = {
        let loc = DramLoc {
            channel: 0,
            dimm: 0,
            rank: 0,
            bank: 2,
            row: 99,
            colblock: 7,
        };
        dram.address_map().encode(loc, 0).0
    };
    let payload: Vec<u8> = (0..64u32).map(|i| (i * 3 + 1) as u8).collect();
    dram.write_block(block_addr, &payload);
    println!("wrote 64 B to physical {block_addr:#x} (bank 2, row 99)");

    // 2. Device 3 of that rank develops a permanent row fault.
    let fault = FaultRegion {
        rank: RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        },
        device: 3,
        extent: Extent::Row { bank: 2, row: 99 },
    };
    dram.inject(fault);
    let corrupted = dram.read_raw(block_addr);
    println!(
        "raw DRAM read now differs from what was written: {}",
        if corrupted != payload {
            "yes (stuck-at bits)"
        } else {
            "no"
        }
    );

    // 3. The RelaxFault-aware memory controller repairs the fault: the
    //    row's 1 KiB of device data coalesces into 16 locked LLC lines.
    let mut controller = RepairController::new(dram, &llc_cfg, 1);
    controller
        .repair(&[fault])
        .expect("a row fault is well within budget");
    println!(
        "repaired with {} bytes of LLC ({} lines), ≤1 way in any set",
        controller.repair_bytes(),
        controller.repair_bytes() / 64,
    );

    // 4. Reads through the controller reconstruct the data (Figure 6b);
    //    writes keep the repair lines coherent.
    let read_back = controller.read_block(block_addr);
    assert_eq!(read_back, payload);
    println!("read through the repair path matches the original: yes");

    let new_payload: Vec<u8> = (0..64u32).map(|i| (255 - i) as u8).collect();
    controller.write_block(block_addr, &new_payload);
    assert_eq!(controller.read_block(block_addr), new_payload);
    println!("overwrite after repair also round-trips: yes");

    // 5. Metadata cost of all this (paper Table 1).
    let overhead = StorageOverhead::for_system(&DramConfig::isca16_reliability(), &llc_cfg);
    println!(
        "dedicated metadata: {} B total ({} B faulty-bank table, {} B coalescer masks, {} B tag bits)",
        overhead.total(),
        overhead.faulty_bank_table,
        overhead.data_coalescer,
        overhead.llc_tag_extension,
    );
}
