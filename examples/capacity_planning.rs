//! Capacity planning: how many LLC ways should a deployment budget for
//! repair, and what does each budget buy?
//!
//! Sweeps the per-set way limit and prints, for every fault shape the
//! field studies report, whether the mechanism can repair it and at what
//! LLC cost — then the fleet-level coverage each budget achieves.
//!
//! ```bash
//! cargo run --release --example capacity_planning -- 20000
//! ```

use relaxfault::prelude::*;
use relaxfault::util::table::{format_bytes, format_pct, Table};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let dram = DramConfig::isca16_reliability();
    let llc = CacheConfig::isca16_llc();
    let rank = RankId {
        channel: 0,
        dimm: 0,
        rank: 0,
    };

    // Per-shape repair costs across way budgets.
    let shapes: Vec<(&str, Extent)> = vec![
        (
            "single bit",
            Extent::Bit {
                bank: 0,
                row: 10,
                col: 20,
            },
        ),
        ("single row", Extent::Row { bank: 0, row: 10 }),
        (
            "column (1 subarray)",
            Extent::Column {
                bank: 0,
                col: 8,
                row_start: 0,
                row_count: 512,
            },
        ),
        (
            "cluster (64 rows)",
            Extent::RowCluster {
                bank: 0,
                row_start: 0,
                row_count: 64,
            },
        ),
        (
            "cluster (1024 rows)",
            Extent::RowCluster {
                bank: 0,
                row_start: 0,
                row_count: 1024,
            },
        ),
        (
            "whole bank",
            Extent::Banks {
                banks: relaxfault::faults::BankSet::one(0),
            },
        ),
    ];
    let mut t = Table::new(&["fault shape", "1-way", "4-way", "16-way", "FreeFault 4-way"]);
    for (name, extent) in &shapes {
        let fault = FaultRegion {
            rank,
            device: 3,
            extent: *extent,
        };
        let mut cells = vec![name.to_string()];
        for ways in [1, 4, 16] {
            let mut rf = RelaxFault::new(&dram, &llc, ways);
            cells.push(if rf.try_repair(&[fault]) {
                format_bytes(rf.bytes_used())
            } else {
                "unrepairable".into()
            });
        }
        let mut ff = FreeFault::new(&dram, &llc, 4);
        cells.push(if ff.try_repair(&[fault]) {
            format_bytes(ff.bytes_used())
        } else {
            "unrepairable".into()
        });
        t.row(&cells);
    }
    println!("== per-fault repair cost (LLC bytes locked) ==");
    print!("{}", t.render());

    // Fleet-level coverage per budget.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms: Vec<Scenario> = [1u32, 2, 4, 8, 16]
        .into_iter()
        .map(|w| {
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: w })
        })
        .collect();
    let mut results = run_scenarios(
        &arms,
        &RunConfig {
            trials,
            seed: 7,
            threads,
            chunk_size: 0,
        },
    );
    let mut t2 = Table::new(&["way limit", "coverage", "LLC @ p90", "LLC @ p99"]);
    for (w, r) in [1u32, 2, 4, 8, 16].into_iter().zip(results.iter_mut()) {
        let p90 = r
            .bytes_for_coverage(0.90)
            .map(format_bytes)
            .unwrap_or_else(|| "-".into());
        let p99 = r
            .bytes_for_coverage(0.99)
            .map(format_bytes)
            .unwrap_or_else(|| "-".into());
        t2.row(&[format!("{w}"), format_pct(r.coverage()), p90, p99]);
    }
    println!("\n== fleet coverage vs way budget ({trials} node lifetimes) ==");
    print!("{}", t2.render());
    println!("\nreading: the paper deploys 1 way (90% coverage, <100 KiB) or 4 ways (~97%).");
}
