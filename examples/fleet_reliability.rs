//! Fleet reliability study: what does RelaxFault buy a 16,384-node
//! supercomputer over six years?
//!
//! Compares no repair, DDR4 post-package repair, FreeFault, and RelaxFault
//! on one shared Monte Carlo fault population and reports repair coverage,
//! DUEs, SDCs, and DIMM replacements.
//!
//! ```bash
//! cargo run --release --example fleet_reliability -- 50000
//! ```

use relaxfault::prelude::*;
use relaxfault::util::table::{format_bytes, format_pct, Table};

const NODES: u64 = 16_384;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let base = Scenario::isca16_baseline(); // ReplA maintenance
    let arms = vec![
        base.clone(),
        base.clone().with_mechanism(Mechanism::Ppr),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    println!(
        "simulating {trials} node lifetimes × {} arms on {threads} threads ...",
        arms.len()
    );
    let t0 = std::time::Instant::now();
    let mut results = run_scenarios(
        &arms,
        &RunConfig {
            trials,
            seed: 42,
            threads,
            chunk_size: 0,
        },
    );
    println!("done in {:?}\n", t0.elapsed());

    let mut t = Table::new(&[
        "mechanism",
        "coverage",
        "LLC @ p90",
        "DUEs/system",
        "SDCs/system",
        "replacements",
    ]);
    let baseline_dues = results[0].dues_per_system(NODES);
    let baseline_repl = results[0].replacements_per_system(NODES).max(1e-9);
    for r in results.iter_mut() {
        let p90 = r
            .bytes_for_coverage(0.90)
            .map(format_bytes)
            .unwrap_or_else(|| "-".into());
        t.row(&[
            r.label.clone(),
            format_pct(r.coverage()),
            p90,
            format!("{:.2}", r.dues_per_system(NODES)),
            format!("{:.4}", r.sdcs_per_system(NODES)),
            format!("{:.2}", r.replacements_per_system(NODES)),
        ]);
    }
    print!("{}", t.render());

    let rf = &results[4];
    println!(
        "\nRelaxFault-4way: {} fewer DUEs and {} of the module replacements avoided",
        format_pct((baseline_dues - rf.dues_per_system(NODES)) / baseline_dues.max(1e-9)),
        format_pct(1.0 - rf.replacements_per_system(NODES) / baseline_repl),
    );
    println!(
        "worst per-set repair occupancy seen anywhere: {} way(s)",
        rf.max_ways_seen
    );
}
