//! Performance impact: what does locking LLC capacity for repair cost a
//! running application?
//!
//! Runs the LULESH stand-in (the paper's most capacity-sensitive
//! workload) and the compute-heavy SPEC mix across the Figure 15 capacity
//! sweep, reporting weighted speedup and relative DRAM dynamic power.
//!
//! ```bash
//! cargo run --release --example performance_impact -- 400000
//! ```

use relaxfault::perfsim::workload::catalog;
use relaxfault::prelude::*;
use relaxfault::util::table::Table;

fn main() {
    let instr: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let cfg = SimConfig {
        instructions_per_core: instr,
        ..SimConfig::isca16()
    };
    let losses = [
        CapacityLoss::None,
        CapacityLoss::RandomLines { bytes: 100 << 10 },
        CapacityLoss::Ways(1),
        CapacityLoss::Ways(4),
    ];

    for workload in [catalog::lulesh(), catalog::spec_comp()] {
        // Solo IPCs for the weighted-speedup denominator.
        let mut solo = Vec::new();
        for spec in &workload.cores {
            let alone = relaxfault::perfsim::Workload {
                name: format!("{}-solo", spec.name),
                cores: vec![spec.clone()],
            };
            solo.push(Simulation::run(&cfg, &alone, CapacityLoss::None, 5).per_core[0].ipc);
        }

        let mut t = Table::new(&["LLC repair budget", "weighted speedup", "rel. DRAM power"]);
        let mut base_power = 0.0;
        for (i, loss) in losses.iter().enumerate() {
            let r = Simulation::run(&cfg, &workload, *loss, 5);
            let ws = WeightedSpeedup::compute(&solo, &r);
            let p = r.dram_dynamic_power_mw(&cfg.energy);
            if i == 0 {
                base_power = p.max(1e-12);
            }
            t.row(&[
                loss.label(),
                format!("{ws}"),
                format!("{:.1}%", p / base_power * 100.0),
            ]);
        }
        println!("== {} ({instr} instructions/core) ==", workload.name);
        print!("{}", t.render());
        println!();
    }
    println!("reading: realistic repair footprints (100 KiB, ≤1 way/set) are free;");
    println!("even the pessimistic 4-way lock only dents the capacity-hungry workload.");
}
