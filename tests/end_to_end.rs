//! Cross-crate integration: sampled faults flow through planning, the
//! repair data path, and the reliability engine coherently.

use relaxfault::prelude::*;
use relaxfault_util::rng::Rng64;

/// Faults sampled by the Monte Carlo model are repaired by the same
/// planner the reliability engine uses, and the data path then serves
/// bit-exact data for every repairable fine-grained fault.
#[test]
fn sampled_faults_repair_and_serve_data() {
    let dram_cfg = DramConfig::isca16_reliability();
    let llc_cfg = CacheConfig::isca16_llc();
    // Crank the rates so a sampled node definitely has faults.
    let model = FaultModel::isca16(FitRates::cielo().scaled(300.0), 6.0);
    let mut rng = Rng64::seed_from_u64(2016);

    let mut repaired_faults = 0;
    let mut nodes = 0;
    while repaired_faults < 8 && nodes < 200 {
        nodes += 1;
        let node = model.sample_node(&dram_cfg, &mut rng);
        let mut dram = FaultyDram::new(&dram_cfg);
        // Write a recognizable pattern into a block of each fault region.
        let mut probes = Vec::new();
        for (i, event) in node.permanent().enumerate() {
            for region in &event.regions {
                // ECC devices carry check bits, not payload: their faults
                // never corrupt the 64-byte line, so probe data devices.
                if region.device >= dram_cfg.data_devices_per_rank {
                    continue;
                }
                if let Extent::Row { bank, row } = region.extent {
                    let loc = DramLoc {
                        channel: region.rank.channel,
                        dimm: region.rank.dimm,
                        rank: region.rank.rank,
                        bank,
                        row,
                        colblock: (i as u32 * 13) % 256,
                    };
                    let addr = dram.address_map().encode(loc, 0).0;
                    let data: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(i as u8 + 3)).collect();
                    dram.write_block(addr, &data);
                    probes.push((addr, data, *region));
                }
            }
        }
        for (_, _, region) in &probes {
            dram.inject(*region);
        }
        let mut controller = RepairController::new(dram, &llc_cfg, 4);
        for (addr, data, region) in probes {
            if controller.repair(&[region]).is_ok() {
                assert_eq!(
                    controller.read_block(addr),
                    data,
                    "repaired row must serve original data"
                );
                assert_ne!(
                    controller.dram().read_raw(addr),
                    data,
                    "the DRAM underneath stays faulty"
                );
                repaired_faults += 1;
            }
        }
    }
    assert!(
        repaired_faults >= 8,
        "found only {repaired_faults} repairable row faults"
    );
}

/// The planner the data-path controller embeds agrees with the standalone
/// planner on cost and feasibility.
#[test]
fn controller_and_planner_agree() {
    let dram_cfg = DramConfig::isca16_reliability();
    let llc_cfg = CacheConfig::isca16_llc();
    let rank = RankId {
        channel: 1,
        dimm: 0,
        rank: 0,
    };
    let faults = [
        FaultRegion {
            rank,
            device: 0,
            extent: Extent::Bit {
                bank: 0,
                row: 0,
                col: 0,
            },
        },
        FaultRegion {
            rank,
            device: 5,
            extent: Extent::Row { bank: 3, row: 1000 },
        },
        FaultRegion {
            rank,
            device: 9,
            extent: Extent::Column {
                bank: 7,
                col: 88,
                row_start: 512,
                row_count: 512,
            },
        },
    ];
    // Two ways: independent faults can legitimately collide in a set.
    let mut planner = RelaxFault::new(&dram_cfg, &llc_cfg, 2);
    let mut controller = RepairController::new(FaultyDram::new(&dram_cfg), &llc_cfg, 2);
    for f in &faults {
        controller.dram_mut().inject(*f);
        assert!(planner.try_repair(&[*f]));
        controller.repair(&[*f]).unwrap();
        assert_eq!(planner.bytes_used(), controller.repair_bytes());
    }
    assert_eq!(planner.bytes_used(), (1 + 16 + 512) * 64);
}

/// Repair planning, ECC classification, and the fault model compose into
/// the reliability engine without losing faults: every permanent fault is
/// either repaired or counted unrepaired.
#[test]
fn engine_accounts_for_every_fault() {
    let arms = vec![
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
            .with_replacement(ReplacementPolicy::None),
        Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None),
    ];
    let results = run_scenarios(
        &arms,
        &RunConfig {
            trials: 1500,
            seed: 99,
            threads: 2,
            chunk_size: 0,
        },
    );
    // Same population.
    assert_eq!(results[0].permanent_faults, results[1].permanent_faults);
    // No-repair leaves everything unrepaired.
    assert_eq!(results[1].unrepaired_faults, results[1].permanent_faults);
    // The repair arm splits the same total.
    assert!(results[0].unrepaired_faults < results[0].permanent_faults);
    let repaired_nodes = results[0].fully_repaired_nodes;
    assert!(repaired_nodes <= results[0].faulty_nodes);
}
