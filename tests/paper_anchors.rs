//! Statistical anchors against the paper's published numbers.
//!
//! Trial counts are kept test-sized; tolerances are set accordingly. The
//! bench harness (`relaxfault-bench`) reruns everything at full scale —
//! see EXPERIMENTS.md for the calibrated comparison.

use relaxfault::prelude::*;

fn run(arms: &[Scenario], trials: u64) -> Vec<ScenarioResult> {
    run_scenarios(
        arms,
        &RunConfig {
            trials,
            seed: 1609,
            threads: 2,
            chunk_size: 0,
        },
    )
}

/// Figure 10's headline ordering and rough levels: PPR ≈ 73%,
/// FreeFault-1way ≈ 84%, RelaxFault-1way ≈ 90%, RelaxFault-4way ≈ 97%.
#[test]
fn coverage_anchors() {
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone().with_mechanism(Mechanism::Ppr),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    let r = run(&arms, 12_000);
    let cov: Vec<f64> = r.iter().map(|x| x.coverage()).collect();
    assert!(
        (cov[0] - 0.73).abs() < 0.05,
        "PPR coverage {:.3} (paper 0.73)",
        cov[0]
    );
    assert!(
        (cov[1] - 0.84).abs() < 0.05,
        "FreeFault-1 {:.3} (paper 0.84)",
        cov[1]
    );
    assert!(
        (cov[2] - 0.90).abs() < 0.05,
        "RelaxFault-1 {:.3} (paper 0.90)",
        cov[2]
    );
    assert!(
        (cov[3] - 0.965).abs() < 0.04,
        "RelaxFault-4 {:.3} (paper ~0.97)",
        cov[3]
    );
    // Strict ordering.
    assert!(cov[0] < cov[1] && cov[1] < cov[2] && cov[2] < cov[3]);
    // RelaxFault never exceeded its way limit.
    assert!(r[2].max_ways_seen <= 1);
    assert!(r[3].max_ways_seen <= 4);
}

/// Figure 8's hashing effect: set-index hashing matters a lot for
/// FreeFault (columns collapse without it) and little for RelaxFault.
#[test]
fn hashing_anchors() {
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 })
            .without_set_hashing(),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
            .without_set_hashing(),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
    ];
    let r = run(&arms, 12_000);
    let ff_gain = r[1].coverage() - r[0].coverage();
    let rf_gain = (r[3].coverage() - r[2].coverage()).abs();
    assert!(
        ff_gain > 0.06,
        "hashing must lift FreeFault ~10 points, got {ff_gain:.3}"
    );
    assert!(
        rf_gain < 0.03,
        "RelaxFault is insensitive to hashing, got {rf_gain:.3}"
    );
}

/// The paper's 82 KiB headline: nearly every node RelaxFault-1way repairs
/// fits in well under 128 KiB of LLC.
#[test]
fn capacity_headline() {
    let arms = vec![Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None)];
    let mut r = run(&arms, 12_000);
    let within = r[0].coverage_at_bytes(128 << 10);
    let total = r[0].coverage();
    assert!(
        within > total - 0.035,
        "coverage at 128 KiB ({within:.3}) should nearly match the way-limit coverage ({total:.3})"
    );
}

/// Figure 12's repair effect: RelaxFault cuts DUEs by roughly half, and
/// no mechanism can beat that by much (the ordering effect).
#[test]
fn due_reduction_anchor() {
    let base = Scenario::isca16_baseline();
    let arms = vec![
        base.clone(),
        base.clone().with_mechanism(Mechanism::Ppr),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    let r = run(&arms, 60_000);
    let none = r[0].dues as f64;
    assert!(none > 0.0, "need some DUEs to compare");
    let ppr = r[1].dues as f64;
    let rf = r[2].dues as f64;
    assert!(rf < none, "repair must reduce DUEs");
    assert!(
        rf <= ppr + 2.0,
        "RelaxFault is at least as effective as PPR"
    );
    let reduction = 1.0 - rf / none;
    assert!(
        (0.25..=0.75).contains(&reduction),
        "RelaxFault DUE reduction {reduction:.2} should be roughly half (paper 0.52)"
    );
}

/// Figure 14's availability effect: ReplB replaces orders of magnitude
/// more DIMMs than ReplA, and repair slashes both.
#[test]
fn replacement_anchor() {
    let base = Scenario::isca16_baseline();
    let replb = ReplacementPolicy::AfterErrors {
        trigger_prob: Scenario::REPLB_TRIGGER,
    };
    let arms = vec![
        base.clone(),                         // ReplA, no repair
        base.clone().with_replacement(replb), // ReplB, no repair
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
            .with_replacement(replb), // ReplB + repair
    ];
    let r = run(&arms, 20_000);
    assert!(
        r[1].replacements > r[0].replacements * 20,
        "ReplB ({}) must dwarf ReplA ({})",
        r[1].replacements,
        r[0].replacements
    );
    assert!(
        (r[2].replacements as f64) < r[1].replacements as f64 / 10.0,
        "RelaxFault must save >10x of ReplB replacements ({} vs {})",
        r[2].replacements,
        r[1].replacements
    );
    let saved = 1.0 - r[2].replacements as f64 / r[1].replacements as f64;
    assert!(
        saved > 0.85,
        "paper: 87% of modules repaired transparently, got {saved:.2}"
    );
}

/// Table 1: the metadata budget is byte-exact.
#[test]
fn table1_anchor() {
    let o = StorageOverhead::for_system(
        &DramConfig::isca16_reliability(),
        &CacheConfig::isca16_llc(),
    );
    assert_eq!(o.total(), 16_520);
}

/// Figure 10's caption: ~12% of nodes have any permanent fault after
/// 6 years at Cielo rates.
#[test]
fn faulty_fraction_anchor() {
    let arms = vec![Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None)];
    let r = run(&arms, 12_000);
    let frac = r[0].faulty_nodes as f64 / r[0].trials as f64;
    assert!(
        (0.09..0.16).contains(&frac),
        "faulty-node fraction {frac:.3} (paper ~0.12)"
    );
}

/// §4.1.2: "applying rates from other reported systems has little impact"
/// — Hopper rates shift coverage only slightly.
#[test]
fn hopper_rates_insensitivity() {
    let mut hopper_arm = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    hopper_arm.fault_model.rates = FitRates::hopper();
    let cielo_arm = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    let r = run(&[cielo_arm, hopper_arm], 10_000);
    // Hopper's permanent-fault mix is coarser (bank 3.0 / multi-bank 0.9 /
    // multi-rank 0.4 FIT vs Cielo's 2.2 / 0.3 / 0.2), so its coverage sits
    // several points lower; "little impact" means the conclusions — not
    // the exact percentage — carry over.
    let delta = (r[0].coverage() - r[1].coverage()).abs();
    assert!(
        delta < 0.12,
        "coverage gap between Cielo and Hopper rates: {delta:.3}"
    );
    assert!(
        r[1].coverage() > 0.75,
        "Hopper coverage still high: {:.3}",
        r[1].coverage()
    );
}
