//! The observability determinism contract, end to end: with tracing on,
//! the merged event stream of a Monte Carlo run is *byte-identical* across
//! thread counts, because events are merged on `(trial, group, seq)` —
//! never on which worker thread emitted them. Lives in its own
//! integration-test process so the process-wide trace filter cannot leak
//! into unrelated unit tests.

use relaxfault::prelude::*;
use relaxfault::util::json::Value;
use relaxfault::util::obs;

fn smoke_arms() -> Vec<Scenario> {
    // The smoke scenario: RelaxFault at 10x FIT rates, so a few hundred
    // trials produce a healthy density of fault and repair events.
    vec![Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None)
        .with_fit_scale(10.0)]
}

#[test]
fn merged_trace_stream_is_byte_identical_across_thread_counts() {
    let _serial = obs::exclusive();
    obs::reset();
    obs::set_filter("relsim=debug,faults=trace").expect("valid filter");

    let arms = smoke_arms();
    let mut reference: Option<(Vec<ScenarioResult>, String)> = None;
    for threads in [1usize, 2, 4] {
        obs::reset();
        let results = run_scenarios(
            &arms,
            &RunConfig {
                trials: 200,
                seed: 2016,
                threads,
                chunk_size: 0,
            },
        );
        assert_eq!(obs::dropped_events(), 0, "stream truncated at {threads}");
        let events = obs::drain_events();
        assert!(
            events.iter().any(|e| e.name == "trial_eval"),
            "no per-trial events at threads={threads}"
        );
        assert!(events.iter().any(|e| e.name == "inject"));
        let text = obs::render_text(&events);
        match &reference {
            None => reference = Some((results, text)),
            Some((r0, t0)) => {
                assert_eq!(&results, r0, "results diverged at threads={threads}");
                assert_eq!(
                    &text, t0,
                    "merged trace stream diverged at threads={threads}"
                );
            }
        }
    }

    obs::set_filter("").expect("valid filter");
    obs::set_metrics_enabled(false);
    obs::reset();
}

#[test]
fn snapshot_counters_agree_with_engine_results() {
    let _serial = obs::exclusive();
    obs::reset();
    obs::set_metrics_enabled(true);

    let arms = smoke_arms();
    let run = RunConfig {
        trials: 300,
        seed: 7,
        threads: 4,
        chunk_size: 0,
    };
    let results = run_scenarios(&arms, &run);

    let snap = obs::snapshot();
    let parsed = Value::parse(&snap.to_pretty()).expect("snapshot is valid JSON");
    let counter = |name: &str| {
        parsed
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("counter `{name}` missing"))
    };
    // Counters are exact under any thread schedule: they must equal the
    // engine's own accounting.
    assert_eq!(counter("relsim.trial_evals"), run.trials as f64);
    assert_eq!(
        counter("relsim.faulty_nodes"),
        results[0].faulty_nodes as f64
    );
    assert_eq!(
        counter("relsim.fully_repaired_nodes"),
        results[0].fully_repaired_nodes as f64
    );
    assert!(counter("plan.relaxfault.attempts") > 0.0);
    assert!(counter("faults.injected_total") > 0.0);
    // The per-trial duration histogram timed every (trial, group) pair
    // that was actually sampled; the zero-fault fast path skips the rest
    // and counts them separately, so the two together cover every trial.
    let trial_ns_count = parsed
        .get("histograms")
        .and_then(|h| h.get("relsim.trial_ns"))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_f64)
        .expect("relsim.trial_ns histogram");
    let skips = counter("relsim.fast_path_skips");
    assert!(skips > 0.0, "10x rates still leave most trials clean");
    assert_eq!(trial_ns_count + skips, run.trials as f64);

    obs::set_metrics_enabled(false);
    obs::reset();
}
