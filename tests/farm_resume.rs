//! Farm crash/resume matrix: kill the farm at every job boundary and
//! mid-job, across worker counts {1, 2, 4}, resume, and prove the final
//! artifact tree — job outputs, per-job manifests, and the `farm_state`
//! ledger — is byte-identical to an uninterrupted run. A drifted ledger
//! (tampered digests or a changed matrix) must be rejected outright, not
//! silently re-run.
//!
//! This is the farm counterpart of the fleet checkpoint matrix in
//! `crates/relsim/tests/fleet_crash_matrix.rs`.

use relaxfault_farm::{CrashPoint, Farm, FarmConfig, JobSpec};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rf_farm_resume_{tag}_{}_{n}", std::process::id()))
}

/// The synthetic matrix: a diamond feeding a chain, six jobs total. Each
/// job reads its dependencies' outputs and folds them into its own, so
/// any dependency-order violation or missed re-run changes the bytes.
fn matrix() -> Vec<JobSpec> {
    vec![
        JobSpec::new("a").cost(5),
        JobSpec::new("b").dep("a").cost(3),
        JobSpec::new("c").dep("a").cost(4),
        JobSpec::new("d").dep("b").dep("c").cost(2),
        JobSpec::new("e").dep("d"),
        JobSpec::new("f").dep("e"),
    ]
}

fn job_body(
    id: &str,
    deps: &[String],
) -> impl Fn(&relaxfault_farm::JobCtx) -> Result<(), String> + Send + 'static {
    let id = id.to_string();
    let deps = deps.to_vec();
    move |ctx| {
        let out = ctx.dir.join("out");
        fs::create_dir_all(&out).map_err(|e| e.to_string())?;
        let mut folded = String::new();
        for d in &deps {
            let text = fs::read_to_string(out.join(format!("{d}.txt")))
                .map_err(|e| format!("dep {d} output missing: {e}"))?;
            folded.push_str(text.trim());
            folded.push(',');
        }
        fs::write(out.join(format!("{id}.txt")), format!("{id}({folded})\n"))
            .map_err(|e| e.to_string())
    }
}

fn build_farm(dir: &Path, workers: usize, crash_at: Option<CrashPoint>, resume: bool) -> Farm {
    let mut cfg = FarmConfig::new(dir);
    cfg.workers = workers;
    cfg.crash_at = crash_at;
    cfg.resume = resume;
    let mut farm = Farm::new(cfg);
    for s in matrix() {
        let body = job_body(&s.id, &s.deps);
        farm.job(s, body);
    }
    farm
}

/// Every file under `dir`, relative path -> bytes.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap_or_else(|e| panic!("{}: {e}", d.display())) {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).expect("readable file"));
            }
        }
    }
    out
}

fn assert_trees_identical(reference: &BTreeMap<String, Vec<u8>>, got: &Path, what: &str) {
    let got_tree = tree(got);
    let ref_names: Vec<&String> = reference.keys().collect();
    let got_names: Vec<&String> = got_tree.keys().collect();
    assert_eq!(got_names, ref_names, "{what}: file set differs");
    for (name, bytes) in reference {
        assert_eq!(
            got_tree[name], *bytes,
            "{what}: {name} differs from the uninterrupted run"
        );
    }
}

fn reference_tree() -> BTreeMap<String, Vec<u8>> {
    let dir = scratch_dir("reference");
    let report = build_farm(&dir, 1, None, false)
        .run()
        .expect("reference run");
    assert_eq!(report.completed.len(), 6);
    assert!(report.failed.is_empty() && report.blocked.is_empty());
    let t = tree(&dir);
    fs::remove_dir_all(&dir).expect("cleanup");
    assert!(
        t.keys().any(|k| k.ends_with("farm_state.json")),
        "ledger missing from reference tree"
    );
    t
}

#[test]
fn crash_matrix_resumes_byte_identical() {
    let reference = reference_tree();
    for workers in [1usize, 2, 4] {
        for job in ["a", "b", "c", "d", "e", "f"] {
            for mid in [false, true] {
                let crash = if mid {
                    CrashPoint::MidJob(job.to_string())
                } else {
                    CrashPoint::Boundary(job.to_string())
                };
                let what = format!("workers={workers} crash={crash:?}");
                let dir = scratch_dir("crash");
                let err = build_farm(&dir, workers, Some(crash.clone()), false)
                    .run()
                    .expect_err(&format!("{what}: crash point must fire"));
                assert!(
                    err.contains("simulated crash") && err.contains("--resume"),
                    "{what}: unexpected crash error: {err}"
                );
                let report = build_farm(&dir, workers, None, true)
                    .run()
                    .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
                assert_eq!(
                    report.completed.len() + report.skipped.len(),
                    6,
                    "{what}: resume must finish all six jobs"
                );
                if !mid {
                    // Boundary crash: the crashed job's record persisted, so
                    // resume must skip it rather than re-run it.
                    assert!(
                        report.skipped.iter().any(|s| s == job),
                        "{what}: boundary-crashed job must be skipped on resume"
                    );
                }
                assert_trees_identical(&reference, &dir, &what);
                fs::remove_dir_all(&dir).expect("cleanup");
            }
        }
    }
}

#[test]
fn mid_job_crash_reruns_the_job() {
    // A mid-job crash persists nothing for the job, so the resume must
    // re-run it (attempt count 1 in the fresh manifest) — proven here by
    // observing the job body execute again.
    let dir = scratch_dir("rerun");
    let runs: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let build = |crash: Option<CrashPoint>, resume: bool| {
        let mut cfg = FarmConfig::new(&dir);
        cfg.crash_at = crash;
        cfg.resume = resume;
        let mut farm = Farm::new(cfg);
        for s in matrix() {
            let body = job_body(&s.id, &s.deps);
            let runs = Arc::clone(&runs);
            let id = s.id.clone();
            farm.job(s, move |ctx| {
                runs.lock().expect("runs").push(id.clone());
                body(ctx)
            });
        }
        farm
    };
    build(Some(CrashPoint::MidJob("d".into())), false)
        .run()
        .expect_err("crash fires");
    let before: Vec<String> = runs.lock().expect("runs").clone();
    assert!(before.contains(&"d".to_string()));
    build(None, true).run().expect("resume");
    let after: Vec<String> = runs.lock().expect("runs").clone();
    let d_runs = after.iter().filter(|r| *r == "d").count();
    assert_eq!(d_runs, 2, "mid-job-crashed job must re-run on resume");
    let a_runs = after.iter().filter(|r| *r == "a").count();
    assert_eq!(a_runs, 1, "completed jobs must not re-run");
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Flips the first hex digit of the quoted digest in `line`, keeping it
/// a *valid* 16-digit hex string so the failure is a digest mismatch,
/// never a parse error.
fn flip_digest(line: &str) -> String {
    let at = line.find("\"0x").expect("hex digest") + 3;
    let old = line.as_bytes()[at] as char;
    let new = if old == '0' { '1' } else { '0' };
    let mut flipped = line.to_string();
    flipped.replace_range(at..at + 1, &new.to_string());
    flipped
}

#[test]
fn tampered_ledger_is_rejected_not_rerun() {
    // Crash mid-run, then tamper the ledger three ways; every resume
    // attempt must fail with a drift error before any job executes.
    let dir = scratch_dir("tamper");
    build_farm(&dir, 2, Some(CrashPoint::Boundary("c".into())), false)
        .run()
        .expect_err("crash fires");
    let ledger_path = relaxfault_farm::ledger_path(&dir);
    let pristine = fs::read_to_string(&ledger_path).expect("ledger");

    // (1) Tampered matrix digest.
    let digest_line = pristine
        .lines()
        .find(|l| l.contains("\"spec_digest\""))
        .expect("spec_digest line");
    let tampered = pristine.replace(digest_line, &flip_digest(digest_line));
    assert_ne!(tampered, pristine);
    fs::write(&ledger_path, &tampered).expect("write");
    let err = resume_counting(&dir);
    assert!(
        err.contains("farm_state drift") && err.contains("matrix digest"),
        "matrix digest tamper: {err}"
    );

    // (2) Tampered per-job digest (matrix digest left intact).
    let job_digest_line = pristine
        .lines()
        .filter(|l| l.contains("\"digest\"") && !l.contains("spec_digest"))
        .nth(1)
        .expect("a job digest line");
    fs::write(
        &ledger_path,
        pristine.replace(job_digest_line, &flip_digest(job_digest_line)),
    )
    .expect("write");
    let err = resume_counting(&dir);
    assert!(
        err.contains("farm_state drift") && err.contains("!= current"),
        "job digest tamper: {err}"
    );

    // (3) A changed matrix spec against the pristine ledger.
    fs::write(&ledger_path, &pristine).expect("restore");
    let mut cfg = FarmConfig::new(&dir);
    cfg.resume = true;
    let mut farm = Farm::new(cfg);
    for s in matrix() {
        let body = job_body(&s.id, &s.deps);
        farm.job(s.cost(99), body); // every cost changed => new digests
    }
    let err = farm.run().expect_err("changed spec must be drift");
    assert!(err.contains("farm_state drift"), "changed spec: {err}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Resumes the standard matrix with job bodies that record executions;
/// asserts nothing ran and returns the error.
fn resume_counting(dir: &Path) -> String {
    let runs: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut cfg = FarmConfig::new(dir);
    cfg.resume = true;
    let mut farm = Farm::new(cfg);
    for s in matrix() {
        let runs = Arc::clone(&runs);
        let id = s.id.clone();
        farm.job(s, move |_ctx| {
            runs.lock().expect("runs").push(id.clone());
            Ok(())
        });
    }
    let err = farm.run().expect_err("drift must be rejected");
    assert!(
        runs.lock().expect("runs").is_empty(),
        "drift rejection must happen before any job runs"
    );
    err
}
