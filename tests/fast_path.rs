//! The zero-fault fast path contract: gating a trial on one
//! `trial_is_clean` draw and then (only when dirty) sampling the
//! conditional lifetime must be *bit-identical* to the unconditional
//! `sample_node` path — same events, same outcomes, same RNG stream
//! position. The engine relies on this to skip clean trials entirely.

use relaxfault::prelude::*;
use relaxfault::relsim::{evaluate_node, evaluate_node_with, EvalScratch};
use relaxfault::util::rng::{mix64, Rng64};

/// A small pool of scenario shapes spanning the mechanisms, replacement
/// policies, and FIT scalings the figures exercise. Crossed with ~170
/// seeds each, this gives the ISSUE's ~1k random (scenario, seed) cases.
fn scenario_pool() -> Vec<Scenario> {
    vec![
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
            .with_replacement(ReplacementPolicy::None),
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
            .with_fit_scale(10.0),
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::Ppr)
            .with_fit_scale(10.0)
            .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 0.9 }),
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::FreeFault { max_ways: 16 })
            .with_fit_scale(30.0)
            .with_replacement(ReplacementPolicy::None),
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::None)
            .with_fit_scale(3.0),
        Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 2 })
            .with_fit_scale(100.0),
    ]
}

#[test]
fn fast_path_agrees_with_slow_path_on_1k_random_cases() {
    let mut cases = 0u32;
    let mut dirty = 0u32;
    for (si, scenario) in scenario_pool().iter().enumerate() {
        let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
        let mut node_fast = NodeFaults::default();
        let mut scratch = EvalScratch::new();
        for trial in 0..170u64 {
            cases += 1;
            let seed = mix64(0xFA57_9A7E, si as u64, trial);

            // Slow path: unconditional sample, fresh evaluation scratch.
            let mut rng_slow = Rng64::seed_from_u64(seed);
            let node_slow = sampler.sample_node(&mut rng_slow);

            // Fast path: one gate draw, conditional sample only when
            // dirty, reused buffers throughout — exactly the engine loop.
            let mut rng_fast = Rng64::seed_from_u64(seed);
            node_fast.clear();
            if !sampler.trial_is_clean(&mut rng_fast) {
                sampler.sample_faulty_into(&mut rng_fast, &mut node_fast);
            }

            assert_eq!(
                node_fast, node_slow,
                "lifetimes diverged: scenario {si}, trial {trial}"
            );
            if node_slow.events.is_empty() {
                continue;
            }
            dirty += 1;

            let eval_seed = mix64(seed ^ 0xECC, trial, 0);
            let out_slow =
                evaluate_node(scenario, &node_slow, &mut Rng64::seed_from_u64(eval_seed));
            let out_fast = evaluate_node_with(
                scenario,
                &node_fast,
                &mut Rng64::seed_from_u64(eval_seed),
                &mut scratch,
            );
            // Whole-outcome equality covers the ISSUE's named fields
            // (faulty, dues, repair_bytes) and everything else besides.
            assert_eq!(
                out_fast, out_slow,
                "outcomes diverged: scenario {si}, trial {trial}"
            );
        }
    }
    assert_eq!(cases, 1020);
    // The pool's elevated FIT scales guarantee both branches are
    // exercised heavily.
    assert!(dirty >= 100, "only {dirty} dirty trials of {cases}");
    assert!(cases - dirty >= 100, "only {} clean trials", cases - dirty);
}

#[test]
fn clean_probability_matches_empirical_gate_rate() {
    // `p_clean` is the same number the gate draws against, so the
    // empirical clean rate over many seeds must match it closely.
    let scenario = Scenario::isca16_baseline().with_fit_scale(10.0);
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    let n = 20_000u64;
    let mut clean = 0u64;
    for trial in 0..n {
        let mut rng = Rng64::seed_from_u64(mix64(0xC1EA, trial, 0));
        clean += sampler.trial_is_clean(&mut rng) as u64;
    }
    let rate = clean as f64 / n as f64;
    assert!(
        (rate - sampler.p_clean()).abs() < 0.01,
        "empirical {rate} vs p_clean {}",
        sampler.p_clean()
    );
}
