//! Integration of the performance simulator with the cache and DRAM
//! substrates: the qualitative Figure 15/16 story holds end to end.

use relaxfault::perfsim::workload::catalog;
use relaxfault::prelude::*;

fn cfg(instr: u64) -> SimConfig {
    SimConfig {
        instructions_per_core: instr,
        ..SimConfig::isca16()
    }
}

/// 100 KiB of scattered repair lines — the paper's realistic repair
/// footprint — costs every workload essentially nothing.
#[test]
fn realistic_repair_footprint_is_free() {
    let cfg = cfg(60_000);
    for w in [catalog::lulesh(), catalog::cg(), catalog::spec_mem()] {
        let full = Simulation::run(&cfg, &w, CapacityLoss::None, 3);
        let repaired = Simulation::run(&cfg, &w, CapacityLoss::RandomLines { bytes: 100 << 10 }, 3);
        let ratio = repaired.throughput_ipc() / full.throughput_ipc();
        assert!(
            ratio > 0.95,
            "{}: 100 KiB cost ratio {ratio:.3} should be ~1",
            w.name
        );
    }
}

/// The capacity-sensitive workload is hurt more by 4 locked ways than the
/// compute-bound mix (Figure 15's one visible bar drop).
#[test]
fn lulesh_is_the_sensitive_one() {
    // Long enough to warm LULESH's multi-MiB hot set (~10 reuses/line).
    let cfg = cfg(300_000);
    let drop = |w: &relaxfault::perfsim::Workload| {
        let full = Simulation::run(&cfg, w, CapacityLoss::None, 3).throughput_ipc();
        let cut = Simulation::run(&cfg, w, CapacityLoss::Ways(4), 3).throughput_ipc();
        1.0 - cut / full
    };
    let lulesh_drop = drop(&catalog::lulesh());
    let cg_drop = drop(&catalog::cg());
    assert!(
        lulesh_drop > cg_drop,
        "LULESH ({lulesh_drop:.3}) must be more sensitive than CG ({cg_drop:.3})"
    );
    assert!(lulesh_drop > 0.03, "LULESH must show a perceptible drop");
}

/// DRAM op counting feeds the power model: more misses, more energy.
#[test]
fn power_tracks_misses() {
    let cfg = cfg(120_000);
    let w = catalog::lulesh();
    let full = Simulation::run(&cfg, &w, CapacityLoss::None, 3);
    let cut = Simulation::run(&cfg, &w, CapacityLoss::Ways(4), 3);
    assert!(cut.op_counts.reads > full.op_counts.reads);
    let e = SimConfig::isca16().energy;
    assert!(e.dynamic_energy_nj(&cut.op_counts) > e.dynamic_energy_nj(&full.op_counts));
}

/// Weighted speedup is bounded by core count and consistent with solo
/// runs.
#[test]
fn weighted_speedup_sane() {
    let cfg = cfg(60_000);
    let w = catalog::lu();
    let solo = {
        let alone = relaxfault::perfsim::Workload {
            name: "solo".into(),
            cores: vec![w.cores[0].clone()],
        };
        Simulation::run(&cfg, &alone, CapacityLoss::None, 3).per_core[0].ipc
    };
    let shared = Simulation::run(&cfg, &w, CapacityLoss::None, 3);
    let ws = WeightedSpeedup::compute(&[solo; 8], &shared);
    assert!(ws.0 > 0.0 && ws.0 <= 8.05, "weighted speedup {ws}");
}
