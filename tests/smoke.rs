//! Offline smoke test: a tiny scenario defined as a JSON config runs end
//! to end through the reliability engine and reports sane numbers. This is
//! the fastest whole-stack check — if this passes, the hermetic build is
//! wired together.

use relaxfault::prelude::*;
use relaxfault::util::json::Value;
use relaxfault::util::obs;

#[test]
fn tiny_scenario_runs_from_json_config() {
    let config = r#"
        {
          "mechanism": {"kind": "relaxfault", "max_ways": 1},
          "replacement": {"kind": "none"},
          "fit_scale": 10.0
        }
    "#;
    let arm = Scenario::from_json(&Value::parse(config).unwrap()).unwrap();
    assert_eq!(arm.mechanism, Mechanism::RelaxFault { max_ways: 1 });

    let run = RunConfig {
        trials: 200,
        seed: 2016,
        threads: 2,
        chunk_size: 0,
    };
    let results = run_scenarios(&[arm], &run);
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r.trials, 200);
    assert_eq!(r.label, "RelaxFault-1way");
    // At 10x Cielo rates over 6 years some nodes must be faulty, and
    // RelaxFault must repair at least one of them fully.
    assert!(r.faulty_nodes > 0, "no faulty nodes at 10x rates");
    assert!(r.fully_repaired_nodes > 0, "RelaxFault repaired nothing");
    assert!(r.fully_repaired_nodes <= r.faulty_nodes);
    let (lo, hi) = r.coverage_interval();
    assert!(lo <= r.coverage() && r.coverage() <= hi);

    // When the run is traced (e.g. CI's `RF_TRACE=relsim=debug` pass),
    // the engine must have emitted lifecycle events and a metrics snapshot
    // that round-trips through the strict JSON parser.
    if obs::enabled("relsim", obs::Level::Info) {
        let events = obs::drain_events();
        assert!(
            events.iter().any(|e| e.name == "arm_result"),
            "tracing enabled but no engine lifecycle events captured"
        );
        assert_eq!(obs::dropped_events(), 0);
    }
    if obs::metrics_enabled() {
        let path = obs::write_snapshot("smoke").expect("snapshot written");
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        let doc = Value::parse(&text).expect("snapshot parses");
        for key in ["schema_version", "counters", "gauges", "histograms"] {
            assert!(doc.get(key).is_some(), "snapshot missing `{key}`");
        }
        let evals = doc
            .get("counters")
            .and_then(|c| c.get("relsim.trial_evals"))
            .and_then(Value::as_f64);
        assert_eq!(evals, Some(200.0));
    }
}
