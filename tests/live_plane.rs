//! The live telemetry plane, end to end: the flight recorder holds the
//! same deterministic stream the trace buffers do (byte-identical
//! non-span events across thread counts, identical `(trial, group, seq)`
//! keys for the full stream including span completions), and the fleet's
//! `/progress` document reports the run's actual shape. Lives in its own
//! integration-test process so the process-wide trace filter and flight
//! recorder state cannot leak into unrelated unit tests.

use relaxfault::prelude::*;
use relaxfault::relsim::fleet::{FleetConfig, FleetSim};
use relaxfault::util::json::Value;
use relaxfault::util::{flight, obs};

fn smoke_arms() -> Vec<Scenario> {
    vec![Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None)
        .with_fit_scale(10.0)]
}

/// Restores default obs + flight state when dropped, so a failing
/// assertion cannot poison the next test.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        obs::set_filter("").expect("empty filter parses");
        obs::set_metrics_enabled(false);
        flight::set_enabled(true);
        flight::set_capacity(flight::DEFAULT_CAP);
        obs::reset();
    }
}

#[test]
fn flight_snapshot_is_deterministic_across_thread_counts() {
    let _serial = obs::exclusive();
    let _restore = Restore;
    obs::reset();
    obs::set_filter("relsim=debug,faults=trace").expect("valid filter");
    // Large enough that nothing wraps: with zero overwrites the snapshot
    // is the complete stream and its order must be thread-count
    // independent, exactly like `drain_events`.
    flight::set_capacity(1 << 20);

    /// `(trial, group, seq, "target:name")` of one flight event.
    type EventKey = (u64, u64, u64, String);

    let arms = smoke_arms();
    // (trace of non-span events, full keyed stream incl. span completions)
    let mut reference: Option<(String, Vec<EventKey>)> = None;
    for threads in [1usize, 2, 4] {
        obs::reset();
        run_scenarios(
            &arms,
            &RunConfig {
                trials: 200,
                seed: 2016,
                threads,
                chunk_size: 0,
            },
        );
        assert_eq!(flight::overwritten(), 0, "ring wrapped at {threads}");
        let events = flight::snapshot();
        assert!(
            events.iter().any(|e| e.name == "trial_eval"),
            "flight recorder missed trace events at threads={threads}"
        );
        assert!(
            events.iter().any(|e| e.target == obs::SPAN_TARGET),
            "flight recorder missed span completions at threads={threads}"
        );

        // Span completions carry wall-clock `ns` fields, so only their
        // *keys* are comparable across runs; everything else must be
        // byte-identical, rendered text included.
        let non_span: Vec<_> = events
            .iter()
            .filter(|e| e.target != obs::SPAN_TARGET)
            .cloned()
            .collect();
        let text = obs::render_text(&non_span);
        // The `(trial, group, seq)` determinism contract covers *scoped*
        // events: unscoped ones (run_start, arm_result) draw seqs from a
        // per-thread counter that outlives `obs::reset`, so their raw seq
        // values are process-lifetime state, not per-run state — their
        // rendered text (compared above) is what must be stable.
        let keys: Vec<EventKey> = events
            .iter()
            .filter(|e| e.trial != u64::MAX)
            .map(|e| (e.trial, e.group, e.seq, format!("{}:{}", e.target, e.name)))
            .collect();
        match &reference {
            None => reference = Some((text, keys)),
            Some((t0, k0)) => {
                assert_eq!(
                    &text, t0,
                    "flight non-span stream diverged at threads={threads}"
                );
                assert_eq!(&keys, k0, "flight event keys diverged at threads={threads}");
            }
        }
    }
}

#[test]
fn flight_stream_matches_the_trace_stream() {
    let _serial = obs::exclusive();
    let _restore = Restore;
    obs::reset();
    obs::set_filter("relsim=debug,faults=trace").expect("valid filter");
    flight::set_capacity(1 << 20);

    run_scenarios(
        &smoke_arms(),
        &RunConfig {
            trials: 100,
            seed: 7,
            threads: 4,
            chunk_size: 0,
        },
    );
    // Every event the trace buffers hold is also in the flight recorder
    // (the recorder additionally holds span completions), in the same
    // deterministic merged order.
    let flight_non_span: Vec<_> = flight::snapshot()
        .into_iter()
        .filter(|e| e.target != obs::SPAN_TARGET)
        .collect();
    let traced = obs::drain_events();
    assert!(!traced.is_empty());
    assert_eq!(
        obs::render_text(&flight_non_span),
        obs::render_text(&traced),
        "flight recorder and trace buffers disagree"
    );
}

#[test]
fn fleet_progress_document_reports_the_run_shape() {
    let _serial = obs::exclusive();
    let _restore = Restore;
    obs::reset();

    let arms = vec![
        Scenario::isca16_baseline()
            .with_fit_scale(150.0)
            .with_mechanism(Mechanism::None),
        Scenario::isca16_baseline()
            .with_fit_scale(150.0)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    let mut sim = FleetSim::new(arms, FleetConfig::quick(600, 3, 77));
    sim.step().expect("epoch 0");

    let doc = sim.progress_json(&[1_000, 16_384]);
    let text = doc.to_pretty();
    let parsed = Value::parse(&text).expect("progress document is valid JSON");
    let field = |k: &str| parsed.get(k).unwrap_or_else(|| panic!("missing `{k}`"));
    assert_eq!(field("status").as_str(), Some("running"));
    assert_eq!(field("epoch").as_f64(), Some(1.0));
    assert_eq!(field("epochs").as_f64(), Some(3.0));
    assert_eq!(field("nodes").as_f64(), Some(600.0));
    assert_eq!(
        field("checkpoints").get("enabled").and_then(Value::as_bool),
        Some(false),
        "no --ckpt-dir means lineage reports disabled"
    );
    let forecast = field("forecast").as_array().expect("forecast array");
    assert_eq!(forecast.len(), 2, "one entry per queried fleet size");
    let arms0 = forecast[0].get("arms").and_then(Value::as_array).unwrap();
    assert_eq!(arms0.len(), 2, "one forecast arm per scenario");
    assert!(arms0[0].get("dues").and_then(Value::as_f64).is_some());

    sim.step().expect("epoch 1");
    sim.step().expect("epoch 2");
    let done = sim.progress_json(&[]);
    assert_eq!(done.get("status").and_then(Value::as_str), Some("complete"));
    assert_eq!(done.get("epoch").and_then(Value::as_f64), Some(3.0));
}
