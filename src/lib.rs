//! **relaxfault** — LLC-based fine-grained DRAM repair, reproducing
//! *RelaxFault Memory Repair* (Kim & Erez, ISCA 2016).
//!
//! RelaxFault repairs permanently faulty DRAM by remapping the faulty
//! device's data into a handful of locked last-level-cache lines, using a
//! repair-only address mapping that *coalesces* a fault's scattered bits
//! (16 device sub-blocks per line). With less than 100 KiB of LLC and
//! 16 KiB of metadata it repairs ~90% of faulty nodes, halves detected
//! uncorrectable errors, and avoids the vast majority of DIMM
//! replacements.
//!
//! This workspace contains the mechanism and everything needed to evaluate
//! it the way the paper does:
//!
//! | Crate | Re-export | Contents |
//! |---|---|---|
//! | `relaxfault-core` | [`repair`] | RelaxFault / FreeFault / PPR planners, Figure-7c mapping, repair data path, Table-1 overheads |
//! | `relaxfault-dram` | [`dram`] | DRAM geometry, physical-address mapping, DDR3 timing & power |
//! | `relaxfault-cache` | [`cache`] | Lockable set-associative LLC with XOR set-index hashing |
//! | `relaxfault-faults` | [`faults`] | Fault modes, field-study FIT rates, refined variation model, Monte Carlo sampling |
//! | `relaxfault-ecc` | [`ecc`] | Chipkill outcome model (corrected / DUE / SDC) |
//! | `relaxfault-relsim` | [`relsim`] | Reliability & availability Monte Carlo engine (Figures 8–14) |
//! | `relaxfault-perfsim` | [`perfsim`] | 8-core performance & DRAM-power simulator (Figures 15–16) |
//!
//! # Quick start
//!
//! Plan a repair and check its cost:
//!
//! ```
//! use relaxfault::prelude::*;
//!
//! let dram = DramConfig::isca16_reliability();
//! let llc = CacheConfig::isca16_llc();
//! let mut planner = RelaxFault::new(&dram, &llc, 1); // ≤1 way per set
//!
//! // A whole device row has failed.
//! let fault = FaultRegion {
//!     rank: RankId { channel: 0, dimm: 0, rank: 0 },
//!     device: 3,
//!     extent: Extent::Row { bank: 2, row: 4242 },
//! };
//! assert!(planner.try_repair(&[fault]));
//! assert_eq!(planner.bytes_used(), 1024, "16 coalesced lines");
//! ```
//!
//! Estimate fleet reliability:
//!
//! ```
//! use relaxfault::prelude::*;
//!
//! let arms = vec![
//!     Scenario::isca16_baseline(),
//!     Scenario::isca16_baseline().with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
//! ];
//! let results = run_scenarios(&arms, &RunConfig { trials: 500, seed: 1, threads: 2 , chunk_size: 0});
//! assert!(results[1].fully_repaired_nodes > 0 || results[1].faulty_nodes == 0);
//! ```
//!
//! The `relaxfault-bench` crate regenerates every table and figure of the
//! paper's evaluation; see `EXPERIMENTS.md` at the repository root.

pub use relaxfault_cache as cache;
pub use relaxfault_core as repair;
pub use relaxfault_dram as dram;
pub use relaxfault_ecc as ecc;
pub use relaxfault_faults as faults;
pub use relaxfault_perfsim as perfsim;
pub use relaxfault_relsim as relsim;
pub use relaxfault_util as util;

/// The names most applications need.
pub mod prelude {
    pub use crate::cache::{Cache, CacheConfig, Indexing};
    pub use crate::dram::{AddressMap, DdrTiming, DramConfig, DramLoc, PhysAddr, RankId};
    pub use crate::ecc::{EccModel, EccOutcome};
    pub use crate::faults::{
        Extent, FaultGeometry, FaultModel, FaultRegion, FaultSampler, FitRates, NodeFaults,
    };
    pub use crate::perfsim::{CapacityLoss, SimConfig, Simulation, WeightedSpeedup};
    pub use crate::relsim::engine::{run_scenarios, RunConfig, ScenarioResult};
    pub use crate::relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
    pub use crate::repair::datapath::{FaultyDram, RepairController};
    pub use crate::repair::overhead::StorageOverhead;
    pub use crate::repair::plan::{FreeFault, PlanScratch, Ppr, RelaxFault, RepairMechanism};
    pub use crate::repair::{RelaxMap, RepairLine};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let cfg = DramConfig::isca16_reliability();
        assert_eq!(CacheConfig::isca16_llc().sets(), 8192);
        assert_eq!(cfg.devices_per_node(), 144);
    }
}
