#!/usr/bin/env bash
# Full offline gate: format, lint, build, test. The workspace has zero
# registry dependencies, so everything here must succeed with the network
# switched off — CARGO_NET_OFFLINE makes any accidental dependency fail
# loudly instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q

# Observability gate: re-run the smoke scenario with tracing on; it must
# emit a metrics snapshot under results/obs/ that parses with the strict
# in-repo JSON parser and carries the required top-level keys.
rm -rf results/obs
RF_TRACE=relsim=debug cargo test -q --test smoke
cargo run --release -q -p relaxfault-bench --bin obs_validate results/obs

# Disabled-path guard: observability must cost <1% of the Monte Carlo
# inner loop when off (the bench exits non-zero otherwise).
RF_BENCH_BATCH_MS=5 RF_BENCH_BATCHES=3 \
    cargo bench -q -p relaxfault-bench --bench node_eval
