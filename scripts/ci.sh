#!/usr/bin/env bash
# Full offline gate: format, lint, build, test. The workspace has zero
# registry dependencies, so everything here must succeed with the network
# switched off — CARGO_NET_OFFLINE makes any accidental dependency fail
# loudly instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q

# Observability gate: re-run the smoke scenario with tracing on; it must
# emit a metrics snapshot under results/obs/ that parses with the strict
# in-repo JSON parser and carries the required top-level keys.
rm -rf results/obs results/runs
RF_TRACE=relsim=debug cargo test -q --test smoke
cargo run --release -q -p relaxfault-bench --bin obs_validate results/obs

# Determinism drift gate: the same pinned-seed scenario twice must produce
# identical counters (timings may jitter — the generous threshold ignores
# them; the exact counter comparison is the determinism signal). The
# obs_diff verdict JSON is kept under results/ci/ as a build artifact.
# Committed artifacts (the engine_hot pre-PR snapshot and verdict) stay;
# only the run registry and snapshots are scrubbed.
rm -rf results/ci/obs results/ci/runs
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=drift_a \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=drift_b \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/obs/drift_a.json results/ci/obs/drift_b.json \
    --threshold 10 --out results/ci/obs_diff_verdict.json

# Baseline regression gate, active only when a baseline snapshot has been
# committed. Record one at the same pinned trial count CI replays (counters
# are deterministic in the seed, so they match across machines; only
# timings vary):
#   RF_OBS=on cargo run --release -p relaxfault-bench --bin fig08_hashing -- 4000
#   mkdir -p results/baselines && cp results/obs/fig08_hashing.json results/baselines/
# The newest registered run is compared against the committed baseline of
# the same run name; regressions beyond the CI threshold fail the build.
if [ -f results/baselines/fig08_hashing.json ]; then
    RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fig08_hashing \
        cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
    mkdir -p results/ci/baselines
    cp results/baselines/*.json results/ci/baselines/
    RF_RESULTS_DIR=results/ci cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
        --latest-vs-baseline --threshold 0.5 --out results/ci/obs_diff_baseline_verdict.json
fi

# Disabled-path guard: observability must cost <1% of the Monte Carlo
# inner loop when off (the bench exits non-zero otherwise).
RF_BENCH_BATCH_MS=5 RF_BENCH_BATCHES=3 \
    cargo bench -q -p relaxfault-bench --bench node_eval

# Correctness subsystem pass: the differential oracles at a reduced case
# count, then an RF_CHECK=1 engine smoke with a forced failure proving the
# failure -> repro -> replay loop end to end. The repro JSON must satisfy
# the strict schema validator, and the replay must report bit-exact
# reproduction. Any relcheck failure exits 3.
rm -rf results/ci/relcheck
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- smoke --cases 25 \
    || exit 3
if RF_CHECK=1 RF_CHECK_FAIL_TRIAL=0 RF_RESULTS_DIR=results/ci \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 50; then
    echo "relcheck: forced RF_CHECK failure did not fire" >&2
    exit 3
fi
repro=$(ls results/ci/relcheck/engine_check_*.json 2>/dev/null | head -n1 || true)
[ -n "$repro" ] || { echo "relcheck: no repro case written" >&2; exit 3; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/relcheck \
    || exit 3
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- replay "$repro" \
    || exit 3

# Fleet checkpoint/resume determinism gate: a 1M-node fleet over 20 epochs
# runs to completion once; the same fleet is then killed mid-epoch by the
# RF_FLEET_CRASH_AT hook (the kill must actually fire), resumed from the
# surviving checkpoints, and the resumed run's obs snapshot must be a
# zero-delta obs_diff match of the uninterrupted one — counters are exact,
# so any divergence fails the build. The checkpoint directory itself must
# satisfy the strict fleet-checkpoint schema validator (which also rejects
# mixed schema versions). Verdict JSON is archived under results/ci/.
rm -rf results/ci/fleet_ckpt
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fleet_full \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    1000000 --epochs=20
if RF_OBS=on RF_RESULTS_DIR=results/ci RF_FLEET_CRASH_AT=mid:13 \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    1000000 --epochs=20 --ckpt-dir=results/ci/fleet_ckpt >/dev/null 2>&1; then
    echo "fleet gate: injected crash did not kill the run" >&2
    exit 4
fi
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fleet_resumed \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    --resume --ckpt-dir=results/ci/fleet_ckpt
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/obs/fleet_full.json results/ci/obs/fleet_resumed.json \
    --threshold 10 --out results/ci/fleet_resume_verdict.json \
    || { echo "fleet gate: resumed run drifted from the full run" >&2; exit 4; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/fleet_ckpt \
    || exit 4

# Engine hot-loop regression gate: replay the per-trial pipeline bench and
# compare against the committed baseline snapshot. Cargo runs bench
# binaries with the bench crate as cwd, so RF_RESULTS_DIR must be
# absolute. A regression verdict (obs_diff exit 1) fails the build with
# exit 2; the verdict JSON is kept under results/ci/ either way.
if [ -f results/baselines/engine_hot.json ]; then
    RF_OBS=on RF_RESULTS_DIR="$PWD/results/ci" RF_RUN_NAME=engine_hot \
        RF_BENCH_BATCH_MS=40 RF_BENCH_BATCHES=5 \
        cargo bench -q -p relaxfault-bench --bench engine_hot
    cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
        results/baselines/engine_hot.json results/ci/obs/engine_hot.json \
        --threshold 0.5 --out results/ci/engine_hot_regression_verdict.json \
        || exit 2
fi
