#!/usr/bin/env bash
# Full offline gate: format, lint, build, test. The workspace has zero
# registry dependencies, so everything here must succeed with the network
# switched off — CARGO_NET_OFFLINE makes any accidental dependency fail
# loudly instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
