#!/usr/bin/env bash
# Full offline gate: format, lint, build, test. The workspace has zero
# registry dependencies, so everything here must succeed with the network
# switched off — CARGO_NET_OFFLINE makes any accidental dependency fail
# loudly instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q

# Observability gate: re-run the smoke scenario with tracing on; it must
# emit a metrics snapshot under results/obs/ that parses with the strict
# in-repo JSON parser and carries the required top-level keys.
rm -rf results/obs results/runs
RF_TRACE=relsim=debug cargo test -q --test smoke
cargo run --release -q -p relaxfault-bench --bin obs_validate results/obs

# Determinism drift gate: the same pinned-seed scenario twice must produce
# identical counters (timings may jitter — the generous threshold ignores
# them; the exact counter comparison is the determinism signal). The
# obs_diff verdict JSON is kept under results/ci/ as a build artifact.
# Committed artifacts (the engine_hot pre-PR snapshot and verdict) stay;
# only the run registry and snapshots are scrubbed.
rm -rf results/ci/obs results/ci/runs
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=drift_a \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=drift_b \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/obs/drift_a.json results/ci/obs/drift_b.json \
    --threshold 10 --out results/ci/obs_diff_verdict.json

# Baseline regression gate, active only when a baseline snapshot has been
# committed. Record one at the same pinned trial count CI replays (counters
# are deterministic in the seed, so they match across machines; only
# timings vary):
#   RF_OBS=on cargo run --release -p relaxfault-bench --bin fig08_hashing -- 4000
#   mkdir -p results/baselines && cp results/obs/fig08_hashing.json results/baselines/
# The newest registered run is compared against the committed baseline of
# the same run name; regressions beyond the CI threshold fail the build.
if [ -f results/baselines/fig08_hashing.json ]; then
    RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fig08_hashing \
        cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 4000
    mkdir -p results/ci/baselines
    cp results/baselines/*.json results/ci/baselines/
    RF_RESULTS_DIR=results/ci cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
        --latest-vs-baseline --threshold 0.5 --out results/ci/obs_diff_baseline_verdict.json
fi

# Disabled-path guard: observability must cost <1% of the Monte Carlo
# inner loop when off (the bench exits non-zero otherwise).
RF_BENCH_BATCH_MS=5 RF_BENCH_BATCHES=3 \
    cargo bench -q -p relaxfault-bench --bench node_eval

# Correctness subsystem pass: the differential oracles at a reduced case
# count, then an RF_CHECK=1 engine smoke with a forced failure proving the
# failure -> repro -> replay loop end to end. The repro JSON must satisfy
# the strict schema validator, and the replay must report bit-exact
# reproduction. Any relcheck failure exits 3.
rm -rf results/ci/relcheck
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- smoke --cases 25 \
    || exit 3
if RF_CHECK=1 RF_CHECK_FAIL_TRIAL=0 RF_RESULTS_DIR=results/ci \
    cargo run --release -q -p relaxfault-bench --bin fig08_hashing -- 50; then
    echo "relcheck: forced RF_CHECK failure did not fire" >&2
    exit 3
fi
repro=$(ls results/ci/relcheck/engine_check_*.json 2>/dev/null | head -n1 || true)
[ -n "$repro" ] || { echo "relcheck: no repro case written" >&2; exit 3; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/relcheck \
    || exit 3
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- replay "$repro" \
    || exit 3

# Lane-matrix gate: the bit-sliced trial kernel must be indistinguishable
# from the scalar path. One pinned scenario mix is digested across every
# (lane mode, thread count) cell of {scalar,u64,u128} x {1,2,4}; all nine
# digests must be identical bit for bit. The verdict JSON (one digest per
# cell) is archived under results/ci/. Any divergence exits 7.
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- lane-matrix \
    --trials 4000 --out results/ci/lane_matrix_verdict.json \
    || { echo "lane-matrix gate: lane modes diverged" >&2; exit 7; }

# Fleet checkpoint/resume determinism gate: a 1M-node fleet over 20 epochs
# runs to completion once; the same fleet is then killed mid-epoch by the
# RF_FLEET_CRASH_AT hook (the kill must actually fire), resumed from the
# surviving checkpoints, and the resumed run's obs snapshot must be a
# zero-delta obs_diff match of the uninterrupted one — counters are exact,
# so any divergence fails the build. The checkpoint directory itself must
# satisfy the strict fleet-checkpoint schema validator (which also rejects
# mixed schema versions). Verdict JSON is archived under results/ci/.
rm -rf results/ci/fleet_ckpt
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fleet_full \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    1000000 --epochs=20
if RF_OBS=on RF_RESULTS_DIR=results/ci RF_FLEET_CRASH_AT=mid:13 \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    1000000 --epochs=20 --ckpt-dir=results/ci/fleet_ckpt >/dev/null 2>&1; then
    echo "fleet gate: injected crash did not kill the run" >&2
    exit 4
fi
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=fleet_resumed \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    --resume --ckpt-dir=results/ci/fleet_ckpt
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/obs/fleet_full.json results/ci/obs/fleet_resumed.json \
    --threshold 10 --out results/ci/fleet_resume_verdict.json \
    || { echo "fleet gate: resumed run drifted from the full run" >&2; exit 4; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/fleet_ckpt \
    || exit 4

# Crash-dump gate: a mid-epoch injected crash with checkpointing on must
# leave a crash dump whose embedded checkpoint `relcheck replay` proves
# bit-exact, and the dump must satisfy the strict schema validator — while
# a truncated copy of the same dump must be rejected.
rm -rf results/ci/crash_ckpt results/ci/crash_truncated
if RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=crash_small RF_FLEET_CRASH_AT=mid:7 \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    200000 --epochs=12 --ckpt-dir=results/ci/crash_ckpt >/dev/null 2>&1; then
    echo "crash-dump gate: injected crash did not kill the run" >&2
    exit 4
fi
dump=results/ci/obs/crash_small.crashdump.json
[ -f "$dump" ] || { echo "crash-dump gate: no crash dump written" >&2; exit 4; }
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- replay "$dump" \
    || { echo "crash-dump gate: dump did not replay bit-exactly" >&2; exit 4; }
mkdir -p results/ci/crash_truncated
head -c 256 "$dump" > results/ci/crash_truncated/crash_small.crashdump.json
if cargo run --release -q -p relaxfault-bench --bin obs_validate \
    results/ci/crash_truncated >/dev/null 2>&1; then
    echo "crash-dump gate: truncated dump was accepted" >&2
    exit 4
fi

# Live-endpoint smoke gate: a profiled fleet run serving the telemetry
# plane on an OS-assigned port (published through RF_OBS_ADDR_FILE) must
# answer all four routes over plain /dev/tcp, serve well-formed Prometheus
# text, honour /quit for a deterministic shutdown, and leave a non-empty
# folded profile naming relsim spans. The final obs_validate sweep covers
# everything the CI runs dropped in results/ci/obs: snapshots, traces,
# crash dumps, and the folded profile.
rm -f results/ci/obs_addr results/ci/obs/live_smoke.folded
RF_OBS=on RF_RESULTS_DIR=results/ci RF_RUN_NAME=live_smoke \
    RF_OBS_ADDR_FILE=results/ci/obs_addr \
    cargo run --release -q -p relaxfault-bench --bin fleet_forecast -- \
    200000 --epochs=8 --serve-obs=0 --profile --linger-ms=30000 &
live_pid=$!
for _ in $(seq 1 300); do [ -s results/ci/obs_addr ] && break; sleep 0.1; done
[ -s results/ci/obs_addr ] || {
    echo "live gate: endpoint address never published" >&2
    kill "$live_pid" 2>/dev/null; exit 5
}
addr=$(cat results/ci/obs_addr)
obs_get() { # obs_get /route -> full HTTP response on stdout
    exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&-
}
obs_get /health | grep -q '"status": "ok"' \
    || { echo "live gate: /health unhealthy" >&2; kill "$live_pid"; exit 5; }
metrics=$(obs_get /metrics)
echo "$metrics" | head -n1 | grep -q "200 OK" \
    || { echo "live gate: /metrics not 200" >&2; kill "$live_pid"; exit 5; }
echo "$metrics" | grep -q "text/plain; version=0.0.4" \
    || { echo "live gate: /metrics content-type" >&2; kill "$live_pid"; exit 5; }
echo "$metrics" | grep -Eq '^# TYPE [a-zA-Z_][a-zA-Z0-9_:]* (counter|gauge|histogram)' \
    || { echo "live gate: /metrics not Prometheus text" >&2; kill "$live_pid"; exit 5; }
obs_get /flight | grep -q '^\[' \
    || { echo "live gate: /flight is not an event array" >&2; kill "$live_pid"; exit 5; }
# The run publishes a fresh document every boundary; once it completes it
# lingers, so polling until `complete` terminates deterministically.
progress_ok=
for _ in $(seq 1 600); do
    if obs_get /progress | grep -q '"status": "complete"'; then progress_ok=1; break; fi
    sleep 0.5
done
[ -n "$progress_ok" ] || { echo "live gate: /progress never completed" >&2; kill "$live_pid"; exit 5; }
obs_get /progress | grep -q '"forecast"' \
    || { echo "live gate: /progress has no forecast" >&2; kill "$live_pid"; exit 5; }
obs_get /quit >/dev/null
if ! wait "$live_pid"; then
    echo "live gate: served run did not exit cleanly" >&2
    exit 5
fi
folded=results/ci/obs/live_smoke.folded
[ -s "$folded" ] || { echo "live gate: no folded profile written" >&2; exit 5; }
grep -q "relsim" "$folded" \
    || { echo "live gate: folded profile names no relsim spans" >&2; exit 5; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/obs \
    || { echo "live gate: results/ci/obs failed validation" >&2; exit 5; }

# Engine hot-loop regression gate: replay the per-trial pipeline bench and
# compare against the committed baseline snapshot. Cargo runs bench
# binaries with the bench crate as cwd, so RF_RESULTS_DIR must be
# absolute. A regression verdict (obs_diff exit 1) fails the build with
# exit 2; the verdict JSON is kept under results/ci/ either way.
if [ -f results/baselines/engine_hot.json ]; then
    RF_OBS=on RF_RESULTS_DIR="$PWD/results/ci" RF_RUN_NAME=engine_hot \
        RF_BENCH_BATCH_MS=40 RF_BENCH_BATCHES=5 \
        cargo bench -q -p relaxfault-bench --bench engine_hot
    cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
        results/baselines/engine_hot.json results/ci/obs/engine_hot.json \
        --threshold 0.5 --out results/ci/engine_hot_regression_verdict.json \
        || exit 2
fi

# Perf-history observatory gate: the CI runs above were ledgered at
# obs_finish; ingest sweeps in the rest (e.g. the engine_hot bench, which
# writes its own snapshot), and a second ingest over the unchanged tree
# must be a byte-level no-op. The ledger must satisfy relcheck's
# structural invariants and the strict obs_validate schema, and a
# truncated copy must be rejected. On trees with the committed engine_hot
# baseline, the trend check runs on a scratch copy: extended with a flat
# synthetic tail it must pass twice with byte-identical dashboards, and
# with an injected 2x engine_hot.fig10_mix regression it must fail naming
# the series and changepoint epoch. Verdicts (check log + dashboards)
# are archived under results/ci/history_gate/. Any failure exits 6.
rm -rf results/ci/history_gate results/ci/history_truncated
cargo run --release -q -p relaxfault-bench --bin obs_report -- ingest --results results/ci \
    || exit 6
mkdir -p results/ci/history_gate
cp results/ci/history/ledger.jsonl results/ci/history_gate/ledger.jsonl
cargo run --release -q -p relaxfault-bench --bin obs_report -- ingest --results results/ci \
    || exit 6
cmp -s results/ci/history/ledger.jsonl results/ci/history_gate/ledger.jsonl \
    || { echo "history gate: re-ingest was not a byte-level no-op" >&2; exit 6; }
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- ledger \
    results/ci/history/ledger.jsonl || exit 6
cargo run --release -q -p relaxfault-bench --bin obs_report -- report --results results/ci \
    || exit 6
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/history \
    || exit 6
mkdir -p results/ci/history_truncated
head -c $(( $(wc -c < results/ci/history/ledger.jsonl) - 3 )) \
    results/ci/history/ledger.jsonl > results/ci/history_truncated/ledger.jsonl
if cargo run --release -q -p relaxfault-bench --bin obs_validate \
    results/ci/history_truncated >/dev/null 2>&1; then
    echo "history gate: truncated ledger was accepted" >&2
    exit 6
fi
if [ -f results/baselines/engine_hot.json ]; then
    scratch=results/ci/history_gate/ledger.jsonl
    cargo run --release -q -p relaxfault-bench --bin obs_report -- extend \
        --ledger "$scratch" --series engine_hot.fig10_mix --factor 1.0 --count 6 \
        || exit 6
    cargo run --release -q -p relaxfault-bench --bin obs_report -- report \
        --results results/ci --ledger "$scratch" \
        --out results/ci/history_gate/report_clean_a.html --check \
        || { echo "history gate: clean trend failed the check" >&2; exit 6; }
    cargo run --release -q -p relaxfault-bench --bin obs_report -- report \
        --results results/ci --ledger "$scratch" \
        --out results/ci/history_gate/report_clean_b.html --check || exit 6
    cmp -s results/ci/history_gate/report_clean_a.html \
        results/ci/history_gate/report_clean_b.html \
        || { echo "history gate: dashboard render is not deterministic" >&2; exit 6; }
    cargo run --release -q -p relaxfault-bench --bin obs_report -- extend \
        --ledger "$scratch" --series engine_hot.fig10_mix --factor 2.0 --count 3 \
        || exit 6
    if cargo run --release -q -p relaxfault-bench --bin obs_report -- report \
        --results results/ci --ledger "$scratch" \
        --out results/ci/history_gate/report_regressed.html --check \
        > results/ci/history_gate/check.log; then
        echo "history gate: injected 2x regression was not caught" >&2
        exit 6
    fi
    grep -q "REGRESSION bench:engine_hot.fig10_mix" results/ci/history_gate/check.log \
        || { echo "history gate: regression verdict does not name the series" >&2; exit 6; }
    grep -Eq "at epoch [0-9]+" results/ci/history_gate/check.log \
        || { echo "history gate: regression verdict does not name the epoch" >&2; exit 6; }
    cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/history_gate \
        || exit 6
fi

# Figure-farm gate: the DAG orchestrator must survive a mid-job crash and
# resume to the exact artifacts of an uninterrupted run, and an injected
# deterministic failure must be captured as a replayable ReproCase
# without stopping the rest of the matrix. Three legs over the mini
# matrix (table3_config -> fig08_hashing -> fig10_coverage) at
# --scale=0.02: (1) an uninterrupted reference run, (2) a crash at
# mid:fig08_hashing (must exit 4) followed by --resume (must exit 0,
# reference-identical tables; obs_diff writes the verdict to
# results/ci/farm_resume_verdict.json), (3) a --fail-job run (must exit
# 3) whose archived repro replays cleanly. Any failure exits 8.
rm -rf results/ci/farm_ref results/ci/farm_crash results/ci/farm_fail
RF_OBS=on cargo run --release -q -p relaxfault-bench --bin farm -- \
    run --matrix=mini --scale=0.02 --jobs=2 --dir=results/ci/farm_ref \
    || { echo "farm gate: reference run failed" >&2; exit 8; }
rc=0
RF_OBS=on RF_FARM_CRASH_AT=mid:fig08_hashing \
    cargo run --release -q -p relaxfault-bench --bin farm -- \
    run --matrix=mini --scale=0.02 --jobs=2 --dir=results/ci/farm_crash \
    || rc=$?
[ "$rc" -eq 4 ] || { echo "farm gate: injected crash did not kill the farm (exit $rc)" >&2; exit 8; }
[ -f results/ci/farm_crash/obs/farm.crashdump.json ] \
    || { echo "farm gate: crash left no dump" >&2; exit 8; }
RF_OBS=on cargo run --release -q -p relaxfault-bench --bin farm -- \
    run --matrix=mini --scale=0.02 --jobs=2 --dir=results/ci/farm_crash --resume \
    || { echo "farm gate: resume did not finish the matrix" >&2; exit 8; }
grep -q "table3_config,skipped" results/ci/farm_crash/farm_summary.csv \
    || { echo "farm gate: resume re-ran a completed job" >&2; exit 8; }
for job in table3_config fig08_hashing fig10_coverage; do
    cmp -s "results/ci/farm_ref/$job.json" "results/ci/farm_crash/$job.json" \
        || { echo "farm gate: resumed $job table drifted from the reference" >&2; exit 8; }
done
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/farm_ref/obs/fig08_hashing.json results/ci/farm_crash/obs/fig08_hashing.json \
    --threshold 10 \
    || { echo "farm gate: resumed fig08_hashing metrics drifted" >&2; exit 8; }
cargo run --release -q -p relaxfault-bench --bin obs_diff -- \
    results/ci/farm_ref/obs/fig10_coverage.json results/ci/farm_crash/obs/fig10_coverage.json \
    --threshold 10 --out results/ci/farm_resume_verdict.json \
    || { echo "farm gate: resumed fig10_coverage metrics drifted" >&2; exit 8; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/farm_crash/farm \
    || { echo "farm gate: farm ledger failed validation" >&2; exit 8; }
cargo run --release -q -p relaxfault-bench --bin obs_validate results/ci/farm_crash/farm/jobs \
    || { echo "farm gate: job manifests failed validation" >&2; exit 8; }
rc=0
RF_OBS=on cargo run --release -q -p relaxfault-bench --bin farm -- \
    run --matrix=mini --scale=0.02 --jobs=2 --dir=results/ci/farm_fail \
    --fail-job=fig08_hashing || rc=$?
[ "$rc" -eq 3 ] || { echo "farm gate: injected failure did not fail the DAG (exit $rc)" >&2; exit 8; }
repro=results/ci/farm_fail/farm/jobs/fig08_hashing.repro.json
[ -f "$repro" ] || { echo "farm gate: no ReproCase archived for the failed job" >&2; exit 8; }
cargo run --release -q -p relaxfault-relcheck --bin relcheck -- replay "$repro" \
    || { echo "farm gate: archived ReproCase did not replay" >&2; exit 8; }
grep -q '"role": "repro"' results/ci/farm_fail/farm/jobs/fig08_hashing-repro.json \
    || { echo "farm gate: diagnostic job is not marked repro" >&2; exit 8; }
cargo run --release -q -p relaxfault-bench --bin obs_report -- farm \
    --results results/ci/farm_crash --check \
    || { echo "farm gate: resumed farm dashboard reports failures" >&2; exit 8; }
