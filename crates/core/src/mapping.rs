//! The RelaxFault repair address mapping (paper Figure 7c).
//!
//! Normal physical-address mapping spreads one device's bits over many
//! cache lines: each 64-byte line holds only `device_width × burst` bits
//! (4 bytes) from any one device. RelaxFault's repair mode instead treats
//! each column address as naming data *from a single device*, so one repair
//! line holds `data_devices_per_rank` (16) consecutive sub-blocks of one
//! device — a 16× density improvement for row-shaped faults.
//!
//! A repair line is identified by `(rank, device, bank, row, column-group)`
//! where a column-group is `data_devices_per_rank` consecutive column
//! blocks. The packed repair address places the column-group and low row
//! bits in the LLC set-index field (so the lines of one fault spread across
//! sets) and everything else — high row bits, bank, device ID, rank — in
//! the tag, exactly the role split of Figure 7c. The device ID needs 5 bits
//! for an 18-device ECC rank; the paper repurposes a spare tag state bit
//! for the same reason.

use relaxfault_cache::CacheConfig;
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_util::bits::{bits_for, deposit};

/// Coordinate of one RelaxFault repair line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RepairLine {
    /// Rank holding the faulty device.
    pub rank: RankId,
    /// Device position within the rank (ECC devices included).
    pub device: u32,
    /// Bank within the device.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Column-group within the row (`colblock / data_devices_per_rank`).
    pub colgroup: u32,
}

/// The Figure-7c mapping: repair-line coordinates ⇄ LLC repair-space
/// addresses.
///
/// # Examples
///
/// ```
/// use relaxfault_cache::CacheConfig;
/// use relaxfault_core::mapping::{RelaxMap, RepairLine};
/// use relaxfault_dram::{DramConfig, RankId};
///
/// let map = RelaxMap::new(&DramConfig::isca16_reliability(), &CacheConfig::isca16_llc());
/// let line = RepairLine {
///     rank: RankId { channel: 0, dimm: 0, rank: 0 },
///     device: 17, bank: 7, row: 65535, colgroup: 15,
/// };
/// let addr = map.repair_addr(&line);
/// assert!(map.set_of(&line) < 8192);
/// assert_eq!(addr % 64, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxMap {
    dram: DramConfig,
    llc: CacheConfig,
    colgroup_bits: u32,
    row_bits: u32,
    bank_bits: u32,
    device_bits: u32,
}

impl RelaxMap {
    /// Builds the mapping for a DRAM/LLC pair.
    ///
    /// # Panics
    ///
    /// Panics if either config is invalid, or the LLC set index is narrower
    /// than the column-group field (no real LLC is).
    pub fn new(dram: &DramConfig, llc: &CacheConfig) -> Self {
        dram.validate().expect("invalid DramConfig");
        llc.validate().expect("invalid CacheConfig");
        let colgroup_bits = bits_for(Self::colgroups_per_row_for(dram) as u64);
        assert!(
            llc.set_bits() >= colgroup_bits,
            "LLC set index narrower than the column-group field"
        );
        Self {
            dram: *dram,
            llc: *llc,
            colgroup_bits,
            row_bits: bits_for(dram.rows as u64),
            bank_bits: bits_for(dram.banks as u64),
            device_bits: bits_for(dram.devices_per_rank() as u64),
        }
    }

    /// Sub-blocks coalesced per repair line (= data devices per rank,
    /// because the repair line is one full rank access wide).
    pub fn coalesce_factor(&self) -> u32 {
        self.dram.data_devices_per_rank
    }

    /// Column-groups per device row.
    pub fn colgroups_per_row(&self) -> u32 {
        Self::colgroups_per_row_for(&self.dram)
    }

    fn colgroups_per_row_for(dram: &DramConfig) -> u32 {
        dram.blocks_per_row().div_ceil(dram.data_devices_per_rank)
    }

    /// Repair lines needed for one full device row.
    pub fn lines_per_row(&self) -> u32 {
        self.colgroups_per_row()
    }

    /// The column-group containing a column block.
    pub fn colgroup_of_block(&self, colblock: u32) -> u32 {
        colblock / self.coalesce_factor()
    }

    /// Which sub-block slot (byte range) of the repair line holds a given
    /// column block's data: `(byte_offset, len)`.
    pub fn subblock_slot(&self, colblock: u32) -> (u32, u32) {
        let sub = self.dram.device_subblock_bytes();
        ((colblock % self.coalesce_factor()) * sub, sub)
    }

    /// Packs a repair line coordinate into a repair-space byte address.
    ///
    /// Layout from LSB: line offset, column-group, low row bits (filling
    /// the set-index field), high row bits, bank, device, flat rank index.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for the configuration.
    pub fn repair_addr(&self, line: &RepairLine) -> u64 {
        assert!(
            line.device < self.dram.devices_per_rank(),
            "device out of range"
        );
        assert!(line.bank < self.dram.banks, "bank out of range");
        assert!(line.row < self.dram.rows, "row out of range");
        assert!(
            line.colgroup < self.colgroups_per_row(),
            "column-group out of range"
        );

        let off = self.llc.offset_bits();
        let set_bits = self.llc.set_bits();
        let g = self.colgroup_bits;
        let row_low_bits = (set_bits - g).min(self.row_bits);
        let row_high_bits = self.row_bits - row_low_bits;

        let mut addr = 0u64;
        let mut lsb = off;
        addr = deposit(addr, lsb, g, line.colgroup as u64);
        lsb += g;
        addr = deposit(
            addr,
            lsb,
            row_low_bits,
            (line.row as u64) & ((1 << row_low_bits) - 1),
        );
        lsb += row_low_bits;
        if row_high_bits > 0 {
            addr = deposit(addr, lsb, row_high_bits, (line.row as u64) >> row_low_bits);
            lsb += row_high_bits;
        }
        addr = deposit(addr, lsb, self.bank_bits, line.bank as u64);
        lsb += self.bank_bits;
        addr = deposit(addr, lsb, self.device_bits, line.device as u64);
        lsb += self.device_bits;
        let rank_bits = bits_for(self.dram.total_rank_slots() as u64).max(1);
        addr = deposit(
            addr,
            lsb,
            rank_bits,
            line.rank.flat_index(&self.dram) as u64,
        );
        addr
    }

    /// The LLC set a repair line occupies (through the LLC's own indexing,
    /// hashed or not).
    pub fn set_of(&self, line: &RepairLine) -> u64 {
        self.llc.set_of(self.repair_addr(line))
    }

    /// A compact unique key for a repair line (for dedup bookkeeping).
    pub fn key_of(&self, line: &RepairLine) -> u64 {
        self.repair_addr(line) >> self.llc.offset_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::prop;
    use relaxfault_util::prop_assert_eq;
    use std::collections::HashSet;

    fn map() -> RelaxMap {
        RelaxMap::new(
            &DramConfig::isca16_reliability(),
            &CacheConfig::isca16_llc(),
        )
    }

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    #[test]
    fn geometry_matches_paper_example() {
        let m = map();
        assert_eq!(m.coalesce_factor(), 16, "16 data devices per rank");
        assert_eq!(m.colgroups_per_row(), 16);
        assert_eq!(
            m.lines_per_row(),
            16,
            "one device row → 16 repair lines (1 KiB)"
        );
    }

    #[test]
    fn subblock_slots_tile_the_line() {
        let m = map();
        let mut covered = [false; 64];
        for cb in 0..16 {
            let (off, len) = m.subblock_slot(cb);
            assert_eq!(len, 4);
            for b in off..off + len {
                assert!(!covered[b as usize]);
                covered[b as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Slot depends only on colblock % 16.
        assert_eq!(m.subblock_slot(3), m.subblock_slot(19));
    }

    #[test]
    fn one_row_spreads_over_distinct_sets() {
        let m = map();
        let sets: HashSet<u64> = (0..16)
            .map(|cg| {
                m.set_of(&RepairLine {
                    rank: rank0(),
                    device: 3,
                    bank: 2,
                    row: 4242,
                    colgroup: cg,
                })
            })
            .collect();
        assert_eq!(sets.len(), 16, "row-fault lines never collide in a set");
    }

    #[test]
    fn one_column_spreads_over_distinct_sets() {
        // A subarray column fault: 512 consecutive rows, one column-group.
        let m = map();
        let sets: HashSet<u64> = (0..512)
            .map(|r| {
                m.set_of(&RepairLine {
                    rank: rank0(),
                    device: 3,
                    bank: 2,
                    row: 1024 + r,
                    colgroup: 7,
                })
            })
            .collect();
        assert_eq!(sets.len(), 512);
    }

    #[test]
    fn bank_cluster_fills_sets_evenly() {
        // 512 rows × 16 column-groups = 8192 lines = exactly one way of the
        // whole LLC; the mapping must place exactly one line per set.
        let m = map();
        let mut per_set = vec![0u32; 8192];
        for r in 0..512u32 {
            for cg in 0..16u32 {
                per_set[m.set_of(&RepairLine {
                    rank: rank0(),
                    device: 0,
                    bank: 5,
                    row: 8192 + r,
                    colgroup: cg,
                }) as usize] += 1;
            }
        }
        assert!(
            per_set.iter().all(|&c| c == 1),
            "perfectly balanced occupancy"
        );
    }

    #[test]
    fn different_devices_get_different_lines() {
        let m = map();
        let mk = |device| RepairLine {
            rank: rank0(),
            device,
            bank: 0,
            row: 0,
            colgroup: 0,
        };
        let keys: HashSet<u64> = (0..18).map(|d| m.key_of(&mk(d))).collect();
        assert_eq!(
            keys.len(),
            18,
            "device ID differentiates lines (5-bit field)"
        );
    }

    #[test]
    fn different_ranks_get_different_lines() {
        let m = map();
        let cfg = DramConfig::isca16_reliability();
        let keys: HashSet<u64> = (0..cfg.total_rank_slots())
            .map(|i| {
                m.key_of(&RepairLine {
                    rank: RankId::from_flat_index(&cfg, i),
                    device: 0,
                    bank: 0,
                    row: 0,
                    colgroup: 0,
                })
            })
            .collect();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn repair_addr_is_line_aligned() {
        let m = map();
        let a = m.repair_addr(&RepairLine {
            rank: rank0(),
            device: 9,
            bank: 3,
            row: 12345,
            colgroup: 11,
        });
        assert_eq!(a % 64, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_coordinates() {
        let m = map();
        m.repair_addr(&RepairLine {
            rank: rank0(),
            device: 18,
            bank: 0,
            row: 0,
            colgroup: 0,
        });
    }

    #[test]
    fn keys_are_unique() {
        prop::check(256, |src| {
            let line = |src: &mut prop::Source| RepairLine {
                rank: rank0(),
                device: src.u32(0, 17),
                bank: src.u32(0, 7),
                row: src.u32(0, 65535),
                colgroup: src.u32(0, 15),
            };
            let l1 = line(src);
            let l2 = line(src);
            let m = map();
            prop_assert_eq!(l1 == l2, m.key_of(&l1) == m.key_of(&l2));
            Ok(())
        });
    }
}
