//! Storage and energy overhead arithmetic (paper Table 1 and §3.3).

use relaxfault_cache::CacheConfig;
use relaxfault_dram::DramConfig;

/// RelaxFault's dedicated storage, in bytes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOverhead {
    /// Faulty-bank table: one bit per bank per DIMM in the node.
    pub faulty_bank_table: u64,
    /// Pre-computed coalescer bitmasks: one beat-wide (bus-width) mask per
    /// data device.
    pub data_coalescer: u64,
    /// LLC tag extension: one RelaxFault-indicator bit per line.
    pub llc_tag_extension: u64,
}

impl StorageOverhead {
    /// Computes the overhead for a node configuration.
    pub fn for_system(dram: &DramConfig, llc: &CacheConfig) -> Self {
        let bus_bytes = (dram.data_devices_per_rank * dram.device_width).div_ceil(8) as u64;
        Self {
            faulty_bank_table: (dram.dimms_per_node() as u64 * dram.banks as u64).div_ceil(8),
            data_coalescer: dram.data_devices_per_rank as u64 * bus_bytes,
            llc_tag_extension: llc.total_lines().div_ceil(8),
        }
    }

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.faulty_bank_table + self.data_coalescer + self.llc_tag_extension
    }
}

/// §3.3 energy figures, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyOverhead {
    /// Augmented LLC tag lookup (CACTI, 1 MiB 16-way bank).
    pub tag_lookup_nj: f64,
    /// Full LLC data access, for scale.
    pub llc_access_nj: f64,
    /// Servicing a miss from DDR3 DRAM, for scale.
    pub dram_miss_nj: f64,
}

impl EnergyOverhead {
    /// The paper's §3.3 numbers.
    pub fn isca16() -> Self {
        Self {
            tag_lookup_nj: 0.009,
            llc_access_nj: 0.641,
            dram_miss_nj: 36.0,
        }
    }

    /// Worst-case metadata energy as a fraction of one LLC access
    /// (paper: < 1.5%).
    pub fn metadata_vs_llc_access(&self) -> f64 {
        self.tag_lookup_nj / self.llc_access_nj
    }

    /// Worst-case metadata energy as a fraction of a DRAM miss
    /// (paper: < 0.03%).
    pub fn metadata_vs_dram_miss(&self) -> f64 {
        self.tag_lookup_nj / self.dram_miss_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers() {
        let o = StorageOverhead::for_system(
            &DramConfig::isca16_reliability(),
            &CacheConfig::isca16_llc(),
        );
        assert_eq!(o.faulty_bank_table, 8, "1 byte per DIMM (8 banks)");
        assert_eq!(o.data_coalescer, 128, "16 devices × 8-byte beat masks");
        assert_eq!(o.llc_tag_extension, 16384, "1 bit per LLC line");
        assert_eq!(o.total(), 16520, "Table 1 total");
    }

    #[test]
    fn energy_fractions_match_paper_bounds() {
        let e = EnergyOverhead::isca16();
        assert!(e.metadata_vs_llc_access() < 0.015);
        assert!(e.metadata_vs_dram_miss() < 0.0003);
    }

    #[test]
    fn overhead_scales_with_dimms() {
        // Footnote 3: a 2 TiB DDR4 node needs just 64 16-bit entries.
        let mut big = DramConfig::isca16_reliability();
        big.dimms_per_channel = 16; // 64 DIMMs
        big.banks = 16;
        let o = StorageOverhead::for_system(&big, &CacheConfig::isca16_llc());
        assert_eq!(o.faulty_bank_table, 128, "64 DIMMs × 16 banks / 8");
    }
}
