//! Repair planners: RelaxFault, FreeFault, and post-package repair.
//!
//! A planner owns the repair state of one *node* (its LLC occupancy or
//! spare-row budget) and is offered each permanent fault as it is
//! discovered. [`RepairMechanism::try_repair`] is atomic: either the whole
//! fault is repaired — every faulty bit covered, every constraint still
//! satisfied — or the planner's state is unchanged and the fault stays
//! exposed. That mirrors the hardware, which cannot half-repair a fault,
//! and is what the paper's repair-coverage metric counts.

use crate::mapping::{RelaxMap, RepairLine};
use relaxfault_cache::CacheConfig;
use relaxfault_dram::{AddressMap, DramConfig, DramLoc, RankId};
use relaxfault_faults::{Extent, FaultRegion};
use relaxfault_util::hash::{FxHashMap, FxHashSet};
use relaxfault_util::obs::{self, Counter, Histogram, Level};
use relaxfault_util::trace_event;
use std::sync::OnceLock;

/// Per-mechanism repair-planning telemetry. Updates are a relaxed load
/// and a branch when observability is disabled.
struct PlanMetrics {
    attempts: Counter,
    accepted: Counter,
    rejected_capacity: Counter,
    rejected_conflict: Counter,
    lines_per_repair: Histogram,
}

impl PlanMetrics {
    fn new(mech: &str) -> Self {
        Self {
            attempts: obs::counter(&format!("plan.{mech}.attempts")),
            accepted: obs::counter(&format!("plan.{mech}.accepted")),
            rejected_capacity: obs::counter(&format!("plan.{mech}.rejected_capacity")),
            rejected_conflict: obs::counter(&format!("plan.{mech}.rejected_conflict")),
            lines_per_repair: obs::histogram(&format!("plan.{mech}.lines_per_repair")),
        }
    }

    fn record(&self, mech: &'static str, outcome: RepairOutcome, lines: u64) {
        self.attempts.inc();
        match outcome {
            RepairOutcome::Accepted => {
                self.accepted.inc();
                self.lines_per_repair.record(lines);
            }
            RepairOutcome::RejectedCapacity => self.rejected_capacity.inc(),
            RepairOutcome::RejectedConflict => self.rejected_conflict.inc(),
        }
        trace_event!(target: "plan", Level::Debug, "repair_attempt",
            mech = mech, outcome = outcome.key(), lines = lines);
    }
}

#[derive(Clone, Copy)]
enum RepairOutcome {
    Accepted,
    RejectedCapacity,
    RejectedConflict,
}

impl RepairOutcome {
    fn key(self) -> &'static str {
        match self {
            RepairOutcome::Accepted => "accepted",
            RepairOutcome::RejectedCapacity => "rejected-capacity",
            RepairOutcome::RejectedConflict => "rejected-conflict",
        }
    }
}

fn relaxfault_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics::new("relaxfault"))
}

fn freefault_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics::new("freefault"))
}

fn ppr_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics::new("ppr"))
}

/// Reusable scratch buffers for repair planning. The Monte Carlo engine
/// offers millions of faults per run; routing every enumeration through
/// one of these (owned per worker thread) keeps the planners free of
/// per-call allocation. The buffers carry no state between calls — any
/// `PlanScratch` works with any planner.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    /// Materialized candidate planes, struct-of-arrays: `cand_sets[i]` /
    /// `cand_keys[i]` describe candidate `i`. The production path streams
    /// candidates straight into the occupancy without materializing them;
    /// these planes exist for the enumeration-pinning tests.
    #[cfg(test)]
    cand_sets: Vec<u32>,
    #[cfg(test)]
    cand_keys: Vec<u64>,
    /// `(flat rank, device, bank, row)` rows for the PPR planner.
    rows: Vec<(u32, u32, u32, u32)>,
    /// Per-set fresh-line counts for the current begin/offer/finish add,
    /// indexed by set. Zeroed (via `touched`) before `finish` returns.
    set_counts: Vec<u32>,
    /// Sets with a nonzero entry in `set_counts`.
    touched: Vec<u32>,
}

impl PlanScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A fine-grained memory repair mechanism, driven one fault at a time.
pub trait RepairMechanism {
    /// Short mechanism name for reports.
    fn name(&self) -> &'static str;

    /// Attempts to repair a fault (all of its regions) without allocating,
    /// using caller-provided scratch buffers. Returns whether the repair
    /// succeeded; on failure the planner state is unchanged.
    fn try_repair_with(&mut self, regions: &[FaultRegion], scratch: &mut PlanScratch) -> bool;

    /// Convenience form of [`RepairMechanism::try_repair_with`] that
    /// allocates fresh scratch. Fine for one-off calls; hot loops should
    /// hold a [`PlanScratch`] and use `try_repair_with`.
    fn try_repair(&mut self, regions: &[FaultRegion]) -> bool {
        let mut scratch = PlanScratch::default();
        self.try_repair_with(regions, &mut scratch)
    }

    /// Forgets all repairs, returning to the freshly-constructed state
    /// while keeping internal capacity for reuse across Monte Carlo
    /// trials.
    fn reset(&mut self);

    /// LLC lines currently locked for repair (0 for PPR).
    fn lines_used(&self) -> u64;

    /// LLC bytes currently locked for repair.
    fn bytes_used(&self) -> u64;

    /// The largest number of repair lines in any one LLC set (0 for PPR).
    fn max_ways_used(&self) -> u32;
}

/// Shared LLC-occupancy bookkeeping for the two cache-based mechanisms,
/// stored struct-of-arrays: a flat slot plane (`max_ways` key slots per
/// set) plus a parallel count plane, replacing the former global hash
/// set. A line's key determines its set (the key *is* the line address
/// above the offset bits), so per-set storage loses no dedup power, the
/// admission check is a bounded linear scan over at most `max_ways`
/// contiguous keys — no hashing, no probing — and rollback is O(touched
/// sets): truncating each count plane entry un-inserts every fresh key at
/// once.
#[derive(Debug, Clone)]
struct LlcOccupancy {
    max_ways: u32,
    line_bytes: u64,
    sets: u64,
    /// Key plane: `max_ways` contiguous slots per set; only the first
    /// `counts[set]` are live (stale slots are never read).
    slots: Vec<u64>,
    /// Count plane: lines locked per set, one byte each (8 KiB at 8192
    /// sets — the whole plane stays L1/L2-resident across trials).
    counts: Vec<u8>,
    /// Signature plane: a 64-bit bloom word per set, the OR of every live
    /// key's [`key_sig`] bit. A candidate whose bit is absent is
    /// *provably* fresh, so the dup scan is skipped — the common case for
    /// large faults, whose candidates are internally distinct.
    sig: Vec<u64>,
    /// Pending-candidate planes for [`Self::offer`]: candidates buffer
    /// here until [`BATCH`](Self::BATCH) accumulate, then the batch's
    /// occupancy lines are prefetched together and drained in order. A
    /// large fault touches sets all over the 1 MiB slot plane; issuing
    /// the loads a batch ahead overlaps the misses instead of paying
    /// each one serially. Admission order is unchanged, so verdicts and
    /// committed state are bit-identical to unbatched processing.
    batch_sets: Vec<u32>,
    batch_keys: Vec<u64>,
    /// Sets with a nonzero `counts` entry, for sparse reset/iteration.
    dirty_sets: Vec<u32>,
    /// Total lines locked (the sum of `counts`).
    line_count: u64,
    max_used: u32,
}

/// Admits one candidate into the occupancy planes (the per-candidate body
/// of [`LlcOccupancy::admit_batch`], split out so the batch planes and the
/// occupancy planes can be borrowed disjointly). Returns `false` when the
/// set is already at the way limit.
#[inline]
fn admit_one(
    stride: usize,
    slots: &mut [u64],
    counts: &mut [u8],
    sig: &mut [u64],
    set: u32,
    key: u64,
    scratch: &mut PlanScratch,
) -> bool {
    let si = set as usize;
    let cnt = counts[si] as usize;
    let base = si * stride;
    let bit = LlcOccupancy::key_sig(key);
    let s = sig[si];
    if s & bit != 0 && slots[base..base + cnt].contains(&key) {
        return true; // already repaired, or a duplicate candidate
    }
    if cnt == stride {
        return false;
    }
    slots[base + cnt] = key;
    counts[si] = (cnt + 1) as u8;
    sig[si] = s | bit;
    let fresh = &mut scratch.set_counts[si];
    if *fresh == 0 {
        scratch.touched.push(set);
    }
    *fresh += 1;
    true
}

impl LlcOccupancy {
    fn new(llc: &CacheConfig, max_ways: u32) -> Self {
        assert!(
            max_ways >= 1 && max_ways <= llc.ways,
            "way limit out of range"
        );
        assert!(max_ways <= u8::MAX as u32, "count plane is u8");
        Self {
            max_ways,
            line_bytes: llc.line_bytes as u64,
            sets: llc.sets(),
            slots: vec![0; llc.sets() as usize * max_ways as usize],
            counts: vec![0; llc.sets() as usize],
            sig: vec![0; llc.sets() as usize],
            batch_sets: Vec::with_capacity(Self::BATCH),
            batch_keys: Vec::with_capacity(Self::BATCH),
            dirty_sets: Vec::new(),
            line_count: 0,
            max_used: 0,
        }
    }

    fn reset(&mut self) {
        for &s in &self.dirty_sets {
            self.counts[s as usize] = 0;
            self.sig[s as usize] = 0;
        }
        self.dirty_sets.clear();
        self.line_count = 0;
        self.max_used = 0;
    }

    /// Absolute ceiling on additional lines; used to reject huge faults
    /// before enumerating them.
    fn budget_ceiling(&self) -> u64 {
        self.sets * self.max_ways as u64
    }

    /// One bloom bit per key for the per-set signature word. The multiply
    /// spreads key bits so that within one set (where low key bits are
    /// often constant) the chosen bit still varies.
    #[inline]
    fn key_sig(key: u64) -> u64 {
        1u64 << (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
    }

    /// Opens an atomic add: candidates are streamed in via [`Self::offer`]
    /// as the planner enumerates them (no materialized candidate list),
    /// then [`Self::finish`] commits or rolls back. Either every new line
    /// fits under the per-set way limit and all are committed, or nothing
    /// changes. Whether *any* set overflows is independent of candidate
    /// order, so the verdict — and the committed state — match an
    /// exhaustive check exactly.
    fn begin(&mut self, scratch: &mut PlanScratch) {
        if scratch.set_counts.len() < self.sets as usize {
            scratch.set_counts.resize(self.sets as usize, 0);
        }
        debug_assert!(scratch.touched.is_empty());
    }

    /// Candidates buffered between prefetch-and-drain rounds. One round's
    /// occupancy lines fit in L1 while giving the prefetcher enough
    /// lookahead to overlap the whole round's misses.
    const BATCH: usize = 64;

    /// Offers one candidate line, buffering it for batched admission.
    /// Each key is eventually checked against its set's live slots
    /// (covering both already-locked lines and earlier candidates of
    /// this call); fresh insertions bump the count plane directly.
    /// Returns `false` when a set hit the way limit — the caller must
    /// stop offering and [`Self::finish`] with `ok = false`, which also
    /// spares enumerating the rest of the fault.
    #[inline]
    fn offer(&mut self, set: u32, key: u64, scratch: &mut PlanScratch) -> bool {
        self.batch_sets.push(set);
        self.batch_keys.push(key);
        if self.batch_sets.len() == Self::BATCH {
            self.admit_batch(scratch)
        } else {
            true
        }
    }

    /// Prefetches every buffered candidate's occupancy lines, then admits
    /// the batch in offer order. Returns `false` on the first overfull
    /// set (leaving that round partially admitted, exactly as unbatched
    /// processing would — [`Self::finish`] rolls it back).
    fn admit_batch(&mut self, scratch: &mut PlanScratch) -> bool {
        let stride = self.max_ways as usize;
        #[cfg(target_arch = "x86_64")]
        for &set in &self.batch_sets {
            let si = set as usize;
            // Safety: prefetch is a hint — it never dereferences — and
            // both indices are in bounds anyway (set < sets).
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(self.sig.as_ptr().add(si).cast(), _MM_HINT_T0);
                _mm_prefetch(self.slots.as_ptr().add(si * stride).cast(), _MM_HINT_T0);
            }
        }
        let mut ok = true;
        let Self {
            slots,
            counts,
            sig,
            batch_sets,
            batch_keys,
            ..
        } = self;
        for (&set, &key) in batch_sets.iter().zip(batch_keys.iter()) {
            if !admit_one(stride, slots, counts, sig, set, key, scratch) {
                ok = false;
                break;
            }
        }
        batch_sets.clear();
        batch_keys.clear();
        ok
    }

    /// Closes the add opened by [`Self::begin`]: drains any buffered
    /// candidates, then on `ok` commits the bookkeeping (dirty-set
    /// tracking, line totals, high-water mark); otherwise rolls back by
    /// subtracting the per-set fresh counts from the count plane — the
    /// freshly written slots become stale without being touched. Always
    /// leaves the scratch planes zeroed for reuse.
    fn finish(&mut self, ok: bool, scratch: &mut PlanScratch) -> bool {
        let ok = if ok {
            self.admit_batch(scratch)
        } else {
            // Aborted mid-enumeration: the buffered tail was never
            // admitted and must not survive into the next call.
            self.batch_sets.clear();
            self.batch_keys.clear();
            ok
        };
        let stride = self.max_ways as usize;
        if ok {
            for &s in &scratch.touched {
                let si = s as usize;
                let fresh = scratch.set_counts[si];
                let now = self.counts[si] as u32;
                if now == fresh {
                    self.dirty_sets.push(s);
                }
                self.max_used = self.max_used.max(now);
                self.line_count += fresh as u64;
            }
        } else {
            for &s in &scratch.touched {
                let si = s as usize;
                self.counts[si] -= scratch.set_counts[si] as u8;
                // The slot plane needs no repair (stale tails are never
                // read), but the signature word must drop the rolled-back
                // keys' bits: rebuild it from the surviving slots.
                let base = si * stride;
                let mut sig = 0u64;
                for &k in &self.slots[base..base + self.counts[si] as usize] {
                    sig |= Self::key_sig(k);
                }
                self.sig[si] = sig;
            }
        }
        for &s in &scratch.touched {
            scratch.set_counts[s as usize] = 0;
        }
        scratch.touched.clear();
        ok
    }

    fn lines_used(&self) -> u64 {
        self.line_count
    }

    fn bytes_used(&self) -> u64 {
        self.lines_used() * self.line_bytes
    }

    /// The keys of every locked line, in arbitrary order.
    fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        let stride = self.max_ways as usize;
        self.dirty_sets.iter().flat_map(move |&s| {
            let si = s as usize;
            self.slots[si * stride..si * stride + self.counts[si] as usize]
                .iter()
                .copied()
        })
    }

    /// `(set, lines locked)` for every occupied set, in arbitrary order.
    fn occupied(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dirty_sets
            .iter()
            .map(|&s| (s, self.counts[s as usize] as u32))
    }

    /// Verifies the occupancy bookkeeping against itself: the sparse
    /// `dirty_sets` view, the count plane, the live slot plane, the line
    /// total, and the `max_used` high-water mark must all tell the same
    /// story. O(sets) — meant for tests and the `RF_CHECK=1` engine hook,
    /// not the hot path.
    fn check_invariants(&self) -> Result<(), String> {
        let mut sum = 0u64;
        let mut seen = FxHashSet::default();
        let stride = self.max_ways as usize;
        for &s in &self.dirty_sets {
            if s as u64 >= self.sets {
                return Err(format!("dirty set {s} out of range ({})", self.sets));
            }
            if !seen.insert(s) {
                return Err(format!("set {s} appears twice in dirty_sets"));
            }
            let si = s as usize;
            let c = self.counts[si] as u32;
            if c == 0 {
                return Err(format!("dirty set {s} has zero occupancy"));
            }
            if c > self.max_ways {
                return Err(format!(
                    "set {s} holds {c} lines, over the {}-way limit",
                    self.max_ways
                ));
            }
            let live = &self.slots[si * stride..si * stride + c as usize];
            let mut keys: FxHashSet<u64> = FxHashSet::default();
            let mut sig = 0u64;
            for &k in live {
                if !keys.insert(k) {
                    return Err(format!("set {s} holds key {k:#x} twice"));
                }
                sig |= Self::key_sig(k);
            }
            if sig != self.sig[si] {
                return Err(format!(
                    "set {s} signature {:#x} disagrees with live slots ({sig:#x})",
                    self.sig[si]
                ));
            }
            sum += c as u64;
        }
        if sum != self.line_count {
            return Err(format!(
                "per-set occupancy sums to {sum} but {} lines are counted",
                self.line_count
            ));
        }
        for (si, &c) in self.counts.iter().enumerate() {
            if c == 0 && self.sig[si] != 0 {
                return Err(format!("empty set {si} has stale signature bits"));
            }
        }
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        if nonzero != self.dirty_sets.len() {
            return Err(format!(
                "{nonzero} sets occupied but only {} tracked dirty",
                self.dirty_sets.len()
            ));
        }
        // Lines only accumulate between resets, so the high-water mark must
        // equal the current maximum exactly.
        let max = self.counts.iter().copied().max().unwrap_or(0) as u32;
        if self.max_used != max {
            return Err(format!(
                "max_used {} disagrees with per-set maximum {max}",
                self.max_used
            ));
        }
        Ok(())
    }
}

/// Precomputed XOR deltas for enumerating the `(set, key)` pairs of a
/// rectangular fault footprint without re-encoding every block.
///
/// Both address layouts here ([`AddressMap::encode`] and
/// [`RelaxMap::repair_addr`]) deposit each coordinate's bits at fixed
/// positions, and the only cross-coordinate interaction is an XOR (the
/// bank⊕row hash); the LLC set index is likewise a canonical bit-extract
/// or an XOR fold. All of it is linear over GF(2), so
/// `addr(bank, row, col) = addr(bank, 0, 0) ⊕ Δ(row) ⊕ Δ(col)` exactly,
/// and the same holds for the set index. Rows split further into low/high
/// halves (`Δ(row) = Δ(row & 255) ⊕ Δ(row & !255)`), keeping the tables
/// a few KiB even for 64Ki-row devices. Unit tests pin the fast
/// enumeration against the direct per-block encoding.
#[derive(Debug, Clone)]
struct LineDeltas {
    /// Address / set delta planes per column index (colblock or
    /// colgroup), struct-of-arrays: `col_addr[c]` and `col_set[c]`
    /// describe column `c`.
    col_addr: Vec<u64>,
    col_set: Vec<u64>,
    /// Delta planes per `row & 255`.
    row_lo_addr: Vec<u64>,
    row_lo_set: Vec<u64>,
    /// Delta planes per `row >> 8`.
    row_hi_addr: Vec<u64>,
    row_hi_set: Vec<u64>,
}

impl LineDeltas {
    /// Builds the tables from `addr_of(row, col)`, the layout's address
    /// for row/col with every other coordinate zero (which must itself
    /// map to address 0).
    fn new(llc: &CacheConfig, rows: u32, cols: u32, addr_of: impl Fn(u32, u32) -> u64) -> Self {
        debug_assert_eq!(addr_of(0, 0), 0, "layout must be origin-zero");
        let col: Vec<u64> = (0..cols).map(|c| addr_of(0, c)).collect();
        let row_lo: Vec<u64> = (0..rows.min(256)).map(|r| addr_of(r, 0)).collect();
        let row_hi: Vec<u64> = (0..rows.div_ceil(256))
            .map(|h| addr_of(h << 8, 0))
            .collect();
        let sets = |v: &[u64]| v.iter().map(|&a| llc.set_of(a)).collect();
        Self {
            col_set: sets(&col),
            row_lo_set: sets(&row_lo),
            row_hi_set: sets(&row_hi),
            col_addr: col,
            row_lo_addr: row_lo,
            row_hi_addr: row_hi,
        }
    }

    /// The `(addr, set)` delta of `row` relative to row 0.
    #[inline]
    fn row(&self, row: u32) -> (u64, u64) {
        let (lo, hi) = ((row & 255) as usize, (row >> 8) as usize);
        (
            self.row_lo_addr[lo] ^ self.row_hi_addr[hi],
            self.row_lo_set[lo] ^ self.row_hi_set[hi],
        )
    }

    /// The `(addr, set)` delta of column `c` relative to column 0.
    #[inline]
    fn col(&self, c: usize) -> (u64, u64) {
        (self.col_addr[c], self.col_set[c])
    }
}

/// Streams the `(set, key)` of every RelaxFault repair line of `regions`
/// into `f`, in enumeration order, using the XOR-delta tables: one full
/// `repair_addr` per (region, bank), then two XORs per line. Stops early
/// — returning `false` — as soon as `f` does, so a consumer that has
/// already decided the fault is unrepairable never pays for the rest of
/// the footprint.
fn relax_lines_each(
    map: &RelaxMap,
    dram: &DramConfig,
    llc: &CacheConfig,
    deltas: &LineDeltas,
    regions: &[FaultRegion],
    f: &mut impl FnMut(u32, u64) -> bool,
) -> bool {
    let off = llc.offset_bits();
    for r in regions {
        let rect = r.footprint(dram);
        let groups = rect.colblocks.divided(map.coalesce_factor());
        for bank in rect.banks.iter() {
            let base = map.repair_addr(&RepairLine {
                rank: r.rank,
                device: r.device,
                bank,
                row: 0,
                colgroup: 0,
            });
            let set_base = llc.set_of(base);
            for row in rect.rows.iter() {
                let (ra, rs) = deltas.row(row);
                let (row_addr, row_set) = (base ^ ra, set_base ^ rs);
                for colgroup in groups.iter() {
                    let (ca, cs) = deltas.col(colgroup as usize);
                    if !f((row_set ^ cs) as u32, (row_addr ^ ca) >> off) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// The paper's contribution: coalescing repair in the LLC (Figure 7c
/// mapping). One repair line covers `data_devices_per_rank` consecutive
/// sub-blocks of the faulty device, so a full device row needs only
/// `blocks_per_row / data_devices` lines (16 in the evaluation system).
#[derive(Debug, Clone)]
pub struct RelaxFault {
    map: RelaxMap,
    dram: DramConfig,
    llc: CacheConfig,
    deltas: LineDeltas,
    occ: LlcOccupancy,
}

impl RelaxFault {
    /// Creates a planner with at most `max_ways_per_set` lines per LLC set.
    ///
    /// # Panics
    ///
    /// Panics if the configs are invalid or `max_ways_per_set` is 0 or
    /// exceeds the LLC associativity.
    pub fn new(dram: &DramConfig, llc: &CacheConfig, max_ways_per_set: u32) -> Self {
        let map = RelaxMap::new(dram, llc);
        if obs::metrics_enabled() {
            obs::gauge("plan.relaxfault.coalesce_factor").set(map.coalesce_factor() as f64);
        }
        let origin = RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        };
        let deltas = LineDeltas::new(llc, dram.rows, map.colgroups_per_row(), |row, colgroup| {
            map.repair_addr(&RepairLine {
                rank: origin,
                device: 0,
                bank: 0,
                row,
                colgroup,
            })
        });
        Self {
            map,
            dram: *dram,
            llc: *llc,
            deltas,
            occ: LlcOccupancy::new(llc, max_ways_per_set),
        }
    }

    /// The repair mapping in use.
    pub fn mapping(&self) -> &RelaxMap {
        &self.map
    }

    /// The keys of every locked repair line, in arbitrary order. Read-only
    /// view for differential oracles and regression tests.
    pub fn line_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.occ.keys()
    }

    /// `(set, lines locked)` for every occupied set, in arbitrary order.
    pub fn occupied_sets(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.occ.occupied()
    }

    /// Verifies the planner's occupancy bookkeeping (see
    /// `LlcOccupancy::check_invariants`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.occ.check_invariants()
    }

    /// Analytic count of repair lines a fault would need in isolation.
    pub fn lines_needed(&self, regions: &[FaultRegion]) -> u64 {
        regions
            .iter()
            .map(|r| r.footprint(&self.dram))
            .map(|rect| {
                rect.banks.len() as u64
                    * rect.rows.len()
                    * rect.colblocks.divided(self.map.coalesce_factor()).len()
            })
            .sum()
    }

    /// Enumerates the set/key planes of every repair line into
    /// `scratch.cand_sets` / `cand_keys` — the materialized form of
    /// [`relax_lines_each`], for tests that pin the fast enumeration
    /// against the direct per-line mapping.
    #[cfg(test)]
    fn lines_into(&self, regions: &[FaultRegion], scratch: &mut PlanScratch) {
        scratch.cand_sets.clear();
        scratch.cand_keys.clear();
        relax_lines_each(
            &self.map,
            &self.dram,
            &self.llc,
            &self.deltas,
            regions,
            &mut |set, key| {
                scratch.cand_sets.push(set);
                scratch.cand_keys.push(key);
                true
            },
        );
    }

    /// Enumerates the repair lines of one fault.
    pub fn repair_lines<'a>(
        &'a self,
        regions: &'a [FaultRegion],
    ) -> impl Iterator<Item = RepairLine> + 'a {
        regions.iter().flat_map(move |r| {
            let rect = r.footprint(&self.dram);
            let rank = r.rank;
            let device = r.device;
            let groups = rect.colblocks.divided(self.map.coalesce_factor());
            rect.banks.iter().flat_map(move |bank| {
                rect.rows.iter().flat_map(move |row| {
                    groups.iter().map(move |colgroup| RepairLine {
                        rank,
                        device,
                        bank,
                        row,
                        colgroup,
                    })
                })
            })
        })
    }
}

impl RepairMechanism for RelaxFault {
    fn name(&self) -> &'static str {
        "RelaxFault"
    }

    fn try_repair_with(&mut self, regions: &[FaultRegion], scratch: &mut PlanScratch) -> bool {
        let need = self.lines_needed(regions);
        if need > self.occ.budget_ceiling() {
            // Whole-bank-scale fault: fail before enumerating.
            relaxfault_metrics().record("RelaxFault", RepairOutcome::RejectedCapacity, need);
            return false;
        }
        // Enumeration streams straight into the occupancy — no candidate
        // list is materialized, and a conflicting fault stops enumerating
        // at the first overfull set.
        let before = self.occ.lines_used();
        self.occ.begin(scratch);
        let Self {
            map,
            dram,
            llc,
            deltas,
            occ,
        } = self;
        let all = relax_lines_each(map, dram, llc, deltas, regions, &mut |set, key| {
            occ.offer(set, key, scratch)
        });
        let ok = occ.finish(all, scratch);
        let outcome = if ok {
            RepairOutcome::Accepted
        } else {
            RepairOutcome::RejectedConflict
        };
        relaxfault_metrics().record("RelaxFault", outcome, self.occ.lines_used() - before);
        ok
    }

    fn reset(&mut self) {
        self.occ.reset();
    }

    fn lines_used(&self) -> u64 {
        self.occ.lines_used()
    }

    fn bytes_used(&self) -> u64 {
        self.occ.bytes_used()
    }

    fn max_ways_used(&self) -> u32 {
        self.occ.max_used
    }
}

/// The FreeFault baseline (Kim & Erez, HPCA'15): lock one LLC line for
/// every faulty *physical* 64-byte block, found through the normal
/// physical-address mapping. Fault-oblivious, so a one-device row fault
/// costs `blocks_per_row` lines (256) instead of RelaxFault's 16.
#[derive(Debug, Clone)]
pub struct FreeFault {
    dram: DramConfig,
    dram_map: AddressMap,
    llc: CacheConfig,
    deltas: LineDeltas,
    occ: LlcOccupancy,
}

impl FreeFault {
    /// Creates a planner. `llc.indexing` decides whether the LLC hashes its
    /// set index — the variable the paper's Figure 8 sweeps.
    ///
    /// # Panics
    ///
    /// Panics on invalid configs or way limits (see [`RelaxFault::new`]).
    pub fn new(dram: &DramConfig, llc: &CacheConfig, max_ways_per_set: u32) -> Self {
        let dram_map = AddressMap::nehalem_like(dram, true);
        let deltas = LineDeltas::new(llc, dram.rows, dram.blocks_per_row(), |row, colblock| {
            dram_map
                .encode(
                    DramLoc {
                        channel: 0,
                        dimm: 0,
                        rank: 0,
                        bank: 0,
                        row,
                        colblock,
                    },
                    0,
                )
                .0
        });
        Self {
            dram: *dram,
            dram_map,
            llc: *llc,
            deltas,
            occ: LlcOccupancy::new(llc, max_ways_per_set),
        }
    }

    /// Analytic count of LLC lines a fault would need in isolation.
    pub fn lines_needed(&self, regions: &[FaultRegion]) -> u64 {
        regions
            .iter()
            .map(|r| r.footprint(&self.dram).block_count())
            .sum()
    }

    /// The keys of every locked repair line, in arbitrary order.
    pub fn line_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.occ.keys()
    }

    /// `(set, lines locked)` for every occupied set, in arbitrary order.
    pub fn occupied_sets(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.occ.occupied()
    }

    /// Verifies the planner's occupancy bookkeeping (see
    /// `LlcOccupancy::check_invariants`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.occ.check_invariants()
    }

    /// Enumerates the set/key planes of every faulty physical block into
    /// `scratch.cand_sets` / `cand_keys` — the materialized form of
    /// [`free_blocks_each`], for tests that pin the fast enumeration
    /// against direct encoding.
    #[cfg(test)]
    fn blocks(&self, regions: &[FaultRegion], scratch: &mut PlanScratch) {
        scratch.cand_sets.clear();
        scratch.cand_keys.clear();
        free_blocks_each(
            &self.dram_map,
            &self.dram,
            &self.llc,
            &self.deltas,
            regions,
            &mut |set, key| {
                scratch.cand_sets.push(set);
                scratch.cand_keys.push(key);
                true
            },
        );
    }
}

/// Streams the `(set, key)` of every faulty physical block of `regions`
/// into `f`: one full encode per (region, bank), every other block two
/// XORs via the delta tables. Stops early — returning `false` — as soon
/// as `f` does.
fn free_blocks_each(
    dram_map: &AddressMap,
    dram: &DramConfig,
    llc: &CacheConfig,
    deltas: &LineDeltas,
    regions: &[FaultRegion],
    f: &mut impl FnMut(u32, u64) -> bool,
) -> bool {
    let off = llc.offset_bits();
    for r in regions {
        let rect = r.footprint(dram);
        for bank in rect.banks.iter() {
            let base = dram_map
                .encode(
                    DramLoc {
                        channel: r.rank.channel,
                        dimm: r.rank.dimm,
                        rank: r.rank.rank,
                        bank,
                        row: 0,
                        colblock: 0,
                    },
                    0,
                )
                .0;
            let set_base = llc.set_of(base);
            for row in rect.rows.iter() {
                let (ra, rs) = deltas.row(row);
                let (row_addr, row_set) = (base ^ ra, set_base ^ rs);
                for colblock in rect.colblocks.iter() {
                    let (ca, cs) = deltas.col(colblock as usize);
                    if !f((row_set ^ cs) as u32, (row_addr ^ ca) >> off) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

impl RepairMechanism for FreeFault {
    fn name(&self) -> &'static str {
        "FreeFault"
    }

    fn try_repair_with(&mut self, regions: &[FaultRegion], scratch: &mut PlanScratch) -> bool {
        let need = self.lines_needed(regions);
        if need > self.occ.budget_ceiling() {
            freefault_metrics().record("FreeFault", RepairOutcome::RejectedCapacity, need);
            return false;
        }
        // Stream blocks straight into the occupancy (see
        // `RelaxFault::try_repair_with`).
        let before = self.occ.lines_used();
        self.occ.begin(scratch);
        let Self {
            dram,
            dram_map,
            llc,
            deltas,
            occ,
        } = self;
        let all = free_blocks_each(dram_map, dram, llc, deltas, regions, &mut |set, key| {
            occ.offer(set, key, scratch)
        });
        let ok = occ.finish(all, scratch);
        let outcome = if ok {
            RepairOutcome::Accepted
        } else {
            RepairOutcome::RejectedConflict
        };
        freefault_metrics().record("FreeFault", outcome, self.occ.lines_used() - before);
        ok
    }

    fn reset(&mut self) {
        self.occ.reset();
    }

    fn lines_used(&self) -> u64 {
        self.occ.lines_used()
    }

    fn bytes_used(&self) -> u64 {
        self.occ.bytes_used()
    }

    fn max_ways_used(&self) -> u32 {
        self.occ.max_used
    }
}

/// DDR4-style post-package repair: each device owns one spare row per bank
/// group; blowing an eFuse permanently substitutes the spare for one faulty
/// row. Repairs are per-device and per-bank-group, so multi-row faults and
/// column faults exceed its reach (paper §6 and Figure 10's PPR line).
#[derive(Debug, Clone)]
pub struct Ppr {
    dram: DramConfig,
    banks_per_group: u32,
    spares_per_group: u32,
    /// Spares consumed, keyed by (flat rank, device, bank group).
    used: FxHashMap<(u32, u32, u32), u32>,
    /// Rows already repaired, keyed by (flat rank, device, bank, row) —
    /// a later fault inside a substituted row costs nothing.
    repaired_rows: FxHashSet<(u32, u32, u32, u32)>,
}

impl Ppr {
    /// Creates a PPR planner with the JEDEC defaults: one spare row per
    /// bank group, two banks per group for the 8-bank devices modelled
    /// here (DDR4 groups 4 of 16).
    pub fn new(dram: &DramConfig) -> Self {
        Self::with_spares(dram, dram.banks.div_ceil(4).max(1), 1)
    }

    /// Creates a PPR planner with custom grouping (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `banks_per_group` is 0 or exceeds the bank count.
    pub fn with_spares(dram: &DramConfig, banks_per_group: u32, spares_per_group: u32) -> Self {
        assert!(banks_per_group >= 1 && banks_per_group <= dram.banks);
        Self {
            dram: *dram,
            banks_per_group,
            spares_per_group,
            used: FxHashMap::default(),
            repaired_rows: FxHashSet::default(),
        }
    }

    /// Spare rows consumed so far.
    pub fn spares_used(&self) -> u64 {
        self.used.values().map(|&v| v as u64).sum()
    }

    /// The substituted rows, as `(flat rank, device, bank, row)` keys in
    /// arbitrary order.
    pub fn repaired_rows(&self) -> impl Iterator<Item = (u32, u32, u32, u32)> + '_ {
        self.repaired_rows.iter().copied()
    }

    /// Verifies the spare accounting: every group's consumed-spare count
    /// must equal its substituted-row count and respect the per-group
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counts: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for &(flat, device, bank, _row) in &self.repaired_rows {
            *counts
                .entry((flat, device, bank / self.banks_per_group))
                .or_insert(0) += 1;
        }
        for (group, &used) in &self.used {
            if used > self.spares_per_group {
                return Err(format!(
                    "group {group:?} consumed {used} spares, budget {}",
                    self.spares_per_group
                ));
            }
            if counts.get(group).copied().unwrap_or(0) != used {
                return Err(format!(
                    "group {group:?} claims {used} spares but has {} rows",
                    counts.get(group).copied().unwrap_or(0)
                ));
            }
        }
        if counts.len() != self.used.len() {
            return Err(format!(
                "{} groups have substituted rows but {} consumed spares",
                counts.len(),
                self.used.len()
            ));
        }
        Ok(())
    }

    /// Collects the faulty rows a fault needs substituted into `rows`.
    /// Returns `false` if the fault is not row-shaped (whole banks) or is
    /// too large to ever fit the spare budget.
    fn rows_needed(&self, regions: &[FaultRegion], rows: &mut Vec<(u32, u32, u32, u32)>) -> bool {
        // Cap: a fault needing more rows than the device has spares in
        // total can never be repaired; avoid enumerating huge clusters.
        let total_spares =
            (self.dram.banks / self.banks_per_group).max(1) as u64 * self.spares_per_group as u64;
        rows.clear();
        for r in regions {
            let Some(per_bank) = r.extent.rows_per_bank(&self.dram) else {
                return false;
            };
            if per_bank > total_spares {
                return false;
            }
            let flat = r.rank.flat_index(&self.dram);
            match r.extent {
                Extent::Bit { bank, row, .. }
                | Extent::Word { bank, row, .. }
                | Extent::Row { bank, row } => rows.push((flat, r.device, bank, row)),
                Extent::Column {
                    bank,
                    row_start,
                    row_count,
                    ..
                }
                | Extent::RowCluster {
                    bank,
                    row_start,
                    row_count,
                } => {
                    for row in row_start..row_start + row_count {
                        rows.push((flat, r.device, bank, row));
                    }
                }
                Extent::Banks { .. } => return false,
            }
        }
        rows.sort_unstable();
        rows.dedup();
        true
    }
}

impl RepairMechanism for Ppr {
    fn name(&self) -> &'static str {
        "PPR"
    }

    fn try_repair_with(&mut self, regions: &[FaultRegion], scratch: &mut PlanScratch) -> bool {
        if !self.rows_needed(regions, &mut scratch.rows) {
            ppr_metrics().record("PPR", RepairOutcome::RejectedCapacity, 0);
            return false;
        }
        // Check pass: rows are sorted, so each (rank, device, bank group)
        // is a contiguous run; count the genuinely new rows per group
        // against its remaining spares.
        let rows = &scratch.rows;
        let mut i = 0;
        while i < rows.len() {
            let (flat, device, bank, _) = rows[i];
            let group = bank / self.banks_per_group;
            let mut fresh = 0u32;
            let mut j = i;
            while j < rows.len() {
                let (f2, d2, b2, _) = rows[j];
                if (f2, d2, b2 / self.banks_per_group) != (flat, device, group) {
                    break;
                }
                fresh += !self.repaired_rows.contains(&rows[j]) as u32;
                j += 1;
            }
            if fresh > 0
                && self.used.get(&(flat, device, group)).copied().unwrap_or(0) + fresh
                    > self.spares_per_group
            {
                ppr_metrics().record("PPR", RepairOutcome::RejectedConflict, 0);
                return false;
            }
            i = j;
        }
        let mut spares = 0u64;
        for &row_key in rows.iter() {
            if self.repaired_rows.insert(row_key) {
                let (flat, device, bank, _row) = row_key;
                *self
                    .used
                    .entry((flat, device, bank / self.banks_per_group))
                    .or_insert(0) += 1;
                spares += 1;
            }
        }
        ppr_metrics().record("PPR", RepairOutcome::Accepted, spares);
        true
    }

    fn reset(&mut self) {
        self.used.clear();
        self.repaired_rows.clear();
    }

    fn lines_used(&self) -> u64 {
        0
    }

    fn bytes_used(&self) -> u64 {
        0
    }

    fn max_ways_used(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_dram::RankId;
    use relaxfault_faults::BankSet;

    fn dram() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    fn llc() -> CacheConfig {
        CacheConfig::isca16_llc()
    }

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    fn region(extent: Extent) -> FaultRegion {
        FaultRegion {
            rank: rank0(),
            device: 3,
            extent,
        }
    }

    // --- RelaxFault ---

    #[test]
    fn relaxfault_costs_match_paper_arithmetic() {
        let d = dram();
        let mut rf = RelaxFault::new(&d, &llc(), 1);
        assert!(rf.try_repair(&[region(Extent::Bit {
            bank: 0,
            row: 1,
            col: 2
        })]));
        assert_eq!(rf.lines_used(), 1);
        assert!(rf.try_repair(&[region(Extent::Row { bank: 1, row: 7 })]));
        assert_eq!(rf.lines_used(), 17, "a device row adds 16 lines (1 KiB)");
        assert_eq!(rf.bytes_used(), 17 * 64);
        assert_eq!(rf.max_ways_used(), 1);
    }

    #[test]
    fn relaxfault_column_fault_fits_one_way() {
        let mut rf = RelaxFault::new(&dram(), &llc(), 1);
        let col = region(Extent::Column {
            bank: 2,
            col: 40,
            row_start: 512,
            row_count: 512,
        });
        assert!(rf.try_repair(&[col]));
        assert_eq!(rf.lines_used(), 512); // 32 KiB
        assert_eq!(rf.max_ways_used(), 1);
    }

    #[test]
    fn relaxfault_cluster_needs_more_ways_past_llc_fill() {
        // 1024-row cluster = 16,384 lines: double the set count, so the
        // 1-way planner must refuse and the 2-way planner must succeed
        // with perfectly even occupancy.
        let cluster = region(Extent::RowCluster {
            bank: 0,
            row_start: 0,
            row_count: 1024,
        });
        let mut one = RelaxFault::new(&dram(), &llc(), 1);
        assert!(!one.try_repair(&[cluster]));
        assert_eq!(one.lines_used(), 0, "failed repair must not leak lines");
        let mut two = RelaxFault::new(&dram(), &llc(), 2);
        assert!(two.try_repair(&[cluster]));
        assert_eq!(two.lines_used(), 16384);
        assert_eq!(two.max_ways_used(), 2);
    }

    #[test]
    fn relaxfault_rejects_whole_bank_fast() {
        let mut rf = RelaxFault::new(&dram(), &llc(), 16);
        let bank = region(Extent::Banks {
            banks: BankSet::one(0),
        });
        assert!(!rf.try_repair(&[bank]));
        assert_eq!(rf.lines_used(), 0);
    }

    #[test]
    fn relaxfault_shares_lines_between_overlapping_faults() {
        let mut rf = RelaxFault::new(&dram(), &llc(), 1);
        assert!(rf.try_repair(&[region(Extent::Row { bank: 0, row: 9 })]));
        // A later bit fault inside that row costs nothing new.
        assert!(rf.try_repair(&[region(Extent::Bit {
            bank: 0,
            row: 9,
            col: 77
        })]));
        assert_eq!(rf.lines_used(), 16);
    }

    #[test]
    fn relaxfault_way_limit_is_per_set() {
        // Under canonical indexing the device ID is pure tag: identical-row
        // faults on two devices collide set-for-set, so the 1-way planner
        // must refuse the second and a 2-way planner must take it.
        let unhashed = CacheConfig::isca16_llc_no_hash();
        let mut rf = RelaxFault::new(&dram(), &unhashed, 1);
        let a = FaultRegion {
            rank: rank0(),
            device: 3,
            extent: Extent::Row { bank: 0, row: 5 },
        };
        let b = FaultRegion {
            rank: rank0(),
            device: 4,
            extent: Extent::Row { bank: 0, row: 5 },
        };
        assert!(rf.try_repair(&[a]));
        assert!(!rf.try_repair(&[b]));
        assert_eq!(rf.lines_used(), 16, "refused repair leaves state intact");
        let mut rf2 = RelaxFault::new(&dram(), &unhashed, 2);
        assert!(rf2.try_repair(&[a]));
        assert!(rf2.try_repair(&[b]));
        assert_eq!(rf2.max_ways_used(), 2);
        // With set-index hashing the device tag bits fold into the index,
        // so the same pair spreads out and even 1 way suffices.
        let mut hashed = RelaxFault::new(&dram(), &llc(), 1);
        assert!(hashed.try_repair(&[a]));
        assert!(hashed.try_repair(&[b]));
        assert_eq!(hashed.max_ways_used(), 1);
    }

    #[test]
    fn relaxfault_repairs_ecc_devices_too() {
        let mut rf = RelaxFault::new(&dram(), &llc(), 1);
        let ecc_dev = FaultRegion {
            rank: rank0(),
            device: 17,
            extent: Extent::Row { bank: 0, row: 0 },
        };
        assert!(rf.try_repair(&[ecc_dev]));
        assert_eq!(rf.lines_used(), 16);
    }

    #[test]
    fn try_add_rollback_restores_exact_pre_offer_state() {
        // Audit pin for the rollback path: a rejected repair whose
        // candidate list *overlaps* already-locked lines must remove only
        // the lines it freshly inserted before aborting — the overlap was
        // skipped by the duplicate filter and must survive. Canonical
        // indexing makes the collision deterministic: same row on two
        // devices lands set-for-set on the same sets.
        let unhashed = CacheConfig::isca16_llc_no_hash();
        let mut rf = RelaxFault::new(&dram(), &unhashed, 1);
        let first = region(Extent::Row { bank: 0, row: 5 });
        assert!(rf.try_repair(&[first]));
        let mut keys_before: Vec<u64> = rf.line_keys().collect();
        keys_before.sort_unstable();
        let mut sets_before: Vec<(u32, u32)> = rf.occupied_sets().collect();
        sets_before.sort_unstable();
        rf.check_invariants().unwrap();

        // One fault spanning the already-repaired row (duplicates) and a
        // colliding row on another device (fresh lines that overflow the
        // 1-way budget): must be rejected wholesale.
        let conflict = [
            first,
            FaultRegion {
                rank: rank0(),
                device: 9,
                extent: Extent::Row { bank: 0, row: 5 },
            },
        ];
        for _ in 0..3 {
            // Repeated offers must keep failing without eroding state.
            assert!(!rf.try_repair(&conflict));
            let mut keys_after: Vec<u64> = rf.line_keys().collect();
            keys_after.sort_unstable();
            assert_eq!(keys_after, keys_before, "rollback leaked or dropped lines");
            let mut sets_after: Vec<(u32, u32)> = rf.occupied_sets().collect();
            sets_after.sort_unstable();
            assert_eq!(sets_after, sets_before, "rollback disturbed occupancy");
            assert_eq!(rf.max_ways_used(), 1);
            rf.check_invariants().unwrap();
        }
        // The planner still accepts an unrelated repair afterwards.
        assert!(rf.try_repair(&[region(Extent::Row { bank: 1, row: 6 })]));
        rf.check_invariants().unwrap();
        assert_eq!(rf.lines_used(), 32);
    }

    #[test]
    fn try_add_rollback_scratch_is_clean_for_reuse() {
        // The scratch buffers double as rollback state; a rejection must
        // zero them so the *next* call (any planner) starts clean.
        let unhashed = CacheConfig::isca16_llc_no_hash();
        let mut rf = RelaxFault::new(&dram(), &unhashed, 1);
        let mut scratch = PlanScratch::new();
        let a = region(Extent::Row { bank: 0, row: 5 });
        let b = FaultRegion {
            rank: rank0(),
            device: 9,
            extent: Extent::Row { bank: 0, row: 5 },
        };
        assert!(rf.try_repair_with(&[a], &mut scratch));
        assert!(!rf.try_repair_with(&[b], &mut scratch));
        assert!(scratch.touched.is_empty(), "touched not cleared on reject");
        assert!(
            scratch.set_counts.iter().all(|&c| c == 0),
            "set_counts not zeroed on reject"
        );
        // Same scratch drives a fresh planner correctly afterwards.
        let mut ff = FreeFault::new(&dram(), &unhashed, 16);
        assert!(ff.try_repair_with(&[b], &mut scratch));
        ff.check_invariants().unwrap();
    }

    // --- delta-table enumeration ---

    /// Extents chosen to cross every table boundary: the row low/high
    /// split at 256, multi-row and multi-column rects, and off-origin
    /// rank/device coordinates.
    fn delta_probe_regions() -> Vec<FaultRegion> {
        let far_rank = RankId {
            channel: 3,
            dimm: 1,
            rank: 0,
        };
        vec![
            region(Extent::Bit {
                bank: 5,
                row: 777,
                col: 129,
            }),
            region(Extent::Row { bank: 2, row: 300 }),
            FaultRegion {
                rank: far_rank,
                device: 11,
                extent: Extent::Column {
                    bank: 1,
                    col: 40,
                    row_start: 200,
                    row_count: 120,
                },
            },
            FaultRegion {
                rank: far_rank,
                device: 7,
                extent: Extent::RowCluster {
                    bank: 7,
                    row_start: 250,
                    row_count: 12,
                },
            },
        ]
    }

    #[test]
    fn freefault_delta_blocks_match_direct_encode() {
        let d = dram();
        let c = llc();
        let ff = FreeFault::new(&d, &c, 16);
        let map = AddressMap::nehalem_like(&d, true);
        for r in delta_probe_regions() {
            let mut scratch = PlanScratch::new();
            ff.blocks(std::slice::from_ref(&r), &mut scratch);
            let fast: Vec<(u64, u64)> = scratch
                .cand_sets
                .iter()
                .zip(&scratch.cand_keys)
                .map(|(&s, &k)| (s as u64, k))
                .collect();
            let mut naive = Vec::new();
            {
                let rect = r.footprint(&d);
                for bank in rect.banks.iter() {
                    for row in rect.rows.iter() {
                        for colblock in rect.colblocks.iter() {
                            let addr = map
                                .encode(
                                    DramLoc {
                                        channel: r.rank.channel,
                                        dimm: r.rank.dimm,
                                        rank: r.rank.rank,
                                        bank,
                                        row,
                                        colblock,
                                    },
                                    0,
                                )
                                .0;
                            naive.push((c.set_of(addr), addr >> c.offset_bits()));
                        }
                    }
                }
            }
            assert_eq!(fast, naive, "extent {:?}", r.extent);
        }
    }

    #[test]
    fn relaxfault_delta_lines_match_direct_mapping() {
        let d = dram();
        let c = llc();
        for r in delta_probe_regions() {
            let rf = RelaxFault::new(&d, &c, 16);
            let mut scratch = PlanScratch::new();
            rf.lines_into(std::slice::from_ref(&r), &mut scratch);
            let mut fast: Vec<(u64, u64)> = scratch
                .cand_sets
                .iter()
                .zip(&scratch.cand_keys)
                .map(|(&s, &k)| (s as u64, k))
                .collect();
            fast.sort_unstable();
            let mut naive: Vec<(u64, u64)> = rf
                .repair_lines(std::slice::from_ref(&r))
                .map(|l| (rf.map.set_of(&l), rf.map.key_of(&l)))
                .collect();
            naive.sort_unstable();
            assert_eq!(fast, naive, "extent {:?}", r.extent);
        }
    }

    // --- FreeFault ---

    #[test]
    fn freefault_row_fault_costs_16x_relaxfault() {
        let mut ff = FreeFault::new(&dram(), &llc(), 1);
        assert!(ff.try_repair(&[region(Extent::Row { bank: 1, row: 7 })]));
        assert_eq!(ff.lines_used(), 256, "one block per physical line (16 KiB)");
    }

    #[test]
    fn freefault_without_hash_cannot_repair_columns() {
        // The Figure 8 effect: a subarray column fault maps to few sets
        // under canonical indexing (row bits live in the tag).
        let col = region(Extent::Column {
            bank: 2,
            col: 40,
            row_start: 0,
            row_count: 512,
        });
        let mut plain = FreeFault::new(&dram(), &CacheConfig::isca16_llc_no_hash(), 16);
        assert!(!plain.try_repair(&[col]));
        let mut hashed = FreeFault::new(&dram(), &llc(), 1);
        assert!(hashed.try_repair(&[col]));
        assert_eq!(hashed.lines_used(), 512);
    }

    #[test]
    fn freefault_rejects_clusters_relaxfault_accepts() {
        let cluster = region(Extent::RowCluster {
            bank: 0,
            row_start: 0,
            row_count: 64,
        });
        // 64 rows × 256 blocks = 16,384 lines for FreeFault (1 MiB), with
        // 16 lines per set — beyond a 4-way budget.
        let mut ff = FreeFault::new(&dram(), &llc(), 4);
        assert!(!ff.try_repair(&[cluster]));
        // RelaxFault coalesces to 1,024 lines spread one per set.
        let mut rf = RelaxFault::new(&dram(), &llc(), 1);
        assert!(rf.try_repair(&[cluster]));
        assert_eq!(rf.lines_used(), 1024);
    }

    #[test]
    fn freefault_bit_fault_is_one_line() {
        let mut ff = FreeFault::new(&dram(), &llc(), 1);
        assert!(ff.try_repair(&[region(Extent::Bit {
            bank: 0,
            row: 0,
            col: 0
        })]));
        assert_eq!(ff.lines_used(), 1);
        // Another device, same block: the block is already locked.
        let other = FaultRegion {
            rank: rank0(),
            device: 9,
            extent: Extent::Bit {
                bank: 0,
                row: 0,
                col: 3,
            },
        };
        assert!(ff.try_repair(&[other]));
        assert_eq!(ff.lines_used(), 1, "FreeFault repairs whole blocks");
    }

    // --- PPR ---

    #[test]
    fn ppr_repairs_rows_and_bits() {
        let mut ppr = Ppr::new(&dram());
        assert!(ppr.try_repair(&[region(Extent::Row { bank: 0, row: 1 })]));
        assert!(ppr.try_repair(&[region(Extent::Bit {
            bank: 2,
            row: 3,
            col: 4
        })]));
        assert_eq!(ppr.spares_used(), 2);
        assert_eq!(ppr.lines_used(), 0);
    }

    #[test]
    fn ppr_exhausts_per_group_spares() {
        let d = dram();
        let mut ppr = Ppr::new(&d); // 8 banks → 4 groups of 2, 1 spare each
        assert!(ppr.try_repair(&[region(Extent::Row { bank: 0, row: 1 })]));
        // Bank 1 shares group 0 with bank 0: no spare left.
        assert!(!ppr.try_repair(&[region(Extent::Row { bank: 1, row: 9 })]));
        // Bank 2 is group 1: fine.
        assert!(ppr.try_repair(&[region(Extent::Row { bank: 2, row: 9 })]));
        // A different *device* has its own spares.
        let other_dev = FaultRegion {
            rank: rank0(),
            device: 7,
            extent: Extent::Row { bank: 0, row: 1 },
        };
        assert!(ppr.try_repair(&[other_dev]));
    }

    #[test]
    fn ppr_cannot_repair_columns_or_banks() {
        let mut ppr = Ppr::new(&dram());
        let col = region(Extent::Column {
            bank: 0,
            col: 0,
            row_start: 0,
            row_count: 512,
        });
        let bank = region(Extent::Banks {
            banks: BankSet::one(0),
        });
        let cluster = region(Extent::RowCluster {
            bank: 0,
            row_start: 0,
            row_count: 16,
        });
        assert!(!ppr.try_repair(&[col]));
        assert!(!ppr.try_repair(&[bank]));
        assert!(!ppr.try_repair(&[cluster]));
        assert_eq!(ppr.spares_used(), 0);
    }

    #[test]
    fn ppr_free_rides_on_substituted_rows() {
        let mut ppr = Ppr::new(&dram());
        assert!(ppr.try_repair(&[region(Extent::Row { bank: 0, row: 1 })]));
        // New fault inside the already-substituted row: free.
        assert!(ppr.try_repair(&[region(Extent::Bit {
            bank: 0,
            row: 1,
            col: 5
        })]));
        assert_eq!(ppr.spares_used(), 1);
    }

    #[test]
    fn ppr_with_generous_spares_takes_small_clusters() {
        let mut ppr = Ppr::with_spares(&dram(), 2, 8);
        let cluster = region(Extent::RowCluster {
            bank: 0,
            row_start: 0,
            row_count: 8,
        });
        assert!(ppr.try_repair(&[cluster]));
        assert_eq!(ppr.spares_used(), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use relaxfault_dram::RankId;
    use relaxfault_util::prop::{self, Source};
    use relaxfault_util::{prop_assert, prop_assert_eq};

    fn arb_extent(src: &mut Source) -> Extent {
        match src.choice_index(5) {
            0 => Extent::Bit {
                bank: src.u32(0, 7),
                row: src.u32(0, 65535),
                col: src.u32(0, 2047),
            },
            1 => Extent::Row {
                bank: src.u32(0, 7),
                row: src.u32(0, 65535),
            },
            2 => Extent::Column {
                bank: src.u32(0, 7),
                col: src.u32(0, 2047),
                row_start: src.u32(0, 126) * 512,
                row_count: 512,
            },
            3 => {
                let bank = src.u32(0, 7);
                let start = src.u32(0, 59999);
                let rows = src.u32(1, 2047);
                Extent::RowCluster {
                    bank,
                    row_start: start.min(65536 - rows),
                    row_count: rows,
                }
            }
            _ => Extent::Banks {
                banks: relaxfault_faults::BankSet::one(src.u32(0, 7)),
            },
        }
    }

    fn arb_region(src: &mut Source) -> FaultRegion {
        FaultRegion {
            rank: RankId {
                channel: src.u32(0, 3),
                dimm: src.u32(0, 1),
                rank: 0,
            },
            device: src.u32(0, 17),
            extent: arb_extent(src),
        }
    }

    /// try_repair is atomic: on failure nothing changes; on success the
    /// line count grows by at most the analytic need and the way limit
    /// holds.
    #[test]
    fn relaxfault_try_repair_is_atomic() {
        prop::check(64, |src| {
            let regions = src.vec(1, 5, arb_region);
            let dram = DramConfig::isca16_reliability();
            let llc = CacheConfig::isca16_llc();
            let mut rf = RelaxFault::new(&dram, &llc, 1);
            for r in &regions {
                let before_lines = rf.lines_used();
                let before_ways = rf.max_ways_used();
                let need = rf.lines_needed(&[*r]);
                let ok = rf.try_repair(&[*r]);
                if ok {
                    prop_assert!(rf.lines_used() <= before_lines + need);
                    prop_assert!(rf.max_ways_used() <= 1);
                } else {
                    prop_assert_eq!(rf.lines_used(), before_lines, "failed repair leaked lines");
                    prop_assert_eq!(rf.max_ways_used(), before_ways);
                }
                prop_assert_eq!(rf.bytes_used(), rf.lines_used() * 64);
                if let Err(e) = rf.check_invariants() {
                    prop_assert!(false, "invariant violated: {e}");
                }
            }
            Ok(())
        });
    }

    /// FreeFault never uses fewer lines than RelaxFault for the same
    /// fault (coalescing only helps), and both respect analytic counts.
    #[test]
    fn coalescing_never_loses() {
        prop::check(64, |src| {
            let region = arb_region(src);
            let dram = DramConfig::isca16_reliability();
            let llc = CacheConfig::isca16_llc();
            let mut rf = RelaxFault::new(&dram, &llc, 16);
            let mut ff = FreeFault::new(&dram, &llc, 16);
            prop_assert!(rf.lines_needed(&[region]) <= ff.lines_needed(&[region]));
            let rf_ok = rf.try_repair(&[region]);
            let ff_ok = ff.try_repair(&[region]);
            if rf_ok && ff_ok {
                prop_assert!(rf.lines_used() <= ff.lines_used());
            }
            // FreeFault never repairs something RelaxFault cannot: its
            // footprint per fault is a superset in lines and sets.
            if !rf_ok {
                // RelaxFault refused only for budget reasons; FreeFault
                // needs ≥ as many lines, so it must refuse too.
                prop_assert!(!ff_ok);
            }
            Ok(())
        });
    }

    /// PPR accounting: spares used never exceeds groups × devices ×
    /// spares, and repairs are idempotent per row.
    #[test]
    fn ppr_spares_bounded() {
        prop::check(64, |src| {
            let regions = src.vec(1, 9, arb_region);
            let dram = DramConfig::isca16_reliability();
            let mut ppr = Ppr::new(&dram);
            for r in &regions {
                let _ = ppr.try_repair(&[*r]);
                let _ = ppr.try_repair(&[*r]); // idempotent second offer
            }
            let bound = dram.ranks_per_node() as u64
                * dram.devices_per_rank() as u64
                * (dram.banks / 2) as u64;
            prop_assert!(ppr.spares_used() <= bound);
            Ok(())
        });
    }
}
