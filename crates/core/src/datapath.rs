//! Functional model of the RelaxFault data path (paper Figures 3–6).
//!
//! This module wires the pieces together the way the hardware does and
//! proves, bit for bit, that repaired memory returns correct data even
//! though the underlying DRAM device keeps corrupting its output:
//!
//! * a [`FaultyDram`] stores golden data and *corrupts the bits of faulty
//!   devices on every raw read* (stuck-at behaviour of hard faults);
//! * the [`RepairController`] sits where the paper's FreeFault-aware memory
//!   controller sits: every miss consults the **faulty-bank table**
//!   (Figure 5) — a tiny (DIMM, bank) bitmap that filters out the vast
//!   majority of accesses — and only then probes the LLC repair tag space;
//! * on a repaired access, the **coalescer** strips the faulty device's
//!   bits from the DRAM data and ORs in the sub-block kept in the locked
//!   LLC repair line (Figure 6a/6b); writebacks update the repair line
//!   through the same masks (Figure 6's masked write).

use crate::mapping::{RelaxMap, RepairLine};
use crate::plan::{RelaxFault, RepairMechanism};
use relaxfault_cache::{Cache, CacheConfig};
use relaxfault_dram::devmap;
use relaxfault_dram::{AddressMap, DramConfig, DramLoc, PhysAddr};
use relaxfault_faults::FaultRegion;
use std::collections::HashMap;

/// Bit-accurate DRAM with stuck-at faults.
///
/// Data is stored golden; [`FaultyDram::read_raw`] corrupts every bit a
/// fault region covers (stuck-at-1), which is what the memory controller
/// would see on the bus. [`FaultyDram::read_corrected`] models data as
/// recovered by chipkill ECC, which is valid while at most one device per
/// rank is faulty in the block — the window in which RelaxFault performs
/// its one-time repair fill.
#[derive(Debug, Clone)]
pub struct FaultyDram {
    cfg: DramConfig,
    map: AddressMap,
    golden: HashMap<u64, Vec<u8>>,
    faults: Vec<FaultRegion>,
}

impl FaultyDram {
    /// Creates an empty (all-zero) memory.
    pub fn new(cfg: &DramConfig) -> Self {
        Self {
            cfg: *cfg,
            map: AddressMap::nehalem_like(cfg, true),
            golden: HashMap::new(),
            faults: Vec::new(),
        }
    }

    /// The physical-address map in use.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Injects a permanent fault.
    pub fn inject(&mut self, region: FaultRegion) {
        self.faults.push(region);
    }

    fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes() as u64 - 1)
    }

    /// Writes a full block (64 B) at `addr` (block-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line or `addr` is misaligned.
    pub fn write_block(&mut self, addr: u64, data: &[u8]) {
        assert_eq!(data.len(), self.cfg.line_bytes() as usize);
        assert_eq!(addr, self.block_base(addr), "block-aligned writes only");
        self.golden.insert(addr, data.to_vec());
    }

    /// Devices of this block's rank whose faults cover the block.
    pub fn faulty_devices_in_block(&self, addr: u64) -> Vec<u32> {
        let (loc, _) = self.map.decode(PhysAddr(addr));
        let mut out: Vec<u32> = self
            .faults
            .iter()
            .filter(|f| f.rank == loc.rank_id())
            .filter(|f| {
                let r = f.footprint(&self.cfg);
                r.banks.iter().any(|b| b == loc.bank)
                    && r.rows.contains(loc.row)
                    && r.colblocks.contains(loc.colblock)
            })
            .map(|f| f.device)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reads the raw bus data: golden bits, with every faulty device's
    /// contribution stuck at 1.
    pub fn read_raw(&self, addr: u64) -> Vec<u8> {
        let base = self.block_base(addr);
        let mut data = self
            .golden
            .get(&base)
            .cloned()
            .unwrap_or_else(|| vec![0u8; self.cfg.line_bytes() as usize]);
        for device in self.faulty_devices_in_block(base) {
            if device < self.cfg.data_devices_per_rank {
                let mask = devmap::device_mask(&self.cfg, device);
                for (b, m) in data.iter_mut().zip(mask) {
                    *b |= m; // stuck-at-1
                }
            }
        }
        data
    }

    /// Reads ECC-corrected data. Valid while at most one device is faulty
    /// in the block (chipkill corrects a single symbol).
    ///
    /// # Panics
    ///
    /// Panics if more than one device is faulty in the block — the
    /// controller must never rely on corrected data past that point.
    pub fn read_corrected(&self, addr: u64) -> Vec<u8> {
        self.read_corrected_excluding(addr, &[])
    }

    /// Like [`FaultyDram::read_corrected`], but devices in `repaired` do
    /// not count against the single-symbol limit: their data is served
    /// from the LLC, so ECC never sees their errors.
    ///
    /// # Panics
    ///
    /// Panics if more than one *unrepaired* device is faulty in the block.
    pub fn read_corrected_excluding(&self, addr: u64, repaired: &[u32]) -> Vec<u8> {
        let base = self.block_base(addr);
        let exposed = self
            .faulty_devices_in_block(base)
            .into_iter()
            .filter(|d| !repaired.contains(d))
            .count();
        assert!(
            exposed <= 1,
            "chipkill cannot reconstruct {exposed} unrepaired faulty devices"
        );
        self.golden
            .get(&base)
            .cloned()
            .unwrap_or_else(|| vec![0u8; self.cfg.line_bytes() as usize])
    }

    /// The DRAM location of a block address.
    pub fn locate(&self, addr: u64) -> DramLoc {
        self.map.decode(PhysAddr(addr)).0
    }
}

/// Access statistics of the repair controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Accesses whose (DIMM, bank) missed in the faulty-bank table — the
    /// fast path with zero RelaxFault work.
    pub filtered: u64,
    /// Accesses that probed the LLC repair tag space.
    pub repair_probes: u64,
    /// Accesses whose data was reconstructed from a repair line.
    pub reconstructed: u64,
}

/// The RelaxFault-aware memory controller of Figure 3.
#[derive(Debug)]
pub struct RepairController {
    dram: FaultyDram,
    rmap: RelaxMap,
    planner: RelaxFault,
    llc: Cache,
    llc_data: HashMap<u64, Vec<u8>>,
    faulty_banks: HashMap<(u32, u32), bool>,
    stats: ControllerStats,
}

impl RepairController {
    /// Builds a controller over a faulty DRAM and an LLC, allowing repair
    /// to use up to `max_ways_per_set` ways of any set.
    pub fn new(dram: FaultyDram, llc_cfg: &CacheConfig, max_ways_per_set: u32) -> Self {
        let cfg = dram.cfg;
        Self {
            dram,
            rmap: RelaxMap::new(&cfg, llc_cfg),
            planner: RelaxFault::new(&cfg, llc_cfg, max_ways_per_set),
            llc: Cache::new(*llc_cfg),
            llc_data: HashMap::new(),
            faulty_banks: HashMap::new(),
            stats: ControllerStats::default(),
        }
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying DRAM (e.g. to inspect raw corruption in tests).
    pub fn dram(&self) -> &FaultyDram {
        &self.dram
    }

    /// Mutable access to the underlying DRAM (fault injection).
    pub fn dram_mut(&mut self) -> &mut FaultyDram {
        &mut self.dram
    }

    /// LLC bytes locked for repair.
    pub fn repair_bytes(&self) -> u64 {
        self.planner.bytes_used()
    }

    /// Repairs a newly discovered fault: plans the lines, locks them in the
    /// LLC, and performs the one-time fill from ECC-corrected data
    /// (the paper's back-to-back fill exploiting the open row).
    ///
    /// # Errors
    ///
    /// Fails (leaving state unchanged) if the fault exceeds the repair
    /// budget.
    pub fn repair(&mut self, regions: &[FaultRegion]) -> Result<(), String> {
        let lines: Vec<RepairLine> = {
            let mut v: Vec<RepairLine> = self.planner.repair_lines(regions).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if !self.planner.try_repair(regions) {
            return Err("fault exceeds the repair budget".into());
        }
        for line in lines {
            let addr = self.rmap.repair_addr(&line);
            if self.llc.probe_repair(addr) {
                continue; // shared with an earlier repair
            }
            self.llc
                .lock_repair_line(addr)
                .map_err(|e| format!("LLC lock failed after planning: {e}"))?;
            let payload = self.fill_line(&line);
            self.llc_data.insert(addr, payload);
        }
        // Publish in the faulty-bank table last (Figure 5).
        for region in regions {
            let rect = region.footprint(&self.dram.cfg);
            for bank in rect.banks.iter() {
                self.faulty_banks
                    .insert((region.rank.dimm_index(&self.dram.cfg), bank), true);
            }
        }
        Ok(())
    }

    /// One-time repair fill: gather the faulty device's sub-blocks for all
    /// column blocks of the line's column-group.
    fn fill_line(&mut self, line: &RepairLine) -> Vec<u8> {
        let cfg = self.dram.cfg;
        let mut payload = vec![0u8; cfg.line_bytes() as usize];
        if line.device >= cfg.data_devices_per_rank {
            // ECC devices carry check bits, not line payload; their repair
            // line stores zeros in this functional model.
            return payload;
        }
        let factor = self.rmap.coalesce_factor();
        for i in 0..factor {
            let colblock = line.colgroup * factor + i;
            if colblock >= cfg.blocks_per_row() {
                break;
            }
            let loc = DramLoc {
                channel: line.rank.channel,
                dimm: line.rank.dimm,
                rank: line.rank.rank,
                bank: line.bank,
                row: line.row,
                colblock,
            };
            let addr = self.dram.map.encode(loc, 0).0;
            let already: Vec<u32> = self
                .remapped_devices(&loc)
                .into_iter()
                .map(|(d, _)| d)
                .collect();
            let corrected = self.dram.read_corrected_excluding(addr, &already);
            let sub = devmap::extract_subblock(&cfg, &corrected, line.device);
            let (off, len) = self.rmap.subblock_slot(colblock);
            payload[off as usize..(off + len) as usize].copy_from_slice(&sub);
        }
        payload
    }

    /// Repair lines present for this block, as (device, repair address).
    fn remapped_devices(&self, loc: &DramLoc) -> Vec<(u32, u64)> {
        let cfg = self.dram.cfg;
        let colgroup = self.rmap.colgroup_of_block(loc.colblock);
        // One set holds every device's candidate line (device is a tag
        // bit); the functional model probes per device.
        let mut found = Vec::new();
        for device in 0..cfg.devices_per_rank() {
            let line = RepairLine {
                rank: loc.rank_id(),
                device,
                bank: loc.bank,
                row: loc.row,
                colgroup,
            };
            let addr = self.rmap.repair_addr(&line);
            if self.llc.probe_repair(addr) {
                found.push((device, addr));
            }
        }
        found
    }

    /// Reads a block through the repair path: DRAM raw data with remapped
    /// sub-blocks reconstructed from the LLC (Figure 6b).
    pub fn read_block(&mut self, addr: u64) -> Vec<u8> {
        let cfg = self.dram.cfg;
        let loc = self.dram.locate(addr);
        let mut data = self.dram.read_raw(addr);
        if !self
            .faulty_banks
            .get(&(loc.rank_id().dimm_index(&cfg), loc.bank))
            .copied()
            .unwrap_or(false)
        {
            self.stats.filtered += 1;
            return data;
        }
        self.stats.repair_probes += 1;
        let mut reconstructed = false;
        for (device, raddr) in self.remapped_devices(&loc) {
            if device >= cfg.data_devices_per_rank {
                continue;
            }
            let payload = self.llc_data.get(&raddr).expect("locked line has data");
            let (off, len) = self.rmap.subblock_slot(loc.colblock);
            let sub = &payload[off as usize..(off + len) as usize];
            // Figure 6: clear the faulty device's field, OR in the cached
            // sub-block.
            devmap::clear_device_bits(&cfg, &mut data, device);
            devmap::insert_subblock(&cfg, &mut data, device, sub);
            reconstructed = true;
        }
        if reconstructed {
            self.stats.reconstructed += 1;
        }
        data
    }

    /// Writes a block through the repair path: DRAM write plus masked
    /// updates of any repair lines covering it (Figure 6's writeback).
    pub fn write_block(&mut self, addr: u64, data: &[u8]) {
        let cfg = self.dram.cfg;
        let loc = self.dram.locate(addr);
        self.dram.write_block(addr, data);
        if !self
            .faulty_banks
            .get(&(loc.rank_id().dimm_index(&cfg), loc.bank))
            .copied()
            .unwrap_or(false)
        {
            self.stats.filtered += 1;
            return;
        }
        self.stats.repair_probes += 1;
        for (device, raddr) in self.remapped_devices(&loc) {
            if device >= cfg.data_devices_per_rank {
                continue;
            }
            let sub = devmap::extract_subblock(&cfg, data, device);
            let (off, len) = self.rmap.subblock_slot(loc.colblock);
            let payload = self.llc_data.get_mut(&raddr).expect("locked line has data");
            payload[off as usize..(off + len) as usize].copy_from_slice(&sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_dram::RankId;
    use relaxfault_faults::Extent;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    fn pattern(seed: u8) -> Vec<u8> {
        (0..64u32)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    /// Block addresses within a given device row.
    fn row_addrs(dram: &FaultyDram, bank: u32, row: u32, n: usize) -> Vec<u64> {
        (0..n as u32)
            .map(|cb| {
                dram.address_map()
                    .encode(
                        DramLoc {
                            channel: 0,
                            dimm: 0,
                            rank: 0,
                            bank,
                            row,
                            colblock: cb * 7 % 256,
                        },
                        0,
                    )
                    .0
            })
            .collect()
    }

    #[test]
    fn raw_reads_are_corrupted_by_faults() {
        let mut dram = FaultyDram::new(&cfg());
        let region = FaultRegion {
            rank: rank0(),
            device: 3,
            extent: Extent::Row { bank: 2, row: 99 },
        };
        let addr = row_addrs(&dram, 2, 99, 1)[0];
        dram.write_block(addr, &pattern(1));
        assert_eq!(dram.read_raw(addr), pattern(1), "no fault, no corruption");
        dram.inject(region);
        let raw = dram.read_raw(addr);
        assert_ne!(raw, pattern(1), "stuck-at bits corrupt the block");
        // Only device 3's bits changed.
        let sub = devmap::extract_subblock(&cfg(), &raw, 3);
        assert!(sub.iter().all(|&b| b == 0xFF), "stuck-at-1 sub-block");
        for d in (0..16).filter(|&d| d != 3) {
            assert_eq!(
                devmap::extract_subblock(&cfg(), &raw, d),
                devmap::extract_subblock(&cfg(), &pattern(1), d)
            );
        }
    }

    #[test]
    fn end_to_end_repair_restores_reads() {
        let c = cfg();
        let mut dram = FaultyDram::new(&c);
        let addrs = row_addrs(&dram, 2, 99, 8);
        for (i, &a) in addrs.iter().enumerate() {
            dram.write_block(a, &pattern(i as u8));
        }
        let region = FaultRegion {
            rank: rank0(),
            device: 3,
            extent: Extent::Row { bank: 2, row: 99 },
        };
        dram.inject(region);
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 1);
        mc.repair(&[region]).unwrap();
        assert_eq!(mc.repair_bytes(), 16 * 64);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(mc.read_block(a), pattern(i as u8), "block {i} repaired");
            assert_ne!(
                mc.dram().read_raw(a),
                pattern(i as u8),
                "DRAM itself stays faulty"
            );
        }
        assert_eq!(mc.stats().reconstructed, addrs.len() as u64);
    }

    #[test]
    fn writes_propagate_through_repair_lines() {
        let c = cfg();
        let mut dram = FaultyDram::new(&c);
        let region = FaultRegion {
            rank: rank0(),
            device: 7,
            extent: Extent::Row { bank: 0, row: 5 },
        };
        let addr = row_addrs(&dram, 0, 5, 1)[0];
        dram.write_block(addr, &pattern(9));
        dram.inject(region);
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 1);
        mc.repair(&[region]).unwrap();
        // Overwrite after repair: the repair line must track the new data.
        mc.write_block(addr, &pattern(42));
        assert_eq!(mc.read_block(addr), pattern(42));
    }

    #[test]
    fn faulty_bank_table_filters_clean_banks() {
        let c = cfg();
        let mut dram = FaultyDram::new(&c);
        let region = FaultRegion {
            rank: rank0(),
            device: 0,
            extent: Extent::Bit {
                bank: 1,
                row: 0,
                col: 0,
            },
        };
        dram.inject(region);
        let clean_addr = {
            let loc = DramLoc {
                channel: 3,
                dimm: 1,
                rank: 0,
                bank: 6,
                row: 10,
                colblock: 3,
            };
            dram.address_map().encode(loc, 0).0
        };
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 1);
        mc.repair(&[region]).unwrap();
        mc.read_block(clean_addr);
        mc.read_block(clean_addr);
        assert_eq!(
            mc.stats().filtered,
            2,
            "clean banks never probe repair tags"
        );
        assert_eq!(mc.stats().repair_probes, 0);
    }

    #[test]
    fn unrepaired_blocks_in_faulty_bank_pass_through() {
        // A bank can be marked faulty while most of its blocks have no
        // remapped line: those reads probe and miss, returning DRAM data.
        let c = cfg();
        let mut dram = FaultyDram::new(&c);
        let region = FaultRegion {
            rank: rank0(),
            device: 0,
            extent: Extent::Bit {
                bank: 1,
                row: 0,
                col: 0,
            },
        };
        dram.inject(region);
        let other_addr = {
            let loc = DramLoc {
                channel: 0,
                dimm: 0,
                rank: 0,
                bank: 1,
                row: 500,
                colblock: 9,
            };
            dram.address_map().encode(loc, 0).0
        };
        dram.write_block(other_addr, &pattern(5));
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 1);
        mc.repair(&[region]).unwrap();
        assert_eq!(mc.read_block(other_addr), pattern(5));
        assert_eq!(mc.stats().repair_probes, 1);
        assert_eq!(mc.stats().reconstructed, 0);
    }

    #[test]
    fn two_devices_repaired_in_same_block() {
        // Two different devices faulty in the same row: both sub-blocks
        // reconstruct from two separate repair lines in the same set.
        let c = cfg();
        let mut dram = FaultyDram::new(&c);
        let a = FaultRegion {
            rank: rank0(),
            device: 2,
            extent: Extent::Row { bank: 3, row: 8 },
        };
        let b = FaultRegion {
            rank: rank0(),
            device: 11,
            extent: Extent::Row { bank: 3, row: 8 },
        };
        let addr = row_addrs(&dram, 3, 8, 1)[0];
        dram.write_block(addr, &pattern(77));
        dram.inject(a);
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 2);
        mc.repair(&[a]).unwrap();
        // Second fault arrives later; fill for device 11 still works
        // because chipkill sees only one *unrepaired* faulty device... the
        // functional model reads golden data for the fill.
        mc.dram_mut().inject(b);
        mc.repair(&[b]).unwrap();
        assert_eq!(mc.read_block(addr), pattern(77));
    }

    #[test]
    fn repair_over_budget_fails_cleanly() {
        let c = cfg();
        let dram = FaultyDram::new(&c);
        let mut mc = RepairController::new(dram, &CacheConfig::isca16_llc(), 1);
        let huge = FaultRegion {
            rank: rank0(),
            device: 0,
            extent: Extent::RowCluster {
                bank: 0,
                row_start: 0,
                row_count: 4096,
            },
        };
        assert!(mc.repair(&[huge]).is_err());
        assert_eq!(mc.repair_bytes(), 0);
    }
}
