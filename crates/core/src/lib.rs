//! RelaxFault: fine-grained DRAM repair in the last-level cache.
//!
//! This crate is the paper's primary contribution (Kim & Erez, ISCA 2016)
//! plus the two baselines it is evaluated against:
//!
//! * [`mapping`] — the RelaxFault repair address mapping (paper Figure 7c):
//!   a *device-space* line coordinate (rank, device, bank, row,
//!   column-group) packed so that 16 consecutive device sub-blocks coalesce
//!   into one 64-byte LLC line and common fault shapes spread across sets.
//! * [`plan`] — repair planners. [`plan::RelaxFault`] coalesces;
//!   [`plan::FreeFault`] locks one LLC line per faulty *physical* block
//!   (HPCA'15 baseline); [`plan::Ppr`] models DDR4 post-package repair
//!   (one spare row per bank group). All share the [`plan::RepairMechanism`]
//!   trait and enforce per-set way limits exactly.
//! * [`overhead`] — the storage/energy overhead arithmetic of Table 1 and
//!   §3.3.
//! * [`datapath`] — a functional model of the repair data path (Figures
//!   4–6): faulty-bank table filter, coalescer strip/reconstruct masks, LLC
//!   fills and writebacks, proven end-to-end against a bit-accurate faulty
//!   DRAM model.
//!
//! # Examples
//!
//! ```
//! use relaxfault_cache::CacheConfig;
//! use relaxfault_core::plan::{RelaxFault, RepairMechanism};
//! use relaxfault_dram::{DramConfig, RankId};
//! use relaxfault_faults::{Extent, FaultRegion};
//!
//! let dram = DramConfig::isca16_reliability();
//! let llc = CacheConfig::isca16_llc();
//! let mut rf = RelaxFault::new(&dram, &llc, 1); // at most 1 way per set
//! let fault = FaultRegion {
//!     rank: RankId { channel: 0, dimm: 0, rank: 0 },
//!     device: 3,
//!     extent: Extent::Row { bank: 2, row: 4242 },
//! };
//! assert!(rf.try_repair(&[fault]));
//! assert_eq!(rf.lines_used(), 16); // one device row coalesces into 16 lines
//! ```

pub mod datapath;
pub mod mapping;
pub mod overhead;
pub mod plan;

pub use mapping::{RelaxMap, RepairLine};
pub use plan::{FreeFault, PlanScratch, Ppr, RelaxFault, RepairMechanism};
