//! Chipkill-level ECC outcome model: corrected errors, detected
//! uncorrectable errors (DUEs), and silent data corruptions (SDCs).
//!
//! The paper's reliability evaluation (§4.1.1, following Kim et al.'s
//! Bamboo-ECC methodology) assumes chipkill ECC over the 18 ×4 devices of a
//! rank: any single faulty *device* (symbol) in a 64-byte codeword is
//! corrected; two faulty devices are detected (DUE); and error patterns
//! beyond the detection guarantee can alias to a valid or correctable word
//! and escape silently (SDC).
//!
//! We classify each fault *arrival* against the faults still live
//! (unrepaired, unreplaced) on sibling devices of the same rank:
//!
//! * no codeword shared with another faulty device → errors stay
//!   single-symbol, ECC corrects them ([`EccOutcome::Corrected`]);
//! * some codeword contains exactly two faulty devices → a DUE occurs with
//!   probability [`EccModel::p_due_pair_permanent`] (or the transient
//!   variant; both faults must be *active* on the same access —
//!   hard-intermittent faults fire rarely, which is why observed DUE rates
//!   sit far below raw overlap rates);
//! * some codeword contains three or more faulty devices → beyond the
//!   double-symbol detection guarantee; when it manifests it is an SDC with
//!   probability [`EccModel::p_sdc_given_triple`] (else a DUE).
//!
//! This reproduces the paper's observations that DUEs almost always involve
//! at least one coarse-grained fault, that repair prevents roughly the half
//! of DUEs whose fine-grained member arrived first (and was repaired before
//! its partner appeared), and that SDCs concentrate in multi-fault devices
//! that PPR cannot fully repair.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::rng::Rng64;
//! use relaxfault_dram::{DramConfig, RankId};
//! use relaxfault_ecc::{EccModel, EccOutcome};
//! use relaxfault_faults::{Extent, FaultRegion, BankSet};
//!
//! let cfg = DramConfig::isca16_reliability();
//! let ecc = EccModel::isca16();
//! let rank = RankId { channel: 0, dimm: 0, rank: 0 };
//! let live = FaultRegion { rank, device: 3, extent: Extent::Banks { banks: BankSet::one(0) } };
//! let new = FaultRegion { rank, device: 7, extent: Extent::Bit { bank: 0, row: 5, col: 9 } };
//! assert!(ecc.pair_overlap_exists(&cfg, &[new], &[live]));
//! ```

use relaxfault_dram::DramConfig;
use relaxfault_faults::{FaultRegion, Rect};
use relaxfault_util::rng::Rng;

/// What the ECC does with the errors a fault arrival exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// All codewords stay within single-symbol correction.
    Corrected,
    /// A detected uncorrectable error.
    Due,
    /// A silent data corruption (miscorrection).
    Sdc,
}

/// Chipkill outcome probabilities.
///
/// The manifestation probabilities fold together (a) how often
/// hard-intermittent faults actually fire and (b) how often the overlapping
/// block is accessed while both are active. A permanent fault arriving over
/// a live permanent fault has six years of shared exposure, so its
/// manifestation probability is high; a transient fault is a single shot.
/// Values are calibrated so the no-repair system of 16,384 nodes shows the
/// paper's ~8 DUEs and ~0.02 SDCs over 6 years at Cielo rates (see
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccModel {
    /// P(a permanent fault arriving over a live overlap manifests a DUE
    /// during the remaining lifetime).
    pub p_due_pair_permanent: f64,
    /// P(a transient fault landing on a live overlap manifests a DUE).
    pub p_due_pair_transient: f64,
    /// P(a manifested two-device event escapes as an SDC when the live
    /// partner's device carries ≥ 2 unrepaired faults) — the paper's
    /// observation that SDCs concentrate in multi-fault devices, which is
    /// why PPR (which strands every fault past its one spare row) barely
    /// reduces them.
    pub p_sdc_given_multifault_pair: f64,
    /// Residual aliasing for any manifested pair (miscorrection instead of
    /// detection), keeping the SDC rate proportional to the DUE rate.
    pub p_sdc_given_pair: f64,
    /// P(detection + repair of the arriving fault outruns the first access
    /// to the overlapping codeword). Only meaningful when a repair
    /// mechanism actually repairs the fault; applied by the reliability
    /// simulator.
    pub p_repair_preempts_due: f64,
    /// P(a three-or-more-device codeword overlap manifests).
    pub p_event_given_triple: f64,
    /// P(a manifested ≥3-device event is miscorrected silently).
    pub p_sdc_given_triple: f64,
}

impl EccModel {
    /// Calibrated default (see module docs).
    pub fn isca16() -> Self {
        Self {
            p_due_pair_permanent: 0.85,
            p_due_pair_transient: 0.08,
            p_sdc_given_multifault_pair: 0.01,
            p_sdc_given_pair: 0.002,
            p_repair_preempts_due: 0.35,
            p_event_given_triple: 0.02,
            p_sdc_given_triple: 0.3,
        }
    }

    /// A pessimistic model where every overlap manifests — useful for
    /// deterministic tests.
    pub fn always_manifest() -> Self {
        Self {
            p_due_pair_permanent: 1.0,
            p_due_pair_transient: 1.0,
            p_sdc_given_multifault_pair: 0.0,
            p_sdc_given_pair: 0.0,
            p_repair_preempts_due: 0.0,
            p_event_given_triple: 1.0,
            p_sdc_given_triple: 1.0,
        }
    }

    /// Whether any codeword contains both a `new` region and a live region
    /// on a *different* device of the same rank.
    pub fn pair_overlap_exists(
        &self,
        cfg: &DramConfig,
        new: &[FaultRegion],
        live: &[FaultRegion],
    ) -> bool {
        new.iter()
            .any(|n| live.iter().any(|l| n.shares_codeword_with(l, cfg)))
    }

    /// Whether any codeword contains a `new` region plus live regions on
    /// two *other* distinct devices (three faulty symbols in one word).
    pub fn triple_overlap_exists(
        &self,
        cfg: &DramConfig,
        new: &[FaultRegion],
        live: &[FaultRegion],
    ) -> bool {
        for n in new {
            let nf = n.footprint(cfg);
            // Collect live regions on other devices of the same rank that
            // overlap the new fault, then look for a cross-device pair among
            // them overlapping the *same* blocks.
            let hits: Vec<(&FaultRegion, Rect)> = live
                .iter()
                .filter(|l| l.rank == n.rank && l.device != n.device)
                .filter_map(|l| nf.intersect(&l.footprint(cfg)).map(|inter| (l, inter)))
                .collect();
            for (i, (li, fi)) in hits.iter().enumerate() {
                for (lj, fj) in hits.iter().skip(i + 1) {
                    if li.device != lj.device && fi.intersects(fj) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether any live region overlapping `new` sits on a device with at
    /// least two live regions (the SDC-prone population).
    pub fn multifault_pair_exists(
        &self,
        cfg: &DramConfig,
        new: &[FaultRegion],
        live: &[FaultRegion],
    ) -> bool {
        new.iter().any(|n| {
            live.iter()
                .filter(|l| n.shares_codeword_with(l, cfg))
                .any(|l| {
                    live.iter()
                        .filter(|o| o.rank == l.rank && o.device == l.device)
                        .count()
                        >= 2
                })
        })
    }

    /// Classifies a fault arrival against the live faults of its rank.
    ///
    /// `live` must contain only unrepaired, still-present regions; repaired
    /// regions never contribute erroneous symbols (the repair data comes
    /// from the LLC) and must be excluded by the caller.
    /// `new_is_permanent` selects the pair manifestation probability.
    pub fn classify_arrival<R: Rng + ?Sized>(
        &self,
        cfg: &DramConfig,
        new: &[FaultRegion],
        new_is_permanent: bool,
        live: &[FaultRegion],
        rng: &mut R,
    ) -> EccOutcome {
        if self.triple_overlap_exists(cfg, new, live) && rng.gen_bool(self.p_event_given_triple) {
            return if rng.gen_bool(self.p_sdc_given_triple) {
                EccOutcome::Sdc
            } else {
                EccOutcome::Due
            };
        }
        // Fall through: the triple never fired, but a pair still might.
        if self.pair_overlap_exists(cfg, new, live) {
            let p = if new_is_permanent {
                self.p_due_pair_permanent
            } else {
                self.p_due_pair_transient
            };
            if rng.gen_bool(p) {
                let multifault = self.multifault_pair_exists(cfg, new, live);
                if multifault && rng.gen_bool(self.p_sdc_given_multifault_pair) {
                    return EccOutcome::Sdc;
                }
                if self.p_sdc_given_pair > 0.0 && rng.gen_bool(self.p_sdc_given_pair) {
                    return EccOutcome::Sdc;
                }
                return EccOutcome::Due;
            }
        }
        EccOutcome::Corrected
    }
}

/// Storage overhead of the chipkill code itself: check devices as a
/// fraction of all devices (2/18 ≈ 11% for the paper's DIMMs).
pub fn ecc_storage_overhead(cfg: &DramConfig) -> f64 {
    cfg.ecc_devices_per_rank as f64 / cfg.devices_per_rank() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_dram::RankId;
    use relaxfault_faults::{BankSet, Extent};
    use relaxfault_util::rng::Rng64;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    fn region(device: u32, extent: Extent) -> FaultRegion {
        FaultRegion {
            rank: rank0(),
            device,
            extent,
        }
    }

    #[test]
    fn single_device_is_always_corrected() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(1);
        let new = [region(
            0,
            Extent::Banks {
                banks: BankSet::all(8),
            },
        )];
        let out = ecc.classify_arrival(&c, &new, true, &[], &mut rng);
        assert_eq!(out, EccOutcome::Corrected);
    }

    #[test]
    fn same_device_accumulation_is_one_symbol() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(2);
        let live = [region(4, Extent::Row { bank: 0, row: 10 })];
        let new = [region(
            4,
            Extent::Bit {
                bank: 0,
                row: 10,
                col: 3,
            },
        )];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Corrected
        );
    }

    #[test]
    fn two_device_overlap_is_a_due() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(3);
        let live = [region(
            4,
            Extent::Banks {
                banks: BankSet::one(2),
            },
        )];
        let new = [region(
            9,
            Extent::Bit {
                bank: 2,
                row: 1,
                col: 1,
            },
        )];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Due
        );
    }

    #[test]
    fn disjoint_banks_never_collide() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(4);
        let live = [region(
            4,
            Extent::Banks {
                banks: BankSet::one(2),
            },
        )];
        let new = [region(
            9,
            Extent::Bit {
                bank: 3,
                row: 1,
                col: 1,
            },
        )];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Corrected
        );
    }

    #[test]
    fn triple_overlap_is_an_sdc() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(5);
        // Two coarse live faults in bank 0 on different devices, new fine
        // fault in the same bank.
        let live = [
            region(
                1,
                Extent::Banks {
                    banks: BankSet::one(0),
                },
            ),
            region(
                2,
                Extent::RowCluster {
                    bank: 0,
                    row_start: 0,
                    row_count: 100,
                },
            ),
        ];
        let new = [region(
            3,
            Extent::Bit {
                bank: 0,
                row: 50,
                col: 0,
            },
        )];
        assert!(ecc.triple_overlap_exists(&c, &new, &live));
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Sdc
        );
    }

    #[test]
    fn triple_requires_common_block() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        // The two live faults overlap the new fault in *different* rows —
        // no single codeword holds three bad symbols.
        let live = [
            region(1, Extent::Row { bank: 0, row: 10 }),
            region(2, Extent::Row { bank: 0, row: 20 }),
        ];
        let new = [region(
            3,
            Extent::RowCluster {
                bank: 0,
                row_start: 0,
                row_count: 64,
            },
        )];
        assert!(ecc.pair_overlap_exists(&c, &new, &live));
        assert!(!ecc.triple_overlap_exists(&c, &new, &live));
    }

    #[test]
    fn triple_on_same_device_does_not_count() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let live = [
            region(1, Extent::Row { bank: 0, row: 10 }),
            region(
                1,
                Extent::Column {
                    bank: 0,
                    col: 0,
                    row_start: 0,
                    row_count: 512,
                },
            ),
        ];
        let new = [region(3, Extent::Row { bank: 0, row: 10 })];
        assert!(!ecc.triple_overlap_exists(&c, &new, &live));
    }

    #[test]
    fn other_rank_is_isolated() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let live = [FaultRegion {
            rank: RankId {
                channel: 1,
                dimm: 0,
                rank: 0,
            },
            device: 4,
            extent: Extent::Banks {
                banks: BankSet::all(8),
            },
        }];
        let new = [region(
            9,
            Extent::Banks {
                banks: BankSet::all(8),
            },
        )];
        assert!(!ecc.pair_overlap_exists(&c, &new, &live));
    }

    #[test]
    fn activation_probability_thins_events() {
        let ecc = EccModel {
            p_due_pair_permanent: 0.1,
            ..EccModel::always_manifest()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(77);
        let live = [region(
            4,
            Extent::Banks {
                banks: BankSet::one(2),
            },
        )];
        let new = [region(9, Extent::Row { bank: 2, row: 1 })];
        let dues = (0..5000)
            .filter(|_| ecc.classify_arrival(&c, &new, true, &live, &mut rng) == EccOutcome::Due)
            .count();
        let rate = dues as f64 / 5000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn ecc_overhead_fraction() {
        assert!((ecc_storage_overhead(&cfg()) - 2.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rank_arrival_classifies_against_each_rank() {
        // A multi-rank fault event: one region per rank. Only the second
        // region's rank holds a live fault, and the overlap must still be
        // found through it.
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(11);
        let other = RankId {
            channel: 2,
            dimm: 1,
            rank: 0,
        };
        let live = [FaultRegion {
            rank: other,
            device: 5,
            extent: Extent::Row { bank: 1, row: 7 },
        }];
        let new = [
            region(3, Extent::Row { bank: 1, row: 7 }),
            FaultRegion {
                rank: other,
                device: 3,
                extent: Extent::Row { bank: 1, row: 7 },
            },
        ];
        assert!(ecc.pair_overlap_exists(&c, &new, &live));
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Due
        );
    }

    #[test]
    fn word_extent_overlaps_only_its_own_codeword_row() {
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let live = [region(4, Extent::Row { bank: 0, row: 10 })];
        let hit = [region(
            9,
            Extent::Word {
                bank: 0,
                row: 10,
                col: 100,
            },
        )];
        let miss = [region(
            9,
            Extent::Word {
                bank: 0,
                row: 11,
                col: 100,
            },
        )];
        assert!(ecc.pair_overlap_exists(&c, &hit, &live));
        assert!(!ecc.pair_overlap_exists(&c, &miss, &live));
    }

    #[test]
    fn column_fault_overlap_respects_subarray_row_bounds() {
        // A pin/column fault spans rows [0, 512); a fine fault at row 511
        // shares its codeword, one at row 512 does not.
        let ecc = EccModel::always_manifest();
        let c = cfg();
        let live = [region(
            4,
            Extent::Column {
                bank: 0,
                col: 9,
                row_start: 0,
                row_count: 512,
            },
        )];
        let inside = [region(
            9,
            Extent::Bit {
                bank: 0,
                row: 511,
                col: 9,
            },
        )];
        let outside = [region(
            9,
            Extent::Bit {
                bank: 0,
                row: 512,
                col: 9,
            },
        )];
        assert!(ecc.pair_overlap_exists(&c, &inside, &live));
        assert!(!ecc.pair_overlap_exists(&c, &outside, &live));
    }

    #[test]
    fn triple_with_zero_event_probability_falls_through_to_pair() {
        // The ≥3-symbol overlap exists but never manifests; the arrival
        // must still be classified against the pair path, not silently
        // corrected.
        let ecc = EccModel {
            p_event_given_triple: 0.0,
            ..EccModel::always_manifest()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(12);
        let live = [
            region(
                1,
                Extent::Banks {
                    banks: BankSet::one(0),
                },
            ),
            region(
                2,
                Extent::Banks {
                    banks: BankSet::one(0),
                },
            ),
        ];
        let new = [region(
            3,
            Extent::Bit {
                bank: 0,
                row: 5,
                col: 5,
            },
        )];
        assert!(ecc.triple_overlap_exists(&c, &new, &live));
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Due
        );
    }

    #[test]
    fn residual_pair_aliasing_escapes_as_sdc() {
        let ecc = EccModel {
            p_sdc_given_pair: 1.0,
            ..EccModel::always_manifest()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(13);
        let live = [region(4, Extent::Row { bank: 2, row: 1 })];
        let new = [region(9, Extent::Row { bank: 2, row: 1 })];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Sdc
        );
    }

    #[test]
    fn multifault_devices_concentrate_sdcs() {
        // The same overlap is a plain DUE against a single-fault device but
        // an SDC against a device already carrying two unrepaired faults —
        // the paper's multi-fault-device observation.
        let ecc = EccModel {
            p_sdc_given_multifault_pair: 1.0,
            ..EccModel::always_manifest()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(14);
        let new = [region(9, Extent::Row { bank: 2, row: 1 })];
        let single = [region(4, Extent::Row { bank: 2, row: 1 })];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &single, &mut rng),
            EccOutcome::Due
        );
        let multi = [
            region(4, Extent::Row { bank: 2, row: 1 }),
            region(4, Extent::Row { bank: 5, row: 9 }),
        ];
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &multi, &mut rng),
            EccOutcome::Sdc
        );
    }

    #[test]
    fn transient_arrivals_use_the_transient_manifestation_probability() {
        let ecc = EccModel {
            p_due_pair_permanent: 1.0,
            p_due_pair_transient: 0.0,
            ..EccModel::always_manifest()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(15);
        let live = [region(4, Extent::Row { bank: 2, row: 1 })];
        let new = [region(9, Extent::Row { bank: 2, row: 1 })];
        assert_eq!(
            ecc.classify_arrival(&c, &new, false, &live, &mut rng),
            EccOutcome::Corrected,
            "a transient shot that never fires is corrected"
        );
        assert_eq!(
            ecc.classify_arrival(&c, &new, true, &live, &mut rng),
            EccOutcome::Due,
            "the permanent probability is selected independently"
        );
    }
}
