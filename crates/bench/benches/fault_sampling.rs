//! Monte Carlo sampling throughput: the reference per-process sampler vs
//! the gate-accelerated one (the 16.4-billion-trial bottleneck).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaxfault_dram::DramConfig;
use relaxfault_faults::sampler::FaultSampler;
use relaxfault_faults::{FaultModel, FitRates};

fn bench_sampling(c: &mut Criterion) {
    let cfg = DramConfig::isca16_reliability();
    let model = FaultModel::isca16(FitRates::cielo(), 6.0);
    c.bench_function("sample_node_reference", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(model.sample_node(&cfg, &mut rng)))
    });
    let fast = FaultSampler::new(&model, &cfg);
    c.bench_function("sample_node_gated", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(fast.sample_node(&mut rng)))
    });
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
