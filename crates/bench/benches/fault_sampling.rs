//! Monte Carlo sampling throughput: the reference per-process sampler vs
//! the gate-accelerated one (the 16.4-billion-trial bottleneck).

use relaxfault_dram::DramConfig;
use relaxfault_faults::sampler::FaultSampler;
use relaxfault_faults::{FaultModel, FitRates};
use relaxfault_util::rng::Rng64;
use relaxfault_util::timing::{black_box, Harness};

fn main() {
    let mut h = Harness::new();
    let cfg = DramConfig::isca16_reliability();
    let model = FaultModel::isca16(FitRates::cielo(), 6.0);
    let mut rng = Rng64::seed_from_u64(1);
    h.bench("sample_node_reference", || {
        black_box(model.sample_node(&cfg, &mut rng))
    });
    let fast = FaultSampler::new(&model, &cfg);
    let mut rng = Rng64::seed_from_u64(1);
    h.bench("sample_node_gated", || {
        black_box(fast.sample_node(&mut rng))
    });
}
