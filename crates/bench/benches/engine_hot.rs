//! Hot-loop benchmark for the Monte Carlo engine: the full per-trial
//! pipeline (lifetime sampling → ECC classification → repair planning)
//! on the paper's default Figure 10 arm mix, plus the two stages that
//! dominate it in isolation.
//!
//! This is the regression anchor for engine performance: CI replays it
//! and `obs_diff`s the result against `results/baselines/engine_hot.json`
//! (see `scripts/ci.sh`). Timings run with observability forced off so
//! the numbers measure the simulator, not the instrumentation; bench
//! medians are recorded into the obs snapshot afterwards when metrics
//! are enabled (`RF_OBS=on`), which is how CI gets a comparable snapshot.

use relaxfault_faults::sampler::FaultSampler;
use relaxfault_relsim::engine::{run_scenarios, RunConfig};
use relaxfault_relsim::node::evaluate_node;
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::obs;
use relaxfault_util::rng::Rng64;
use relaxfault_util::timing::{black_box, Harness};

/// The Figure 10 arm mix: PPR plus FreeFault and RelaxFault at each way
/// limit, all sharing one fault model (and so one fault population).
fn fig10_arms() -> Vec<Scenario> {
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let mut arms = vec![base.clone().with_mechanism(Mechanism::Ppr)];
    for ways in [1, 4, 16] {
        arms.push(
            base.clone()
                .with_mechanism(Mechanism::FreeFault { max_ways: ways }),
        );
    }
    for ways in [1, 4, 16] {
        arms.push(
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: ways }),
        );
    }
    arms
}

const TRIALS_PER_ITER: u64 = 512;

fn main() {
    relaxfault_bench::obs_init();
    let metrics_on = obs::metrics_enabled();
    let arms = fig10_arms();

    // Time with observability hard-off: the bench measures the engine.
    obs::set_force_off(true);
    let mut h = Harness::new();

    // The acceptance metric: one full Figure 10 mix pass, single worker so
    // the number is per-pipeline, not per-scheduler.
    let mut seed = 2016u64;
    h.bench("engine_hot.fig10_mix", || {
        seed = seed.wrapping_add(1);
        black_box(run_scenarios(
            &arms,
            &RunConfig {
                trials: TRIALS_PER_ITER,
                seed,
                threads: 1,
                chunk_size: 0,
            },
        ))
    });

    // Stage isolation: lifetime sampling alone...
    let scenario = &arms[0];
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    let mut rng = Rng64::seed_from_u64(99);
    h.bench("engine_hot.sample_node", || {
        black_box(sampler.sample_node(&mut rng))
    });

    // ...and evaluation alone, over a fresh lifetime each iteration (the
    // common case is a clean node, exactly as in the engine).
    let rf = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    let mut rng = Rng64::seed_from_u64(100);
    h.bench("engine_hot.sample_and_evaluate", || {
        let node = sampler.sample_node(&mut rng);
        black_box(evaluate_node(&rf, &node, &mut rng))
    });
    obs::set_force_off(false);

    println!(
        "engine_hot.fig10_mix is {} trials x {} arms per iter",
        TRIALS_PER_ITER,
        arms.len()
    );

    // Publish the medians into a snapshot for the CI baseline gate.
    if metrics_on {
        for r in h.results() {
            obs::record_bench(&r.name, r.median_ns, r.iters, &r.batch_ns);
        }
        let mut config = String::new();
        for s in &arms {
            config.push_str(&s.to_json().to_pretty());
        }
        config.push_str(&TRIALS_PER_ITER.to_string());
        obs::note_run_context(2016, 1, obs::fnv1a(config.as_bytes()));
        let run = relaxfault_bench::resolved_run_name("engine_hot");
        match obs::write_snapshot(&run) {
            Ok(path) => println!("obs snapshot: {path}"),
            Err(e) => {
                eprintln!("obs snapshot failed: {e}");
                std::process::exit(2);
            }
        }
    }
}
