//! Hot-path benchmarks: the three address transforms every access or
//! repair decision goes through.

use relaxfault_cache::CacheConfig;
use relaxfault_core::mapping::{RelaxMap, RepairLine};
use relaxfault_dram::{AddressMap, DramConfig, PhysAddr, RankId};
use relaxfault_util::timing::{black_box, Harness};

fn main() {
    let mut h = Harness::new();
    let cfg = DramConfig::isca16_reliability();
    let map = AddressMap::nehalem_like(&cfg, true);
    let mut a = 0u64;
    h.bench("dram_decode", || {
        a = a.wrapping_add(0x913_55D1).wrapping_mul(3) & ((1 << 36) - 1);
        black_box(map.decode(PhysAddr(a)))
    });
    let mut a = 0u64;
    h.bench("dram_roundtrip", || {
        a = a.wrapping_add(0x913_55D1) & ((1 << 36) - 1);
        let (loc, off) = map.decode(PhysAddr(a));
        black_box(map.encode(loc, off))
    });
    let llc = CacheConfig::isca16_llc();
    let plain = CacheConfig::isca16_llc_no_hash();
    let mut a = 0u64;
    h.bench("llc_set_canonical", || {
        a = a.wrapping_add(4097);
        black_box(plain.set_and_tag(a))
    });
    let mut a = 0u64;
    h.bench("llc_set_xor_fold", || {
        a = a.wrapping_add(4097);
        black_box(llc.set_and_tag(a))
    });
    let rmap = RelaxMap::new(&cfg, &llc);
    let mut row = 0u32;
    h.bench("relaxfault_repair_addr", || {
        row = (row + 1) % 65536;
        black_box(rmap.repair_addr(&RepairLine {
            rank: RankId {
                channel: 0,
                dimm: 0,
                rank: 0,
            },
            device: 3,
            bank: 2,
            row,
            colgroup: row % 16,
        }))
    });
}
