//! Hot-path benchmarks: the three address transforms every access or
//! repair decision goes through.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relaxfault_cache::CacheConfig;
use relaxfault_core::mapping::{RelaxMap, RepairLine};
use relaxfault_dram::{AddressMap, DramConfig, PhysAddr, RankId};

fn bench_maps(c: &mut Criterion) {
    let cfg = DramConfig::isca16_reliability();
    let map = AddressMap::nehalem_like(&cfg, true);
    c.bench_function("dram_decode", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x913_55D1).wrapping_mul(3) & ((1 << 36) - 1);
            black_box(map.decode(PhysAddr(a)))
        })
    });
    c.bench_function("dram_roundtrip", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x913_55D1) & ((1 << 36) - 1);
            let (loc, off) = map.decode(PhysAddr(a));
            black_box(map.encode(loc, off))
        })
    });
    let llc = CacheConfig::isca16_llc();
    let plain = CacheConfig::isca16_llc_no_hash();
    c.bench_function("llc_set_canonical", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(4097);
            black_box(plain.set_and_tag(a))
        })
    });
    c.bench_function("llc_set_xor_fold", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(4097);
            black_box(llc.set_and_tag(a))
        })
    });
    let rmap = RelaxMap::new(&cfg, &llc);
    c.bench_function("relaxfault_repair_addr", |b| {
        let mut row = 0u32;
        b.iter(|| {
            row = (row + 1) % 65536;
            black_box(rmap.repair_addr(&RepairLine {
                rank: RankId { channel: 0, dimm: 0, rank: 0 },
                device: 3,
                bank: 2,
                row,
                colgroup: row % 16,
            }))
        })
    });
}

criterion_group!(benches, bench_maps);
criterion_main!(benches);
