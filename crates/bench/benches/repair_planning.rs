//! Repair-planning throughput per fault shape and mechanism — the work a
//! node does each time a permanent fault is discovered.

use relaxfault_cache::CacheConfig;
use relaxfault_core::plan::{FreeFault, Ppr, RelaxFault, RepairMechanism};
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_faults::{Extent, FaultRegion};
use relaxfault_util::timing::{black_box, Harness};

fn region(device: u32, extent: Extent) -> FaultRegion {
    FaultRegion {
        rank: RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        },
        device,
        extent,
    }
}

fn main() {
    let mut h = Harness::new();
    let dram = DramConfig::isca16_reliability();
    let llc = CacheConfig::isca16_llc();
    let shapes: Vec<(&str, Extent)> = vec![
        (
            "bit",
            Extent::Bit {
                bank: 0,
                row: 1,
                col: 2,
            },
        ),
        ("row", Extent::Row { bank: 1, row: 7 }),
        (
            "column",
            Extent::Column {
                bank: 2,
                col: 40,
                row_start: 0,
                row_count: 512,
            },
        ),
        (
            "cluster64",
            Extent::RowCluster {
                bank: 3,
                row_start: 0,
                row_count: 64,
            },
        ),
    ];
    for (name, extent) in &shapes {
        h.bench(&format!("relaxfault_plan_{name}"), || {
            let mut rf = RelaxFault::new(&dram, &llc, 4);
            black_box(rf.try_repair(&[region(3, *extent)]))
        });
    }
    h.bench("freefault_plan_row", || {
        let mut ff = FreeFault::new(&dram, &llc, 4);
        black_box(ff.try_repair(&[region(3, Extent::Row { bank: 1, row: 7 })]))
    });
    h.bench("ppr_plan_row", || {
        let mut ppr = Ppr::new(&dram);
        black_box(ppr.try_repair(&[region(3, Extent::Row { bank: 1, row: 7 })]))
    });
}
