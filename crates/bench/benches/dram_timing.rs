//! DDR3 bank-timing throughput: the per-command cost of the memory
//! controller back end.

use relaxfault_dram::{DdrTiming, DramCmd, RankTiming};
use relaxfault_util::timing::{black_box, Harness};

fn main() {
    let mut h = Harness::new();
    let mut rank = RankTiming::new(8, DdrTiming::ddr3_1600());
    let at = rank.earliest(DramCmd::Activate, 0, 0, 0);
    rank.issue(DramCmd::Activate, 0, 0, at);
    let mut now = at;
    h.bench("row_hit_reads", || {
        let at = rank.earliest(DramCmd::Read, 0, 0, now);
        now = rank.issue(DramCmd::Read, 0, 0, at);
        black_box(now)
    });
    let mut rank = RankTiming::new(8, DdrTiming::ddr3_1600());
    let mut now = 0u64;
    let mut row = 0u32;
    h.bench("row_cycle", || {
        row = (row + 1) % 65536;
        if rank.open_row(0).is_some() {
            let at = rank.earliest(DramCmd::Precharge, 0, row, now);
            now = rank.issue(DramCmd::Precharge, 0, row, at);
        }
        let at = rank.earliest(DramCmd::Activate, 0, row, now);
        rank.issue(DramCmd::Activate, 0, row, at);
        let at = rank.earliest(DramCmd::Read, 0, row, at);
        now = rank.issue(DramCmd::Read, 0, row, at);
        black_box(now)
    });
}
