//! LLC model throughput: demand accesses and repair-line locking.

use relaxfault_cache::{Cache, CacheConfig};
use relaxfault_util::timing::{black_box, Harness};

fn main() {
    let mut h = Harness::new();
    let mut llc = Cache::new(CacheConfig::isca16_llc());
    llc.access(0x4000, false);
    h.bench("llc_access_hit", || black_box(llc.access(0x4000, false)));
    let mut llc = Cache::new(CacheConfig::isca16_llc());
    let mut a = 0u64;
    h.bench("llc_access_stream", || {
        a = a.wrapping_add(64);
        black_box(llc.access(a, false))
    });
    let mut llc = Cache::new(CacheConfig::isca16_llc());
    let mut a = 0u64;
    h.bench("llc_lock_repair_line", || {
        a = a.wrapping_add(64);
        black_box(llc.lock_repair_line(a).is_ok())
    });
}
