//! LLC model throughput: demand accesses and repair-line locking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use relaxfault_cache::{Cache, CacheConfig};

fn bench_llc(c: &mut Criterion) {
    c.bench_function("llc_access_hit", |b| {
        let mut llc = Cache::new(CacheConfig::isca16_llc());
        llc.access(0x4000, false);
        b.iter(|| black_box(llc.access(0x4000, false)))
    });
    c.bench_function("llc_access_stream", |b| {
        let mut llc = Cache::new(CacheConfig::isca16_llc());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(64);
            black_box(llc.access(a, false))
        })
    });
    c.bench_function("llc_lock_repair_line", |b| {
        let mut llc = Cache::new(CacheConfig::isca16_llc());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(64);
            black_box(llc.lock_repair_line(a).is_ok())
        })
    });
}

criterion_group!(benches, bench_llc);
criterion_main!(benches);
