//! End-to-end node evaluation: the inner loop of every reliability
//! experiment (sample a lifetime, classify, repair).
//!
//! Also guards the observability contract: with tracing and metrics
//! disabled, the instrumentation in the hot path must cost less than 1% of
//! a node evaluation. The guard counts the metric updates one evaluation
//! performs (by running once with metrics on), times the disabled-path
//! primitive (a relaxed load and a branch), and compares the product
//! against the measured evaluation time. Exits non-zero on violation.

use relaxfault_faults::sampler::FaultSampler;
use relaxfault_relsim::node::evaluate_node;
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::json::Value;
use relaxfault_util::obs::{self, Level};
use relaxfault_util::rng::Rng64;
use relaxfault_util::timing::{black_box, Harness};

/// Total metric updates recorded in the current snapshot: every counter
/// increment and histogram sample.
fn metric_updates(snapshot: &Value) -> f64 {
    let sum_object = |v: Option<&Value>, field: Option<&str>| -> f64 {
        let Some(Value::Object(pairs)) = v else {
            return 0.0;
        };
        pairs
            .iter()
            .filter_map(|(_, v)| match field {
                None => v.as_f64(),
                Some(f) => v.get(f).and_then(Value::as_f64),
            })
            .sum()
    };
    sum_object(snapshot.get("counters"), None)
        + sum_object(snapshot.get("histograms"), Some("count"))
}

fn main() {
    relaxfault_bench::obs_init();
    let mut h = Harness::new();
    let scenario = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    // Pre-sample a pool of nodes, biased to include faulty ones.
    let mut rng = Rng64::seed_from_u64(9);
    let nodes: Vec<_> = (0..256).map(|_| sampler.sample_node(&mut rng)).collect();

    // Baseline timings with observability hard-off, immune to RF_TRACE.
    obs::set_force_off(true);
    let mut rng = Rng64::seed_from_u64(10);
    h.bench("sample_and_evaluate", || {
        let node = sampler.sample_node(&mut rng);
        black_box(evaluate_node(&scenario, &node, &mut rng))
    });
    let mut rng = Rng64::seed_from_u64(11);
    let mut i = 0;
    h.bench("evaluate_presampled_pool", || {
        i = (i + 1) % nodes.len();
        black_box(evaluate_node(&scenario, &nodes[i], &mut rng))
    });
    obs::set_force_off(false);

    // How many metric updates does one evaluation make? Run the pool once
    // with metrics on and read the registry back.
    obs::reset();
    obs::set_metrics_enabled(true);
    let mut rng = Rng64::seed_from_u64(11);
    for node in &nodes {
        black_box(evaluate_node(&scenario, node, &mut rng));
    }
    let updates_per_eval = metric_updates(&obs::snapshot()) / nodes.len() as f64;
    obs::set_metrics_enabled(false);
    obs::reset();

    // The disabled-path primitive: one counter update plus one trace gate,
    // both compiled down to a relaxed load and a branch.
    let probe = obs::counter("bench.obs_probe");
    h.bench("obs_disabled_primitive", || {
        probe.add(1);
        black_box(obs::enabled("relsim", Level::Debug))
    });

    let ns_of = |name: &str| {
        h.results()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
            .expect("bench ran")
    };
    let eval_ns = ns_of("evaluate_presampled_pool");
    // The benched closure performs TWO gated operations per iteration (one
    // counter update, one filter check), so its median is halved for the
    // per-operation cost.
    let per_op_ns = ns_of("obs_disabled_primitive") / 2.0;
    // The engine loop adds a trace-scope guard, a span gate, one hoisted
    // metrics-enabled check, (since the live telemetry plane) one
    // flight-recorder gate and one profiler gate, and (since bit-slicing)
    // one lane-mode select branch per evaluated trial — all single relaxed
    // loads or predicted branches when their subsystem is off; its
    // per-trial counter updates sit behind the one metrics check, so allow
    // six gated operations on top of the updates evaluation itself
    // performs.
    let overhead_pct = (updates_per_eval + 6.0) * per_op_ns / eval_ns * 100.0;
    println!(
        "obs disabled-path overhead: {updates_per_eval:.1} updates/eval x \
         {per_op_ns:.2}ns/op = {overhead_pct:.3}% of {eval_ns:.0}ns/eval"
    );
    if overhead_pct >= 1.0 {
        eprintln!("FAILED: disabled observability costs >= 1% of node_eval");
        std::process::exit(1);
    }
    println!("ok: disabled observability costs < 1% of node_eval");
}
