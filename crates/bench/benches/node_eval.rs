//! End-to-end node evaluation: the inner loop of every reliability
//! experiment (sample a lifetime, classify, repair).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaxfault_faults::sampler::FaultSampler;
use relaxfault_relsim::node::evaluate_node;
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};

fn bench_node(c: &mut Criterion) {
    let scenario = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    // Pre-sample a pool of nodes, biased to include faulty ones.
    let mut rng = StdRng::seed_from_u64(9);
    let nodes: Vec<_> = (0..256).map(|_| sampler.sample_node(&mut rng)).collect();
    c.bench_function("sample_and_evaluate", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        b.iter(|| {
            let node = sampler.sample_node(&mut rng);
            black_box(evaluate_node(&scenario, &node, &mut rng))
        })
    });
    c.bench_function("evaluate_presampled_pool", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % nodes.len();
            black_box(evaluate_node(&scenario, &nodes[i], &mut rng))
        })
    });
}

criterion_group!(benches, bench_node);
criterion_main!(benches);
