//! End-to-end node evaluation: the inner loop of every reliability
//! experiment (sample a lifetime, classify, repair).

use relaxfault_faults::sampler::FaultSampler;
use relaxfault_relsim::node::evaluate_node;
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::rng::Rng64;
use relaxfault_util::timing::{black_box, Harness};

fn main() {
    let mut h = Harness::new();
    let scenario = Scenario::isca16_baseline()
        .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
        .with_replacement(ReplacementPolicy::None);
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    // Pre-sample a pool of nodes, biased to include faulty ones.
    let mut rng = Rng64::seed_from_u64(9);
    let nodes: Vec<_> = (0..256).map(|_| sampler.sample_node(&mut rng)).collect();
    let mut rng = Rng64::seed_from_u64(10);
    h.bench("sample_and_evaluate", || {
        let node = sampler.sample_node(&mut rng);
        black_box(evaluate_node(&scenario, &node, &mut rng))
    });
    let mut rng = Rng64::seed_from_u64(11);
    let mut i = 0;
    h.bench("evaluate_presampled_pool", || {
        i = (i + 1) % nodes.len();
        black_box(evaluate_node(&scenario, &nodes[i], &mut rng))
    });
}
