//! End-to-end tests for the `farm` bench binary: the auto-repair loop
//! (an injected deterministic failure must yield an archived ReproCase
//! whose in-process replay reproduces, plus a diagnostic job marked
//! `repro` in its manifest — all without stopping the rest of the DAG),
//! and the crash/resume contract (`RF_FARM_CRASH_AT` kills the run with
//! exit 4, `--resume` finishes it with completed jobs skipped).
//!
//! These drive the real binary via `CARGO_BIN_EXE_farm`, so the figure
//! bins it spawns are the sibling debug builds — the matrix is run at
//! `--scale=0.001` (clamped to ≥50 trials per job) to keep the
//! Monte Carlo legs fast in debug mode.

use relaxfault_farm::{manifest_path, repro_archive_path, JobManifest, JobRole, JobStatus};
use relaxfault_relcheck::{load_any, replay, LoadedCase};
use relaxfault_util::persist::Persist;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rf_farm_cli_{tag}_{}_{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the farm binary over the mini matrix with a hermetic
/// environment: no inherited crash hooks, result dirs, or live-endpoint
/// addresses from the outer test runner.
fn farm_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_farm"));
    cmd.arg("run")
        .arg("--matrix=mini")
        .arg("--scale=0.001")
        .arg(format!("--dir={}", dir.display()))
        .env_remove("RF_FARM_CRASH_AT")
        .env_remove("RF_RESULTS_DIR")
        .env_remove("RF_RUN_NAME")
        .env_remove("RF_OBS_ADDR")
        .env_remove("RF_OBS_ADDR_FILE")
        .env_remove("RF_CHECK")
        .env_remove("RF_CHECK_FAIL_TRIAL");
    cmd
}

fn run(cmd: &mut Command) -> (i32, String) {
    let out = cmd.output().expect("spawn farm binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("farm exited via signal"), text)
}

/// The auto-repair loop, end to end: `--fail-job` forces a
/// deterministic relcheck failure inside fig08_hashing. The farm must
/// (a) archive the captured ReproCase next to the job manifest, (b)
/// re-queue it as a diagnostic job whose manifest says `repro`/`ok`,
/// (c) record the failure + archive path in the original manifest, and
/// (d) still finish the rest of the DAG (fig10 blocked, table3 ok)
/// before exiting 3. The archived case must replay in-process and
/// reproduce the recorded failure.
#[test]
fn fail_job_archives_replayable_repro_and_queues_diagnostic() {
    let dir = scratch_dir("repair");
    let (code, text) = run(farm_cmd(&dir).arg("--fail-job=fig08_hashing"));
    assert_eq!(
        code, 3,
        "expected exit 3 (DAG finished with failures):\n{text}"
    );

    let archive = repro_archive_path(&dir, "fig08_hashing");
    let case = match load_any(&archive).expect("load archived repro") {
        LoadedCase::Repro(case) => case,
        other => panic!("archive is not a ReproCase: {other:?}"),
    };
    let report = replay(&case).expect("replay archived repro");
    assert!(
        report.reproduced,
        "archived ReproCase did not reproduce: {report:?}"
    );

    let failed = JobManifest::load(&manifest_path(&dir, "fig08_hashing")).unwrap();
    assert_eq!(failed.status, JobStatus::Failed);
    assert_eq!(failed.role, JobRole::Job);
    assert_eq!(failed.repro.as_deref(), Some(archive.to_str().unwrap()));
    assert!(
        failed.reason.as_deref().unwrap_or("").contains("RF_CHECK"),
        "failure reason should carry the forced-failure panic: {:?}",
        failed.reason
    );

    let diag = JobManifest::load(&manifest_path(&dir, "fig08_hashing-repro")).unwrap();
    assert_eq!(diag.role, JobRole::Repro, "diagnostic must be marked repro");
    assert_eq!(diag.status, JobStatus::Ok, "diagnostic replay must pass");

    let blocked = JobManifest::load(&manifest_path(&dir, "fig10_coverage")).unwrap();
    assert_eq!(blocked.status, JobStatus::Blocked);
    let ok = JobManifest::load(&manifest_path(&dir, "table3_config")).unwrap();
    assert_eq!(ok.status, JobStatus::Ok, "unrelated roots must still run");
}

/// The crash hook + resume contract at the CLI level: a mid-job crash
/// in fig08_hashing exits 4 and leaves a crash dump; re-running with
/// `--resume` skips the already-completed root, re-runs the in-flight
/// job, and exits 0 with every manifest `ok`.
#[test]
fn crash_then_resume_completes_matrix() {
    let dir = scratch_dir("resume");
    let (code, text) = run(farm_cmd(&dir).env("RF_FARM_CRASH_AT", "mid:fig08_hashing"));
    assert_eq!(code, 4, "expected exit 4 (farm died):\n{text}");
    assert!(
        dir.join("obs").join("farm.crashdump.json").exists(),
        "crash must leave a dump under obs/"
    );

    let (code, text) = run(farm_cmd(&dir).arg("--resume"));
    assert_eq!(code, 0, "resume must finish the matrix:\n{text}");
    let summary = std::fs::read_to_string(dir.join("farm_summary.csv")).unwrap();
    assert!(
        summary.contains("table3_config,skipped"),
        "completed root must be skipped on resume:\n{summary}"
    );
    for id in ["table3_config", "fig08_hashing", "fig10_coverage"] {
        let m = JobManifest::load(&manifest_path(&dir, id)).unwrap();
        assert_eq!(m.status, JobStatus::Ok, "{id} must be ok after resume");
    }
}
