//! Edge cases for `bench::diff` and the `obs_diff` exit-code contract.
//!
//! The in-module tests of `bench::diff` cover the mainline
//! classifications; these integration tests pin the awkward inputs —
//! empty snapshots, fully disjoint counter sets, NaN and zero-sample
//! bench medians — and assert the binary's 0/1/2 exit-code matrix that
//! `scripts/ci.sh` builds its gates on.

use relaxfault_bench::diff::{diff_snapshots, Class};
use relaxfault_util::json::Value;
use std::path::PathBuf;
use std::process::Command;

fn snapshot(run: &str, counters: &[(&str, u64)], bench_batches: &[f64]) -> Value {
    let counters = Value::Object(
        counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::from(*v)))
            .collect(),
    );
    let benches = if bench_batches.is_empty() {
        Value::object::<&str>([])
    } else {
        let sorted = {
            let mut b = bench_batches.to_vec();
            b.sort_by(f64::total_cmp);
            b
        };
        let median = sorted[sorted.len() / 2];
        Value::object([(
            "node_eval",
            Value::object([
                ("median_ns", Value::from(median)),
                ("iters", Value::from(100u64)),
                (
                    "batch_ns",
                    Value::Array(bench_batches.iter().map(|&x| Value::from(x)).collect()),
                ),
            ]),
        )])
    };
    Value::object([
        ("schema_version", Value::from(2u64)),
        (
            "manifest",
            Value::object([
                ("run", Value::from(run)),
                ("git_sha", Value::from("abc")),
                ("profile", Value::from("release")),
                ("threads", Value::from(1u64)),
                ("seeds", Value::Array(vec![Value::from(2016u64)])),
                ("config_hash", Value::from("00000000deadbeef")),
                ("sim_runs", Value::from(1u64)),
                ("wall_clock_ms", Value::from(1000u64)),
            ]),
        ),
        ("counters", counters),
        ("gauges", Value::object::<&str>([])),
        ("histograms", Value::object::<&str>([])),
        ("benches", benches),
        ("dropped_events", Value::from(0u64)),
    ])
}

#[test]
fn empty_snapshots_diff_cleanly() {
    let empty = snapshot("empty", &[], &[]);
    let r = diff_snapshots(&empty, &empty, 0.2).expect("empty vs empty runs");
    assert_eq!(r.regressions(), 0);
    assert!(r.deltas.is_empty());
    assert!(r.render().contains("0 regressed"));

    // Empty baseline vs populated current: everything is `added`, which
    // reports but never fails.
    let full = snapshot("full", &[("relsim.trials", 4000)], &[100.0, 101.0, 102.0]);
    let r = diff_snapshots(&empty, &full, 0.2).expect("empty vs full runs");
    assert_eq!(r.regressions(), 0);
    assert!(r.deltas.iter().all(|d| d.class == Class::Added));

    // A document with no counters section at all is not a snapshot.
    let not_a_snapshot = Value::object([("schema_version", Value::from(2u64))]);
    assert!(diff_snapshots(&not_a_snapshot, &full, 0.2).is_err());
    assert!(diff_snapshots(&Value::object::<&str>([]), &full, 0.2).is_err());
}

#[test]
fn all_improved_run_is_not_a_failure() {
    let base = snapshot(
        "before",
        &[("relsim.trials", 4000)],
        &[200.0, 201.0, 202.0, 203.0, 204.0, 205.0, 206.0],
    );
    let cur = snapshot(
        "after",
        &[("relsim.trials", 4000)],
        &[100.0, 101.0, 102.0, 103.0, 104.0, 105.0, 106.0],
    );
    let r = diff_snapshots(&base, &cur, 0.1).expect("diff runs");
    assert_eq!(r.regressions(), 0, "improvements must not fail");
    assert!(r.deltas.iter().any(|d| d.class == Class::Improved));
    let verdict = r.verdict_json(0.1);
    assert_eq!(verdict.get("regressed").and_then(Value::as_f64), Some(0.0));
    assert_eq!(verdict.get("improved").and_then(Value::as_f64), Some(1.0));
}

#[test]
fn disjoint_counter_sets_are_added_and_removed_only() {
    let base = snapshot("a", &[("relsim.trials", 10), ("relsim.repairs", 3)], &[]);
    let cur = snapshot("b", &[("fleet.nodes", 7), ("fleet.epochs", 2)], &[]);
    let r = diff_snapshots(&base, &cur, 0.2).expect("diff runs");
    assert_eq!(r.regressions(), 0);
    assert_eq!(r.deltas.len(), 4);
    assert_eq!(
        r.deltas
            .iter()
            .filter(|d| d.class == Class::Removed)
            .count(),
        2
    );
    assert_eq!(
        r.deltas.iter().filter(|d| d.class == Class::Added).count(),
        2
    );
}

#[test]
fn nan_and_zero_sample_medians_never_classify() {
    // Zero batch samples: the median is not statistically comparable, so
    // the delta is reported as unchanged with an explanation.
    let mut no_samples = snapshot("a", &[], &[100.0]);
    if let Value::Object(pairs) = &mut no_samples {
        for (k, v) in pairs.iter_mut() {
            if k == "benches" {
                *v = Value::object([(
                    "node_eval",
                    Value::object([
                        ("median_ns", Value::from(100.0)),
                        ("iters", Value::from(100u64)),
                        ("batch_ns", Value::Array(Vec::new())),
                    ]),
                )]);
            }
        }
    }
    let with_samples = snapshot("b", &[], &[150.0, 151.0, 152.0]);
    let r = diff_snapshots(&no_samples, &with_samples, 0.1).expect("diff runs");
    assert_eq!(r.regressions(), 0);
    let d = r.deltas.iter().find(|d| d.kind == "bench").expect("bench");
    assert_eq!(d.class, Class::Unchanged);
    assert!(d.detail.contains("no batch samples"), "{}", d.detail);

    // NaN samples mark a corrupt snapshot: the bench must be reported as
    // not-compared, never panic inside the CI math or poison the verdict.
    let nan = snapshot("c", &[], &[f64::NAN, f64::NAN, f64::NAN]);
    for (base, cur) in [(&nan, &with_samples), (&with_samples, &nan)] {
        let r = diff_snapshots(base, cur, 0.1).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        let d = r.deltas.iter().find(|d| d.kind == "bench").expect("bench");
        assert_eq!(d.class, Class::Unchanged);
        assert!(d.detail.contains("non-finite"), "{}", d.detail);
    }
}

/// The exit-code contract every ci.sh gate is written against:
/// 0 = no regressions, 1 = regressions found, 2 = usage or I/O error.
#[test]
fn obs_diff_exit_code_matrix() {
    let dir = std::env::temp_dir().join(format!("rf_diff_edges_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let write = |name: &str, doc: &Value| -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, doc.to_pretty()).expect("write snapshot");
        p
    };
    let a = write("a.json", &snapshot("a", &[("relsim.trials", 4000)], &[]));
    let same = write("same.json", &snapshot("a", &[("relsim.trials", 4000)], &[]));
    let drifted = write(
        "drift.json",
        &snapshot("b", &[("relsim.trials", 4001)], &[]),
    );
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").expect("write garbage");

    let code = |args: &[&std::ffi::OsStr]| {
        Command::new(env!("CARGO_BIN_EXE_obs_diff"))
            .args(args)
            .output()
            .expect("obs_diff runs")
            .status
            .code()
    };
    assert_eq!(code(&[a.as_os_str(), same.as_os_str()]), Some(0));
    assert_eq!(code(&[a.as_os_str(), drifted.as_os_str()]), Some(1));
    assert_eq!(code(&[a.as_os_str(), garbage.as_os_str()]), Some(2));
    assert_eq!(code(&[a.as_os_str()]), Some(2), "one path is a usage error");
    assert_eq!(
        code(&[a.as_os_str(), dir.join("missing.json").as_os_str()]),
        Some(2)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
