//! Drivers for the performance figures (15 and 16).

use relaxfault_perfsim::workload::catalog;
use relaxfault_perfsim::{CapacityLoss, SimConfig, Simulation, WeightedSpeedup, Workload};
use relaxfault_util::table::Table;

/// The paper's Figure 15 capacity sweep.
pub const LOSSES: [CapacityLoss; 4] = [
    CapacityLoss::None,
    CapacityLoss::RandomLines { bytes: 100 << 10 },
    CapacityLoss::Ways(1),
    CapacityLoss::Ways(4),
];

/// One workload's results across the capacity sweep.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload name.
    pub name: String,
    /// Weighted speedup per capacity configuration, in [`LOSSES`] order.
    pub weighted_speedup: Vec<f64>,
    /// DRAM dynamic power relative to the full-LLC run (percent), in
    /// [`LOSSES`] order.
    pub relative_power_pct: Vec<f64>,
}

/// Runs every Table 4 workload across the Figure 15 capacity sweep.
///
/// Solo IPCs (the Equation 2 denominator) are measured by running each
/// core's benchmark alone on the full machine.
pub fn performance_sweep(instructions_per_core: u64, seed: u64) -> Vec<PerfRow> {
    let cfg = SimConfig {
        instructions_per_core,
        ..SimConfig::isca16()
    };
    let mut rows = Vec::new();
    for w in catalog::all() {
        let solo = solo_ipcs(&cfg, &w, seed);
        let mut ws = Vec::new();
        let mut power = Vec::new();
        let mut base_power = 0.0;
        for (i, loss) in LOSSES.iter().enumerate() {
            let r = Simulation::run(&cfg, &w, *loss, seed);
            ws.push(WeightedSpeedup::compute(&solo, &r).0);
            let p = r.dram_dynamic_power_mw(&cfg.energy);
            if i == 0 {
                base_power = p.max(1e-12);
            }
            power.push(p / base_power * 100.0);
        }
        rows.push(PerfRow {
            name: w.name.clone(),
            weighted_speedup: ws,
            relative_power_pct: power,
        });
    }
    rows
}

/// Measures each distinct benchmark's solo IPC and maps it back onto the
/// workload's cores.
pub fn solo_ipcs(cfg: &SimConfig, workload: &Workload, seed: u64) -> Vec<f64> {
    let mut cache: Vec<(String, f64)> = Vec::new();
    workload
        .cores
        .iter()
        .map(|spec| {
            if let Some((_, ipc)) = cache.iter().find(|(n, _)| *n == spec.name) {
                return *ipc;
            }
            let alone = Workload {
                name: format!("{}-solo", spec.name),
                cores: vec![spec.clone()],
            };
            let r = Simulation::run(cfg, &alone, CapacityLoss::None, seed);
            let ipc = r.per_core[0].ipc;
            cache.push((spec.name.clone(), ipc));
            ipc
        })
        .collect()
}

/// Renders the Figure 15 table.
pub fn fig15_table(rows: &[PerfRow]) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(LOSSES.iter().map(|l| l.label()));
    let mut t = Table::new(&headers);
    for r in rows {
        let mut row = vec![r.name.clone()];
        row.extend(r.weighted_speedup.iter().map(|w| format!("{w:.2}")));
        t.row(&row);
    }
    t
}

/// Renders the Figure 16 table (relative DRAM dynamic power, %).
pub fn fig16_table(rows: &[PerfRow]) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(LOSSES.iter().map(|l| l.label()));
    let mut t = Table::new(&headers);
    for r in rows {
        let mut row = vec![r.name.clone()];
        row.extend(r.relative_power_pct.iter().map(|p| format!("{p:.1}%")));
        t.row(&row);
    }
    t
}

/// Renders Table 4 (the workload catalogue).
pub fn table4() -> Table {
    let mut t = Table::new(&["workload", "kind", "core specs", "mem ops/instr"]);
    for w in catalog::all() {
        let mut names: Vec<&str> = w.cores.iter().map(|c| c.name.as_str()).collect();
        names.dedup();
        let kind = if names.len() == 1 {
            "multi-threaded"
        } else {
            "multi-programmed"
        };
        let ratios: Vec<String> = {
            let mut seen = Vec::new();
            w.cores
                .iter()
                .filter(|c| {
                    if seen.contains(&c.name) {
                        false
                    } else {
                        seen.push(c.name.clone());
                        true
                    }
                })
                .map(|c| format!("{:.2}", c.mem_ratio))
                .collect()
        };
        t.row(&[
            w.name.clone(),
            kind.to_string(),
            names.join(", "),
            ratios.join(", "),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_smoke() {
        let rows = performance_sweep(5_000, 3);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.weighted_speedup.len(), LOSSES.len());
            assert!((r.relative_power_pct[0] - 100.0).abs() < 1e-9);
            assert!(r.weighted_speedup.iter().all(|&w| w > 0.0 && w <= 8.5));
        }
        let t15 = fig15_table(&rows);
        let t16 = fig16_table(&rows);
        assert_eq!(t15.len(), 8);
        assert_eq!(t16.len(), 8);
    }

    #[test]
    fn table4_lists_all_workloads() {
        let t = table4();
        assert_eq!(t.len(), 8);
        let text = t.render();
        assert!(text.contains("LULESH"));
        assert!(text.contains("429.mcf"));
    }
}
