//! Experiment drivers that regenerate every table and figure of the
//! RelaxFault paper's evaluation.
//!
//! Each `fig*`/`table*` binary under `src/bin/` is a thin wrapper around a
//! driver here; all of them accept a first positional argument overriding
//! the Monte Carlo trial count (or instruction count for the performance
//! figures) and honour `RF_RESULTS_DIR` for where to drop a copy of the
//! output.
//!
//! ```bash
//! cargo run --release -p relaxfault-bench --bin fig10_coverage -- 100000
//! ```

use relaxfault_relsim::engine::{fault_population, run_scenarios, RunConfig};
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::export;
use relaxfault_util::json::Value;
use relaxfault_util::table::{format_bytes, format_pct, Table};
use relaxfault_util::{crashdump, history, obs, persist, profiler, serve};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub mod diff;
pub mod folded;
pub mod perf;
pub mod report;

/// Nodes in the paper's evaluated system.
pub const SYSTEM_NODES: u64 = 16_384;

/// `--run NAME` override captured by [`obs_init`], consulted by [`emit`].
static RUN_OVERRIDE: OnceLock<String> = OnceLock::new();

/// The live endpoint started by [`obs_init`], stopped by [`obs_finish`].
static SERVER: OnceLock<Mutex<Option<serve::ObsServer>>> = OnceLock::new();

/// How long [`obs_finish`] keeps the endpoint answering after the work is
/// done (`--linger-ms`; a `/quit` request ends the linger early).
static LINGER_MS: AtomicU64 = AtomicU64::new(0);

/// Standard harness arguments parsed by [`obs_init`].
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    work: Option<u64>,
    profiling: bool,
}

impl BenchArgs {
    /// The work amount (trials or instructions): the first positional
    /// numeric argument, or `default` when none was given.
    pub fn work(&self, default: u64) -> u64 {
        self.work.unwrap_or(default)
    }

    /// Whether the span profiler is collecting (`--profile` / `RF_PROF`);
    /// [`obs_finish`] will write `<run>.folded`.
    pub fn profiling(&self) -> bool {
        self.profiling
    }
}

/// Standard harness start-up, called first in every `fig*`/`table*` main:
///
/// * `--quiet`/`-q` (or `RF_OBS=off` in the environment, handled by
///   `util::obs` itself) turns every trace/metric off regardless of
///   `RF_TRACE`;
/// * `--run NAME` (or `--run=NAME`, or `RF_RUN_NAME` in the environment)
///   overrides the run name [`emit`] uses for the obs snapshot, trace, and
///   Prometheus files — this is how CI writes `drift_a`/`drift_b` from the
///   same binary;
/// * `--serve-obs PORT` (or `--serve-obs=ADDR`, or `RF_OBS_ADDR` in the
///   environment) starts the live telemetry endpoint of
///   [`relaxfault_util::serve`] — port `0` binds an OS-assigned port,
///   printed on stdout and written to `RF_OBS_ADDR_FILE` when set. Serving
///   implies metrics, so `/metrics` always has content;
/// * `--profile` (or `RF_PROF=on`) starts the self-sampling span profiler
///   at `RF_PROF_HZ` (default 997 Hz); [`obs_finish`] writes the folded
///   stacks to `<results>/obs/<run>.folded`;
/// * `--lanes scalar|u64|u128` (or `RF_LANES` in the environment) pins the
///   engine's trial-lane mode; the choice is recorded in the run manifest
///   so history series stay comparable per lane configuration. An invalid
///   value, or an override arriving after the mode was already pinned to
///   something else, exits with an error;
/// * `--linger-ms N` keeps the endpoint answering for up to `N` ms after
///   the work completes (until a client requests `/quit`), so pollers can
///   read final state — the CI smoke gate relies on this;
/// * a crash-dump panic hook is installed (unless `--quiet`/`RF_OBS=off`),
///   so any panic drains the flight recorder and metrics into
///   `<results>/obs/<run>.crashdump.json`;
/// * the first positional numeric argument overrides the work amount
///   (read it back with [`BenchArgs::work`]);
/// * unknown flags (e.g. the `--bench` cargo passes to bench targets) are
///   ignored.
pub fn obs_init() -> BenchArgs {
    let mut parsed = BenchArgs::default();
    let mut run = None;
    let mut serve_spec: Option<String> = None;
    let mut lanes_spec: Option<String> = None;
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--quiet" || a == "-q" {
            obs::set_force_off(true);
        } else if a == "--run" {
            run = args.next();
        } else if let Some(r) = a.strip_prefix("--run=") {
            run = Some(r.to_string());
        } else if a == "--serve-obs" {
            serve_spec = args.next();
        } else if let Some(s) = a.strip_prefix("--serve-obs=") {
            serve_spec = Some(s.to_string());
        } else if a == "--profile" {
            profile = true;
        } else if a == "--lanes" {
            lanes_spec = args.next();
        } else if let Some(l) = a.strip_prefix("--lanes=") {
            lanes_spec = Some(l.to_string());
        } else if a == "--linger-ms" {
            if let Some(ms) = args.next().and_then(|v| v.parse().ok()) {
                LINGER_MS.store(ms, Ordering::Relaxed);
            }
        } else if let Some(ms) = a.strip_prefix("--linger-ms=") {
            if let Ok(ms) = ms.parse() {
                LINGER_MS.store(ms, Ordering::Relaxed);
            }
        } else if parsed.work.is_none() && !a.starts_with('-') {
            parsed.work = a.parse().ok();
        }
    }
    if let Some(r) = run {
        let _ = RUN_OVERRIDE.set(r);
    }
    if let Some(spec) = lanes_spec {
        match relaxfault_util::lanes::LaneMode::parse(&spec) {
            Some(m) => {
                if !relaxfault_util::lanes::set_mode(m) {
                    // The mode pins on first use; a too-late or conflicting
                    // override silently taking the old value would corrupt
                    // the run manifest's `lanes` record.
                    eprintln!(
                        "--lanes {spec}: lane mode already pinned to {}",
                        relaxfault_util::lanes::mode().label()
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("--lanes {spec}: expected scalar, u64, or u128");
                std::process::exit(1);
            }
        }
    }
    if serve_spec.is_none() {
        serve_spec = std::env::var("RF_OBS_ADDR").ok().filter(|s| !s.is_empty());
    }
    if let Some(spec) = serve_spec {
        match serve::ObsServer::start(&spec) {
            Ok(server) => {
                // A served run must have something to serve.
                obs::set_metrics_enabled(true);
                println!(
                    "obs server: http://{} (routes: /health /metrics /progress /flight /quit)",
                    server.addr()
                );
                let _ = SERVER.set(Mutex::new(Some(server)));
            }
            Err(e) => {
                // A misbound endpoint means every poller would hang; die
                // loudly rather than run unobservable.
                eprintln!("--serve-obs {spec}: cannot bind: {e}");
                std::process::exit(1);
            }
        }
    }
    if !profile {
        profile = std::env::var("RF_PROF")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
            .unwrap_or(false);
    }
    if profile {
        let hz = std::env::var("RF_PROF_HZ")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(profiler::DEFAULT_HZ);
        profiler::start(hz);
        parsed.profiling = true;
    }
    if !obs::is_force_off() {
        crashdump::install_panic_hook(&current_run_name());
    }
    parsed
}

/// The run name for the current process: `--run` / `RF_RUN_NAME` if given,
/// else the binary's file stem. This is what the panic hook, crash dumps,
/// and `obs_finish`'s folded profile file under.
pub fn current_run_name() -> String {
    let default = std::env::args()
        .next()
        .as_deref()
        .and_then(|argv0| {
            std::path::Path::new(argv0)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
        })
        .unwrap_or_else(|| "run".to_string());
    run_name(&default)
}

/// Standard harness shutdown, called last in every `fig*`/`table*` main:
/// appends the run's metrics snapshot to the perf-history ledger
/// (`<results>/history/ledger.jsonl`), harvests the span profiler into
/// `<results>/obs/<run>.folded`, keeps the live endpoint answering
/// through the `--linger-ms` window (a `/quit` request ends it early),
/// then stops the endpoint. A no-op when neither metrics nor the
/// profiler nor the endpoint is active.
pub fn obs_finish() {
    if obs::metrics_enabled() {
        let run = current_run_name();
        let dir = obs::results_dir();
        // Only runs that actually wrote a snapshot get ledgered; a
        // ledger failure must not fail the run that produced the data.
        if std::path::Path::new(&dir)
            .join("obs")
            .join(format!("{run}.json"))
            .exists()
        {
            match history::append_run_snapshot(&dir, &run) {
                Ok(true) => println!("history: ledgered run {run}"),
                Ok(false) => {}
                Err(e) => eprintln!("history append failed: {e}"),
            }
        }
    }
    if profiler::active() {
        let folded = profiler::stop();
        if folded.is_empty() {
            eprintln!("profiler captured no samples");
        } else {
            let run = current_run_name();
            let path = std::path::Path::new(&obs::results_dir())
                .join("obs")
                .join(format!("{run}.folded"));
            match persist::atomic_write(&path, &folded) {
                Ok(()) => println!("profile: {}", path.display()),
                Err(e) => eprintln!("profile write failed: {e}"),
            }
        }
    }
    let server = SERVER
        .get()
        .and_then(|slot| slot.lock().expect("obs server slot").take());
    if let Some(server) = server {
        let deadline = Instant::now() + Duration::from_millis(LINGER_MS.load(Ordering::Relaxed));
        while !server.quit_requested() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        server.stop();
    }
}

/// The run name observability output files under: the `--run` flag if
/// given, else `RF_RUN_NAME`, else `default`. Public so `harness = false`
/// bench targets that write their own snapshots (e.g. `engine_hot`) name
/// runs by the same rules as [`emit`].
pub fn resolved_run_name(default: &str) -> String {
    run_name(default)
}

/// The run name [`emit`] files observability output under: the `--run`
/// flag if given, else `RF_RUN_NAME`, else the emitting table's name.
fn run_name(default: &str) -> String {
    RUN_OVERRIDE
        .get()
        .cloned()
        .or_else(|| std::env::var("RF_RUN_NAME").ok())
        .unwrap_or_else(|| default.to_string())
}

/// Prints a table to stdout and mirrors it (plus CSV and JSON) into the
/// results directory (`RF_RESULTS_DIR`, default `results/`). When
/// observability is enabled, the run's metrics snapshot (with its
/// manifest), a Prometheus text exposition (`<run>.prom`), and — if any
/// events were captured by the `RF_TRACE` filter — a Perfetto-loadable
/// Chrome trace (`<run>.trace.json`) land under `<dir>/obs/`.
pub fn emit(name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    print!("{}", table.render());
    println!();
    let dir = std::env::var("RF_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(
            format!("{dir}/{name}.txt"),
            format!("{title}\n{}", table.render()),
        );
        let _ = std::fs::write(format!("{dir}/{name}.csv"), table.to_csv());
        let doc = Value::object([
            ("schema_version", Value::from(obs::SCHEMA_VERSION)),
            ("title", title.into()),
            ("rows", table.to_json()),
        ]);
        let _ = std::fs::write(format!("{dir}/{name}.json"), doc.to_pretty());
    }
    let run = run_name(name);
    if obs::metrics_enabled() {
        match obs::write_snapshot(&run) {
            Ok(path) => println!("obs snapshot: {path}"),
            Err(e) => eprintln!("obs snapshot failed: {e}"),
        }
        if std::fs::create_dir_all(format!("{dir}/obs")).is_ok() {
            let _ = std::fs::write(format!("{dir}/obs/{run}.prom"), export::prometheus_text());
        }
    }
    let events = obs::drain_events();
    if !events.is_empty() && std::fs::create_dir_all(format!("{dir}/obs")).is_ok() {
        let path = format!("{dir}/obs/{run}.trace.json");
        match std::fs::write(&path, export::chrome_trace(&events).to_pretty()) {
            Ok(()) => println!("trace: {path}"),
            Err(e) => eprintln!("trace export failed: {e}"),
        }
    }
}

fn default_run(trials: u64) -> RunConfig {
    RunConfig {
        trials,
        seed: 2016,
        threads: num_threads(),
        chunk_size: 0,
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Figure 8: repair coverage of RelaxFault and FreeFault with and without
/// XOR set-index hashing, at most one repair way per set.
pub fn fig08_hashing(trials: u64) -> Table {
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 })
            .without_set_hashing(),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
            .without_set_hashing(),
        base.with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
    ];
    let results = run_scenarios(&arms, &default_run(trials));
    let paper = ["74.0%", "84.2%", "89.0%", "90.3%"];
    let labels = [
        "FreeFault (no hash)",
        "FreeFault (hash)",
        "RelaxFault (no hash)",
        "RelaxFault (hash)",
    ];
    let mut t = Table::new(&["mechanism", "coverage", "paper"]);
    for ((label, r), p) in labels.iter().zip(&results).zip(paper) {
        t.row(&[label.to_string(), format_pct(r.coverage()), p.to_string()]);
    }
    t
}

/// Figures 10/11: cumulative repair coverage vs required LLC capacity.
/// `fit_scale` is 1 (Figure 10) or 10 (Figure 11).
pub fn coverage_curves(fit_scale: f64, trials: u64) -> Table {
    let base = Scenario::isca16_baseline()
        .with_replacement(ReplacementPolicy::None)
        .with_fit_scale(fit_scale);
    let mut arms = vec![base.clone().with_mechanism(Mechanism::Ppr)];
    for ways in [1, 4, 16] {
        arms.push(
            base.clone()
                .with_mechanism(Mechanism::FreeFault { max_ways: ways }),
        );
    }
    for ways in [1, 4, 16] {
        arms.push(
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: ways }),
        );
    }
    let mut results = run_scenarios(&arms, &default_run(trials));

    let caps: Vec<u64> = vec![
        64,
        16 << 10,
        32 << 10,
        64 << 10,
        82 << 10,
        128 << 10,
        192 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
    ];
    let mut headers = vec!["capacity".to_string()];
    headers.extend(results.iter().map(|r| r.label.clone()));
    let mut t = Table::new(&headers);
    for cap in caps {
        let mut row = vec![format_bytes(cap)];
        for r in results.iter_mut() {
            // PPR uses no LLC: its coverage is flat.
            let v = if r.label == "PPR" {
                r.coverage()
            } else {
                r.coverage_at_bytes(cap)
            };
            row.push(format_pct(v));
        }
        t.row(&row);
    }
    let mut tail = vec!["(way-limit only)".to_string()];
    for r in &results {
        tail.push(format_pct(r.coverage()));
    }
    t.row(&tail);
    t
}

/// Figure 9: sensitivity of the refined fault model. Returns the
/// acceleration-factor sweep (9a/9b) and the accelerated-fraction sweep
/// (9c/9d).
pub fn fig09_sensitivity(trials: u64) -> (Table, Table) {
    let factor_sweep = [1.0, 50.0, 100.0, 150.0, 200.0];
    let mut a = Table::new(&[
        "acceleration",
        "faulty nodes",
        "multi-device DIMMs",
        "DUEs",
        "SDCs",
        "replacements",
    ]);
    for f in factor_sweep {
        let mut scenario = Scenario::isca16_baseline();
        scenario.fault_model.variation.accel_factor = f;
        push_sensitivity_row(&mut a, &format!("{f:.0}x"), scenario, trials);
    }

    let fraction_sweep = [0.0, 0.0001, 0.001, 0.002, 0.003, 0.005];
    let mut b = Table::new(&[
        "accel fraction",
        "faulty nodes",
        "multi-device DIMMs",
        "DUEs",
        "SDCs",
        "replacements",
    ]);
    for p in fraction_sweep {
        let mut scenario = Scenario::isca16_baseline();
        scenario.fault_model.variation.accel_node_fraction = p;
        scenario.fault_model.variation.accel_dimm_fraction = p;
        push_sensitivity_row(&mut b, &format!("{:.2}%", p * 100.0), scenario, trials);
    }
    (a, b)
}

fn push_sensitivity_row(t: &mut Table, label: &str, scenario: Scenario, trials: u64) {
    let pop = fault_population(
        &scenario.fault_model,
        &scenario.dram,
        trials,
        2016,
        num_threads(),
    );
    let arms = vec![scenario];
    let r = &run_scenarios(&arms, &default_run(trials))[0];
    t.row(&[
        label.to_string(),
        format!("{:.0}", pop.per_system(pop.faulty_nodes, SYSTEM_NODES)),
        format!(
            "{:.0}",
            pop.per_system(pop.multi_device_dimms, SYSTEM_NODES)
        ),
        format!("{:.2}", r.dues_per_system(SYSTEM_NODES)),
        format!("{:.4}", r.sdcs_per_system(SYSTEM_NODES)),
        format!("{:.2}", r.replacements_per_system(SYSTEM_NODES)),
    ]);
}

/// Figures 12–14: expected DUEs, SDCs, and DIMM replacements per
/// 16,384-node system over 6 years, for a repair-mechanism matrix.
pub struct ReliabilityTables {
    /// Figure 12 (DUEs).
    pub dues: Table,
    /// Figure 13 (SDCs).
    pub sdcs: Table,
    /// Figure 14, ReplA policy (replace after a non-transient DUE).
    pub replacements_after_due: Table,
    /// Figure 14, ReplB policy (replace after an error-threshold crossing).
    pub replacements_after_errors: Table,
}

/// Runs the Figures 12–14 matrix at one FIT scale.
pub fn reliability_matrix(fit_scale: f64, trials: u64) -> ReliabilityTables {
    let base = Scenario::isca16_baseline().with_fit_scale(fit_scale);
    let replb = ReplacementPolicy::AfterErrors {
        trigger_prob: Scenario::REPLB_TRIGGER,
    };
    let mechanisms: Vec<(&str, Vec<Mechanism>)> = vec![
        ("No repair", vec![Mechanism::None]),
        ("PPR", vec![Mechanism::Ppr]),
        (
            "FreeFault",
            vec![
                Mechanism::FreeFault { max_ways: 1 },
                Mechanism::FreeFault { max_ways: 4 },
            ],
        ),
        (
            "RelaxFault",
            vec![
                Mechanism::RelaxFault { max_ways: 1 },
                Mechanism::RelaxFault { max_ways: 4 },
            ],
        ),
    ];
    // Build one flat arm list per policy.
    let mut arms = Vec::new();
    for (_, ms) in &mechanisms {
        for m in ms {
            arms.push(base.clone().with_mechanism(*m)); // ReplA default
        }
    }
    let n_repla = arms.len();
    for (_, ms) in &mechanisms {
        for m in ms {
            arms.push(base.clone().with_mechanism(*m).with_replacement(replb));
        }
    }
    let results = run_scenarios(&arms, &default_run(trials));

    let headers = ["mechanism", "no-repair/1-way", "4-way"];
    let mut dues = Table::new(&headers);
    let mut sdcs = Table::new(&headers);
    let mut repla = Table::new(&headers);
    let mut replb_t = Table::new(&headers);
    let mut idx = 0;
    let mut rows: Vec<(String, Vec<usize>)> = Vec::new();
    for (name, ms) in &mechanisms {
        let idxs: Vec<usize> = (0..ms.len()).map(|k| idx + k).collect();
        idx += ms.len();
        rows.push((name.to_string(), idxs));
    }
    for (name, idxs) in &rows {
        let cell = |t: &mut Table, f: &dyn Fn(usize) -> f64| {
            let one = f(idxs[0]);
            let four = if idxs.len() > 1 {
                format!("{:.3}", f(idxs[1]))
            } else {
                "-".into()
            };
            t.row(&[name.clone(), format!("{one:.3}"), four]);
        };
        cell(&mut dues, &|i| results[i].dues_per_system(SYSTEM_NODES));
        cell(&mut sdcs, &|i| results[i].sdcs_per_system(SYSTEM_NODES));
        cell(&mut repla, &|i| {
            results[i].replacements_per_system(SYSTEM_NODES)
        });
        cell(&mut replb_t, &|i| {
            results[n_repla + i].replacements_per_system(SYSTEM_NODES)
        });
    }
    ReliabilityTables {
        dues,
        sdcs,
        replacements_after_due: repla,
        replacements_after_errors: replb_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_smoke() {
        let t = fig08_hashing(400);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("RelaxFault (hash)"));
    }

    #[test]
    fn coverage_table_shape() {
        let t = coverage_curves(1.0, 400);
        assert!(t.len() >= 11);
        assert!(t.render().contains("82KiB"));
    }

    #[test]
    fn reliability_matrix_shape() {
        let r = reliability_matrix(1.0, 400);
        assert_eq!(r.dues.len(), 4);
        assert_eq!(r.replacements_after_errors.len(), 4);
    }
}
