//! Regenerates Figure 2 / Table 2: per-device FIT rates by fault mode for
//! the Cielo and Hopper field studies.

use relaxfault_bench::emit;
use relaxfault_faults::{FaultMode, FitRates, Transience};
use relaxfault_util::table::Table;

fn main() {
    relaxfault_bench::obs_init();
    let mut t = Table::new(&[
        "fault mode",
        "Cielo transient",
        "Cielo permanent",
        "Hopper transient",
        "Hopper permanent",
    ]);
    let cielo = FitRates::cielo();
    let hopper = FitRates::hopper();
    for mode in FaultMode::ALL {
        t.row(&[
            mode.label().to_string(),
            format!("{:.1}", cielo.rate(mode, Transience::Transient)),
            format!("{:.1}", cielo.rate(mode, Transience::Permanent)),
            format!("{:.1}", hopper.rate(mode, Transience::Transient)),
            format!("{:.1}", hopper.rate(mode, Transience::Permanent)),
        ]);
    }
    t.row(&[
        "total".into(),
        format!("{:.1}", cielo.total_transient()),
        format!("{:.1}", cielo.total_permanent()),
        format!("{:.1}", hopper.total_transient()),
        format!("{:.1}", hopper.total_permanent()),
    ]);
    emit(
        "fig02_table2",
        "Figure 2 / Table 2: FIT per device by fault mode",
        &t,
    );
    relaxfault_bench::obs_finish();
}
