//! Regenerates Figure 16: DRAM dynamic power relative to the full-LLC
//! configuration, under the same capacity sweep as Figure 15.

use relaxfault_bench::perf::{fig16_table, performance_sweep};
use relaxfault_bench::{emit, work_arg};

fn main() {
    relaxfault_bench::init();
    let instr = work_arg(300_000);
    let rows = performance_sweep(instr, 2016);
    emit(
        "fig16_power",
        &format!("Figure 16: relative DRAM dynamic power ({instr} instr/core)"),
        &fig16_table(&rows),
    );
}
