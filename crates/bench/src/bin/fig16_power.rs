//! Regenerates Figure 16: DRAM dynamic power relative to the full-LLC
//! configuration, under the same capacity sweep as Figure 15.

use relaxfault_bench::emit;
use relaxfault_bench::perf::{fig16_table, performance_sweep};

fn main() {
    let args = relaxfault_bench::obs_init();
    let instr = args.work(300_000);
    let rows = performance_sweep(instr, 2016);
    emit(
        "fig16_power",
        &format!("Figure 16: relative DRAM dynamic power ({instr} instr/core)"),
        &fig16_table(&rows),
    );
    relaxfault_bench::obs_finish();
}
