//! Regenerates Figure 14: expected DIMM replacements per 16,384-node
//! system over 6 years under ReplA (after a DUE) and ReplB (after an
//! error-threshold crossing), at 1x and 10x FIT.

use relaxfault_bench::{emit, reliability_matrix};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(200_000);
    let r1 = reliability_matrix(1.0, trials);
    emit(
        "fig14a_repl_due_1x",
        &format!("Figure 14a: replacements after first DUE, 1x FIT ({trials} trials)"),
        &r1.replacements_after_due,
    );
    emit(
        "fig14c_repl_errors_1x",
        &format!("Figure 14c: replacements after frequent errors, 1x FIT ({trials} trials)"),
        &r1.replacements_after_errors,
    );
    let t10 = trials / 3;
    let r10 = reliability_matrix(10.0, t10);
    emit(
        "fig14b_repl_due_10x",
        &format!("Figure 14b: replacements after first DUE, 10x FIT ({t10} trials)"),
        &r10.replacements_after_due,
    );
    emit(
        "fig14d_repl_errors_10x",
        &format!("Figure 14d: replacements after frequent errors, 10x FIT ({t10} trials)"),
        &r10.replacements_after_errors,
    );
    relaxfault_bench::obs_finish();
}
