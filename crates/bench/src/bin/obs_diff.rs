//! Compares two observability snapshots and reports regressions.
//!
//! ```text
//! obs_diff <baseline.json> <current.json> [--threshold 0.2] [--out verdict.json]
//! obs_diff --latest-vs-baseline [--threshold 0.2] [--out verdict.json]
//! ```
//!
//! The two-path form diffs explicit snapshot files. The registry form
//! reads `results/runs/index.json` (honouring `RF_RESULTS_DIR`), takes the
//! most recent run, and compares it against the committed baseline of the
//! same run name under `results/baselines/`.
//!
//! Exit codes: `0` no regressions, `1` regressions found, `2` usage or
//! I/O error. See `relaxfault_bench::diff` for the classification rules.

use relaxfault_bench::diff::diff_snapshots;
use relaxfault_util::json::Value;
use std::process::ExitCode;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e:?}"))
}

fn results_dir() -> String {
    std::env::var("RF_RESULTS_DIR").unwrap_or_else(|_| "results".into())
}

/// Resolves the registry form: the newest run in the index as current,
/// `results/baselines/<run>.json` as its baseline.
fn latest_vs_baseline() -> Result<(String, String), String> {
    let dir = results_dir();
    let index_path = format!("{dir}/runs/index.json");
    let index = load(&index_path)?;
    let runs = index
        .get("runs")
        .and_then(Value::as_array)
        .ok_or(format!("{index_path} has no runs array"))?;
    let last = runs.last().ok_or(format!("{index_path} lists no runs"))?;
    let run = last
        .get("manifest")
        .and_then(|m| m.get("run"))
        .and_then(Value::as_str)
        .ok_or("latest registry entry has no manifest.run")?;
    let snapshot = last
        .get("snapshot")
        .and_then(Value::as_str)
        .ok_or("latest registry entry has no snapshot path")?;
    Ok((format!("{dir}/baselines/{run}.json"), snapshot.to_string()))
}

fn run() -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.2f64;
    let mut out: Option<String> = None;
    let mut use_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--latest-vs-baseline" => use_registry = true,
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threshold needs a number")?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a path")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    let (baseline_path, current_path) = if use_registry {
        if !paths.is_empty() {
            return Err("--latest-vs-baseline takes no snapshot paths".into());
        }
        latest_vs_baseline()?
    } else if paths.len() == 2 {
        let mut it = paths.into_iter();
        (it.next().expect("two paths"), it.next().expect("two paths"))
    } else {
        return Err("usage: obs_diff <baseline.json> <current.json> | --latest-vs-baseline".into());
    };

    let baseline = load(&baseline_path)?;
    let current = load(&current_path)?;
    let report = diff_snapshots(&baseline, &current, threshold)?;
    print!("{}", report.render());
    if let Some(out) = out {
        let verdict = report.verdict_json(threshold).to_pretty();
        std::fs::write(&out, verdict).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("verdict: {out}");
    }
    Ok(if report.regressions() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("obs_diff: {e}");
            ExitCode::from(2)
        }
    }
}
