//! Design-choice ablations for the knobs DESIGN.md calls out.
//!
//! Five studies, each isolating one modelling or mechanism decision:
//!
//! 1. **Refined vs uniform fault model** — the motivation for §4.1.2:
//!    without node/DIMM acceleration the predicted DUE count collapses far
//!    below field observations.
//! 2. **Device-to-device variation (CV sweep)** — the paper reports
//!    insensitivity; quantify it.
//! 3. **PPR sparing generosity** — how many spare rows per bank group
//!    would PPR need to approach RelaxFault's coverage?
//! 4. **Repair-preemption probability** — how much of the DUE reduction
//!    comes from detection racing the second fault, versus pure ordering.
//! 5. **Coverage-gap fingerprint** — which fault modes remain unrepaired
//!    under each mechanism (why the curves saturate where they do).
//!
//! ```bash
//! cargo run --release -p relaxfault-bench --bin ablation_design -- 40000
//! ```

use relaxfault_bench::{emit, SYSTEM_NODES};
use relaxfault_faults::FaultMode;
use relaxfault_relsim::engine::{run_scenarios, RunConfig};
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::table::{format_pct, Table};

fn run(arms: &[Scenario], trials: u64) -> Vec<relaxfault_relsim::ScenarioResult> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_scenarios(
        arms,
        &RunConfig {
            trials,
            seed: 0xAB1A,
            threads,
            chunk_size: 0,
        },
    )
}

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(40_000);

    // 1. Refined vs uniform fault model.
    let mut uniform = Scenario::isca16_baseline();
    uniform.fault_model =
        relaxfault_faults::FaultModel::uniform(relaxfault_faults::FitRates::cielo(), 6.0);
    let refined = Scenario::isca16_baseline();
    let r = run(&[uniform, refined], trials * 2);
    let mut t1 = Table::new(&["fault model", "DUEs/system", "replacements/system"]);
    for (name, res) in ["uniform (prior work)", "refined (Eq. 1 + lognormal)"]
        .iter()
        .zip(&r)
    {
        t1.row(&[
            name.to_string(),
            format!("{:.2}", res.dues_per_system(SYSTEM_NODES)),
            format!("{:.2}", res.replacements_per_system(SYSTEM_NODES)),
        ]);
    }
    emit(
        "ablation1_fault_model",
        "Ablation 1: uniform fault model under-predicts failures (paper §4.1.2)",
        &t1,
    );

    // 2. Device-CV sweep.
    let mut arms = Vec::new();
    let cvs = [0.0, 0.25, 0.5, 1.0];
    for cv in cvs {
        let mut s = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
        s.fault_model.variation.device_cv = cv;
        s.mechanism = Mechanism::RelaxFault { max_ways: 1 };
        arms.push(s);
    }
    let r = run(&arms, trials);
    let mut t2 = Table::new(&["device CV", "coverage", "faulty nodes/system"]);
    for (cv, res) in cvs.iter().zip(&r) {
        t2.row(&[
            format!("{cv}"),
            format_pct(res.coverage()),
            format!("{:.0}", res.per_system(res.faulty_nodes, SYSTEM_NODES)),
        ]);
    }
    emit(
        "ablation2_device_cv",
        "Ablation 2: device-to-device rate variation barely moves coverage (paper: 'results are not sensitive')",
        &t2,
    );

    // 3. PPR sparing generosity.
    let mut arms = Vec::new();
    let spare_cfgs = [(2u32, 1u32), (2, 2), (2, 4), (1, 4)];
    for (bpg, spg) in spare_cfgs {
        arms.push(
            Scenario::isca16_baseline()
                .with_replacement(ReplacementPolicy::None)
                .with_mechanism(Mechanism::PprCustom {
                    banks_per_group: bpg,
                    spares_per_group: spg,
                }),
        );
    }
    arms.push(
        Scenario::isca16_baseline()
            .with_replacement(ReplacementPolicy::None)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
    );
    let r = run(&arms, trials);
    let mut t3 = Table::new(&["mechanism", "coverage"]);
    for res in &r {
        t3.row(&[res.label.clone(), format_pct(res.coverage())]);
    }
    emit(
        "ablation3_ppr_spares",
        "Ablation 3: even generous row sparing cannot reach LLC-based repair (columns/banks stay out of reach)",
        &t3,
    );

    // 4. Repair-preemption probability.
    let mut arms = Vec::new();
    let preempts = [0.0, 0.35, 0.7];
    for p in preempts {
        let mut s =
            Scenario::isca16_baseline().with_mechanism(Mechanism::RelaxFault { max_ways: 4 });
        s.ecc.p_repair_preempts_due = p;
        arms.push(s);
    }
    arms.push(Scenario::isca16_baseline()); // no-repair reference
    let r = run(&arms, trials * 3);
    let baseline = r
        .last()
        .expect("reference arm")
        .dues_per_system(SYSTEM_NODES);
    let mut t4 = Table::new(&[
        "p(repair preempts DUE)",
        "DUEs/system",
        "reduction vs no repair",
    ]);
    for (p, res) in preempts.iter().zip(&r) {
        let d = res.dues_per_system(SYSTEM_NODES);
        t4.row(&[
            format!("{p}"),
            format!("{d:.2}"),
            format_pct(1.0 - d / baseline.max(1e-9)),
        ]);
    }
    emit(
        "ablation4_preemption",
        "Ablation 4: DUE reduction = ordering effect (~arrival symmetry) + detection racing the overlap",
        &t4,
    );

    // 5. Coverage-gap fingerprint.
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone().with_mechanism(Mechanism::Ppr),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    let r = run(&arms, trials);
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(FaultMode::ALL.iter().map(|m| m.label().to_string()));
    let mut t5 = Table::new(&headers);
    for res in &r {
        let mut row = vec![res.label.clone()];
        for i in 0..6 {
            row.push(format!(
                "{:.1}",
                res.unrepaired_by_mode[i] as f64 / res.trials as f64 * SYSTEM_NODES as f64
            ));
        }
        t5.row(&row);
    }
    emit(
        "ablation5_gap_fingerprint",
        "Ablation 5: unrepaired faults per system by mode (who fails on what)",
        &t5,
    );
    relaxfault_bench::obs_finish();
}
