//! Renders the perf-history ledger into trend verdicts and a dashboard.
//!
//! ```text
//! obs_report ingest [--results DIR]
//! obs_report report [--results DIR] [--ledger PATH] [--out PATH] [--check] [--rotate]
//! obs_report extend --series NAME --factor F --count N [--ledger PATH] [--results DIR]
//! obs_report folded-diff <before.folded> <after.folded> [--top N]
//! ```
//!
//! * `ingest` sweeps `<results>/obs/*.json` metrics snapshots into the
//!   append-only ledger at `<results>/history/ledger.jsonl`; re-running
//!   it over an unchanged tree is a byte-level no-op.
//! * `report` analyses every ledger series (MAD scores, CUSUM
//!   changepoints, baseline comparison against `<results>/baselines/`)
//!   and writes the self-contained dashboard
//!   (`<results>/history/report.html` by default). With `--check` it
//!   also prints one `REGRESSION <series> at epoch <N>` line per bench
//!   series whose latest regime shifted upward, and exits 1. With
//!   `--rotate` it writes each baseline-rotation proposal to
//!   `<results>/baselines/<bench>.proposed.json`.
//! * `extend` appends synthetic runs cloned from the newest entry
//!   carrying `--series`, with that median multiplied by `--factor` —
//!   the injection harness the CI history gate uses to prove the
//!   detector catches a 2× regression.
//! * `folded-diff` joins two profiler `.folded` files into a per-frame
//!   self-time delta table, biggest movers first.
//!
//! Exit codes: `0` clean, `1` regression found by `--check`, `2` usage
//! or I/O error — the same contract as `obs_diff`.

use relaxfault_bench::{folded, report};
use relaxfault_util::history::Ledger;
use relaxfault_util::json::Value;
use relaxfault_util::persist;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn results_dir(flag: &Option<String>) -> String {
    flag.clone()
        .or_else(|| std::env::var("RF_RESULTS_DIR").ok())
        .unwrap_or_else(|| "results".into())
}

struct Flags {
    results: Option<String>,
    ledger: Option<String>,
    out: Option<String>,
    series: Option<String>,
    factor: f64,
    count: usize,
    top: usize,
    check: bool,
    rotate: bool,
    positional: Vec<String>,
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut f = Flags {
        results: None,
        ledger: None,
        out: None,
        series: None,
        factor: 2.0,
        count: 3,
        top: usize::MAX,
        check: false,
        rotate: false,
        positional: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--results" => f.results = Some(value("--results")?),
            "--ledger" => f.ledger = Some(value("--ledger")?),
            "--out" => f.out = Some(value("--out")?),
            "--series" => f.series = Some(value("--series")?),
            "--factor" => {
                f.factor = value("--factor")?
                    .parse()
                    .map_err(|_| "--factor needs a number")?;
            }
            "--count" => {
                f.count = value("--count")?
                    .parse()
                    .map_err(|_| "--count needs an integer")?;
            }
            "--top" => {
                f.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs an integer")?;
            }
            "--check" => f.check = true,
            "--rotate" => f.rotate = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            p => f.positional.push(p.to_string()),
        }
    }
    Ok(f)
}

fn ledger_path(f: &Flags) -> PathBuf {
    f.ledger
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| Ledger::default_path(&results_dir(&f.results)))
}

fn ingest(f: &Flags) -> Result<ExitCode, String> {
    let dir = results_dir(&f.results);
    let (ledger, rep) = Ledger::ingest_dir(&dir)?;
    println!(
        "ingest {}: {} added, {} already ledgered, {} skipped ({} entries total)",
        ledger.path.display(),
        rep.added,
        rep.duplicate,
        rep.skipped.len(),
        ledger.entries.len()
    );
    for (path, reason) in &rep.skipped {
        println!("  skipped {}: {reason}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes one proposed replacement baseline snapshot per rotation
/// proposal: the committed baseline's layout, with the proposed median —
/// a reviewable artifact, never an in-place overwrite.
fn write_proposals(dir: &str, reports: &[report::SeriesReport]) -> Result<(), String> {
    for r in reports {
        let (Some(baseline), Some(proposal)) = (r.baseline, r.proposal) else {
            continue;
        };
        let path = Path::new(dir)
            .join("baselines")
            .join(format!("{}.proposed.json", r.key.name));
        let doc = Value::object([
            ("series", Value::from(r.key.label().as_str())),
            ("bench", Value::from(r.key.name.as_str())),
            ("config_hash", persist::hex(r.key.config_hash)),
            ("threads", Value::from(r.key.threads)),
            ("current_median_ns", Value::from(baseline)),
            ("proposed_median_ns", Value::from(proposal)),
            ("window", Value::from(report::BASELINE_WINDOW as u64)),
            ("margin", Value::from(report::BASELINE_MARGIN)),
        ]);
        persist::atomic_write(&path, &doc.to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("baseline proposal: {}", path.display());
    }
    Ok(())
}

fn run_report(f: &Flags) -> Result<ExitCode, String> {
    let dir = results_dir(&f.results);
    let path = ledger_path(f);
    let ledger = Ledger::load(&path)?;
    if ledger.entries.is_empty() {
        return Err(format!(
            "{}: ledger is empty — run `obs_report ingest` first",
            path.display()
        ));
    }
    let baselines = report::load_baselines(&Path::new(&dir).join("baselines"));
    let reports = report::analyze(&ledger.entries, &baselines);
    let html = report::render_html(&reports);
    let out = f
        .out
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| path.with_file_name("report.html"));
    persist::atomic_write(&out, &html)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "report: {} ({} series, {} entries)",
        out.display(),
        reports.len(),
        ledger.entries.len()
    );
    if f.rotate {
        write_proposals(&dir, &reports)?;
    }
    let verdict = report::check(&reports);
    if f.check {
        if verdict.is_empty() {
            println!("check: clean — no bench series' latest regime regressed");
        } else {
            for line in &verdict {
                println!("{line}");
            }
            return Ok(ExitCode::from(1));
        }
    } else {
        for line in &verdict {
            println!("{line}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn extend(f: &Flags) -> Result<ExitCode, String> {
    let series = f
        .series
        .as_ref()
        .ok_or("extend needs --series <bench name>")?;
    let path = ledger_path(f);
    let added = report::extend_series(&path, series, f.factor, f.count)?;
    println!(
        "extend {}: appended {added} synthetic runs ({series} × {})",
        path.display(),
        f.factor
    );
    Ok(ExitCode::SUCCESS)
}

fn folded_diff(f: &Flags) -> Result<ExitCode, String> {
    let [before_path, after_path] = f.positional.as_slice() else {
        return Err("folded-diff needs exactly two .folded paths".into());
    };
    let read = |p: &String| {
        std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read {p}: {e}"))
            .and_then(|t| folded::parse(&t).map_err(|e| format!("{p}: {e}")))
    };
    let before = read(before_path)?;
    let after = read(after_path)?;
    let mut rows = folded::diff(&before, &after);
    rows.truncate(f.top);
    print!("{}", folded::render(&rows));
    Ok(ExitCode::SUCCESS)
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or(
        "usage: obs_report <ingest|report|extend|folded-diff> [flags]\n\
         see the module docs (or DESIGN.md §6.2) for the flag list",
    )?;
    let f = parse_flags(args)?;
    match cmd.as_str() {
        "ingest" => ingest(&f),
        "report" => run_report(&f),
        "extend" => extend(&f),
        "folded-diff" => folded_diff(&f),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("obs_report: {e}");
            ExitCode::from(2)
        }
    }
}
