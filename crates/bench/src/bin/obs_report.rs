//! Renders the perf-history ledger into trend verdicts and a dashboard.
//!
//! ```text
//! obs_report ingest [--results DIR]
//! obs_report report [--results DIR] [--ledger PATH] [--out PATH] [--check] [--rotate]
//! obs_report extend --series NAME --factor F --count N [--ledger PATH] [--results DIR]
//! obs_report folded-diff <before.folded> <after.folded> [--top N]
//! obs_report farm [--results DIR] [--check]
//! ```
//!
//! * `ingest` sweeps `<results>/obs/*.json` metrics snapshots into the
//!   append-only ledger at `<results>/history/ledger.jsonl`; re-running
//!   it over an unchanged tree is a byte-level no-op.
//! * `report` analyses every ledger series (MAD scores, CUSUM
//!   changepoints, baseline comparison against `<results>/baselines/`)
//!   and writes the self-contained dashboard
//!   (`<results>/history/report.html` by default). With `--check` it
//!   also prints one `REGRESSION <series> at epoch <N>` line per bench
//!   series whose latest regime shifted upward, and exits 1. With
//!   `--rotate` it writes each baseline-rotation proposal to
//!   `<results>/baselines/<bench>.proposed.json`.
//! * `extend` appends synthetic runs cloned from the newest entry
//!   carrying `--series`, with that median multiplied by `--factor` —
//!   the injection harness the CI history gate uses to prove the
//!   detector catches a 2× regression.
//! * `folded-diff` joins two profiler `.folded` files into a per-frame
//!   self-time delta table, biggest movers first.
//! * `farm` renders the figure-farm dashboard: the `farm_state` ledger
//!   plus every job manifest under `<results>/farm/jobs/`, one row per
//!   job (role, status, attempts, cost, repro archive), mirrored to
//!   `<results>/farm/report.txt`. With `--check` it exits 1 when any
//!   matrix job is failed or blocked.
//!
//! Exit codes: `0` clean, `1` regression found by `--check`, `2` usage
//! or I/O error — the same contract as `obs_diff`.

use relaxfault_bench::{folded, report};
use relaxfault_farm::{FarmLedger, JobManifest, JobStatus};
use relaxfault_util::history::Ledger;
use relaxfault_util::json::Value;
use relaxfault_util::persist::{self, Persist};
use relaxfault_util::table::Table;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn results_dir(flag: &Option<String>) -> String {
    flag.clone()
        .or_else(|| std::env::var("RF_RESULTS_DIR").ok())
        .unwrap_or_else(|| "results".into())
}

struct Flags {
    results: Option<String>,
    ledger: Option<String>,
    out: Option<String>,
    series: Option<String>,
    factor: f64,
    count: usize,
    top: usize,
    check: bool,
    rotate: bool,
    positional: Vec<String>,
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut f = Flags {
        results: None,
        ledger: None,
        out: None,
        series: None,
        factor: 2.0,
        count: 3,
        top: usize::MAX,
        check: false,
        rotate: false,
        positional: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--results" => f.results = Some(value("--results")?),
            "--ledger" => f.ledger = Some(value("--ledger")?),
            "--out" => f.out = Some(value("--out")?),
            "--series" => f.series = Some(value("--series")?),
            "--factor" => {
                f.factor = value("--factor")?
                    .parse()
                    .map_err(|_| "--factor needs a number")?;
            }
            "--count" => {
                f.count = value("--count")?
                    .parse()
                    .map_err(|_| "--count needs an integer")?;
            }
            "--top" => {
                f.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs an integer")?;
            }
            "--check" => f.check = true,
            "--rotate" => f.rotate = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            p => f.positional.push(p.to_string()),
        }
    }
    Ok(f)
}

fn ledger_path(f: &Flags) -> PathBuf {
    f.ledger
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| Ledger::default_path(&results_dir(&f.results)))
}

fn ingest(f: &Flags) -> Result<ExitCode, String> {
    let dir = results_dir(&f.results);
    let (ledger, rep) = Ledger::ingest_dir(&dir)?;
    println!(
        "ingest {}: {} added, {} already ledgered, {} skipped ({} entries total)",
        ledger.path.display(),
        rep.added,
        rep.duplicate,
        rep.skipped.len(),
        ledger.entries.len()
    );
    for (path, reason) in &rep.skipped {
        println!("  skipped {}: {reason}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes one proposed replacement baseline snapshot per rotation
/// proposal: the committed baseline's layout, with the proposed median —
/// a reviewable artifact, never an in-place overwrite.
fn write_proposals(dir: &str, reports: &[report::SeriesReport]) -> Result<(), String> {
    for r in reports {
        let (Some(baseline), Some(proposal)) = (r.baseline, r.proposal) else {
            continue;
        };
        let path = Path::new(dir)
            .join("baselines")
            .join(format!("{}.proposed.json", r.key.name));
        let doc = Value::object([
            ("series", Value::from(r.key.label().as_str())),
            ("bench", Value::from(r.key.name.as_str())),
            ("config_hash", persist::hex(r.key.config_hash)),
            ("threads", Value::from(r.key.threads)),
            ("current_median_ns", Value::from(baseline)),
            ("proposed_median_ns", Value::from(proposal)),
            ("window", Value::from(report::BASELINE_WINDOW as u64)),
            ("margin", Value::from(report::BASELINE_MARGIN)),
        ]);
        persist::atomic_write(&path, &doc.to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("baseline proposal: {}", path.display());
    }
    Ok(())
}

fn run_report(f: &Flags) -> Result<ExitCode, String> {
    let dir = results_dir(&f.results);
    let path = ledger_path(f);
    let ledger = Ledger::load(&path)?;
    if ledger.entries.is_empty() {
        return Err(format!(
            "{}: ledger is empty — run `obs_report ingest` first",
            path.display()
        ));
    }
    let baselines = report::load_baselines(&Path::new(&dir).join("baselines"));
    let reports = report::analyze(&ledger.entries, &baselines);
    let html = report::render_html(&reports);
    let out = f
        .out
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| path.with_file_name("report.html"));
    persist::atomic_write(&out, &html)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "report: {} ({} series, {} entries)",
        out.display(),
        reports.len(),
        ledger.entries.len()
    );
    if f.rotate {
        write_proposals(&dir, &reports)?;
    }
    let verdict = report::check(&reports);
    if f.check {
        if verdict.is_empty() {
            println!("check: clean — no bench series' latest regime regressed");
        } else {
            for line in &verdict {
                println!("{line}");
            }
            return Ok(ExitCode::from(1));
        }
    } else {
        for line in &verdict {
            println!("{line}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn extend(f: &Flags) -> Result<ExitCode, String> {
    let series = f
        .series
        .as_ref()
        .ok_or("extend needs --series <bench name>")?;
    let path = ledger_path(f);
    let added = report::extend_series(&path, series, f.factor, f.count)?;
    println!(
        "extend {}: appended {added} synthetic runs ({series} × {})",
        path.display(),
        f.factor
    );
    Ok(ExitCode::SUCCESS)
}

/// Renders the figure-farm dashboard from the durable farm state: the
/// ledger's matrix digest plus one row per job manifest, diagnostics
/// included. Mirrored to `<results>/farm/report.txt` so the dashboard
/// survives next to the artifacts it describes.
fn farm_report(f: &Flags) -> Result<ExitCode, String> {
    let dir = results_dir(&f.results);
    let farm = relaxfault_farm::farm_dir(Path::new(&dir));
    let ledger = FarmLedger::load(&relaxfault_farm::ledger_path(Path::new(&dir)))?;
    let jobs_dir = farm.join("jobs");
    let mut manifests: Vec<JobManifest> = Vec::new();
    let entries =
        std::fs::read_dir(&jobs_dir).map_err(|e| format!("{}: {e}", jobs_dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        // Repro archives sit next to the manifests; they are relcheck
        // cases, not manifests.
        if !name.ends_with(".json") || name.ends_with(".repro.json") {
            continue;
        }
        manifests.push(JobManifest::load(&path)?);
    }
    manifests.sort_by(|a, b| a.id.cmp(&b.id));
    let mut t = Table::new(&["job", "role", "status", "attempts", "cost", "repro"]);
    for m in &manifests {
        t.row(&[
            m.id.clone(),
            m.role.as_str().into(),
            m.status.as_str().into(),
            m.attempts.to_string(),
            m.cost.to_string(),
            m.repro.clone().unwrap_or_else(|| "-".into()),
        ]);
    }
    let title = format!(
        "Figure farm: {} manifest(s), matrix digest {:#018x}",
        manifests.len(),
        ledger.spec_digest
    );
    println!("== {title} ==");
    print!("{}", t.render());
    let bad: Vec<&JobManifest> = manifests
        .iter()
        .filter(|m| matches!(m.status, JobStatus::Failed | JobStatus::Blocked))
        .collect();
    for m in &bad {
        println!(
            "{} {}: {}",
            m.status.as_str().to_uppercase(),
            m.id,
            m.reason.as_deref().unwrap_or("(no reason recorded)")
        );
    }
    persist::atomic_write(
        &farm.join("report.txt"),
        &format!("{title}\n{}", t.render()),
    )
    .map_err(|e| format!("cannot write farm report: {e}"))?;
    if f.check && !bad.is_empty() {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn folded_diff(f: &Flags) -> Result<ExitCode, String> {
    let [before_path, after_path] = f.positional.as_slice() else {
        return Err("folded-diff needs exactly two .folded paths".into());
    };
    let read = |p: &String| {
        std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read {p}: {e}"))
            .and_then(|t| folded::parse(&t).map_err(|e| format!("{p}: {e}")))
    };
    let before = read(before_path)?;
    let after = read(after_path)?;
    let mut rows = folded::diff(&before, &after);
    rows.truncate(f.top);
    print!("{}", folded::render(&rows));
    Ok(ExitCode::SUCCESS)
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or(
        "usage: obs_report <ingest|report|extend|folded-diff|farm> [flags]\n\
         see the module docs (or DESIGN.md §6.2) for the flag list",
    )?;
    let f = parse_flags(args)?;
    match cmd.as_str() {
        "ingest" => ingest(&f),
        "report" => run_report(&f),
        "extend" => extend(&f),
        "folded-diff" => folded_diff(&f),
        "farm" => farm_report(&f),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("obs_report: {e}");
            ExitCode::from(2)
        }
    }
}
