//! CI gate for observability artifacts: parses every `*.json` under the
//! given directory (default `results/obs`) with `util::json`'s strict
//! parser and checks the snapshot schema — required top-level keys, the
//! shared `schema_version`, and that at least one counter or histogram is
//! populated. Exits non-zero on any violation.

use relaxfault_util::json::Value;
use relaxfault_util::obs;

const REQUIRED_KEYS: [&str; 5] = [
    "schema_version",
    "counters",
    "gauges",
    "histograms",
    "dropped_events",
];

fn validate(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key `{key}`"));
        }
    }
    let version = doc.get("schema_version").and_then(Value::as_f64);
    if version != Some(obs::SCHEMA_VERSION as f64) {
        return Err(format!(
            "schema_version {version:?}, expected {}",
            obs::SCHEMA_VERSION
        ));
    }
    let counters = doc
        .get("counters")
        .and_then(|v| match v {
            Value::Object(pairs) => Some(pairs.len()),
            _ => None,
        })
        .ok_or("`counters` is not an object")?;
    let histograms = doc
        .get("histograms")
        .and_then(|v| match v {
            Value::Object(pairs) => Some(pairs.len()),
            _ => None,
        })
        .ok_or("`histograms` is not an object")?;
    if counters + histograms == 0 {
        return Err("snapshot has no counters or histograms".into());
    }
    Ok(())
}

fn main() {
    let dir = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "results/obs".into());
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("obs_validate: cannot read {dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut checked = 0usize;
    let mut failed = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        checked += 1;
        match validate(&path) {
            Ok(()) => println!("ok      {}", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("FAILED  {}: {e}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!("obs_validate: no snapshots found in {dir}");
        std::process::exit(1);
    }
    println!("obs_validate: {checked} snapshot(s), {failed} failure(s)");
    if failed > 0 {
        std::process::exit(1);
    }
}
