//! CI gate for observability artifacts: scans *every* file under the
//! given directory (default `results/obs`) with `util::json`'s strict
//! parser. Snapshots (`*.json`) must carry the required top-level keys,
//! the shared `schema_version`, an embedded manifest, and at least one
//! populated counter or histogram; exported traces (`*.trace.json`) must
//! be Chrome trace-event arrays (`ph: "X"`, `ts` monotone per track).
//! Mixed `schema_version`s across the scanned snapshots fail the whole
//! directory, even if each file is self-consistent. Relcheck repro cases
//! (top-level `kind: "relcheck_repro"`, e.g. under `results/relcheck`),
//! fleet checkpoints (`kind: "fleet_checkpoint"`, e.g. a `--ckpt-dir`),
//! crash dumps (`kind: "crash_dump"`, written by the panic hook and
//! the injected-crash path), farm job manifests (`kind: "farm_job"`,
//! under `<results>/farm/jobs/`), and farm ledgers (`kind: "farm_state"`)
//! are validated against their own schemas via the strict [`ReproCase`],
//! [`FleetCheckpoint`], [`CrashDump`], [`JobManifest`], and
//! [`FarmLedger`] deserializers; each kind gets its own mixed-version
//! check, separate from the obs one. Folded profiler output (`*.folded`) must be
//! non-empty `frame[;frame...] count` lines. Perf-history ledgers
//! (`*.jsonl`, e.g. `results/history/ledger.jsonl`) must strict-parse
//! line by line (every record the `history_entry` kind with a verified
//! content digest), end with a newline (a missing one means a truncated
//! append and fails the file), carry exactly one schema_version across
//! all lines, and satisfy the `util::history` ledger invariants.
//! Exits non-zero on any violation.

use relaxfault_farm::{FarmLedger, JobManifest, JobStatus};
use relaxfault_relsim::fleet::{FleetCheckpoint, FLEET_CHECKPOINT_KIND};
use relaxfault_relsim::repro::{ReproCase, REPRO_KIND};
use relaxfault_util::crashdump::{self, CrashDump};
use relaxfault_util::history;
use relaxfault_util::json::Value;
use relaxfault_util::obs;
use relaxfault_util::persist::Persist;
use std::collections::BTreeSet;
use std::collections::HashMap;

const REQUIRED_KEYS: [&str; 7] = [
    "schema_version",
    "manifest",
    "counters",
    "gauges",
    "histograms",
    "benches",
    "dropped_events",
];

fn object_len(doc: &Value, key: &str) -> Result<usize, String> {
    match doc.get(key) {
        Some(Value::Object(pairs)) => Ok(pairs.len()),
        _ => Err(format!("`{key}` is not an object")),
    }
}

/// Whether a parsed document is a relcheck repro case rather than an obs
/// snapshot.
fn is_repro(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some(REPRO_KIND)
}

/// Whether a parsed document is a fleet checkpoint.
fn is_fleet_checkpoint(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some(FLEET_CHECKPOINT_KIND)
}

/// Whether a parsed document is a crash dump.
fn is_crash_dump(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some(crashdump::KIND)
}

/// Whether a parsed document is a farm job manifest.
fn is_farm_job(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some(JobManifest::KIND)
}

/// Whether a parsed document is a farm_state ledger.
fn is_farm_state(doc: &Value) -> bool {
    doc.get("kind").and_then(Value::as_str) == Some(FarmLedger::KIND)
}

/// Validates one farm job manifest via the strict deserializer, plus: the
/// manifest's id must match its file stem (the farm writes
/// `farm/jobs/<id>.json`), and a failed manifest must carry a reason.
/// Returns the schema_version for the per-kind mixed-version check.
fn validate_farm_job(doc: &Value, path: &std::path::Path) -> Result<u64, String> {
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version")? as u64;
    let manifest = JobManifest::from_json(doc)?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    if manifest.id != stem {
        return Err(format!(
            "manifest id {:?} does not match file stem {stem:?}",
            manifest.id
        ));
    }
    if manifest.status == JobStatus::Failed && manifest.reason.is_none() {
        return Err("failed manifest carries no reason".into());
    }
    Ok(version)
}

/// Validates one farm_state ledger via the strict deserializer, plus: it
/// must record at least one job, sorted by id (the binary-search upsert
/// contract). Returns the schema_version for the mixed-version check.
fn validate_farm_state(doc: &Value) -> Result<u64, String> {
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version")? as u64;
    let ledger = FarmLedger::from_json(doc)?;
    if ledger.jobs.is_empty() {
        return Err("farm_state ledger records no jobs".into());
    }
    if !ledger.jobs.windows(2).all(|w| w[0].id < w[1].id) {
        return Err("farm_state jobs are not strictly sorted by id".into());
    }
    Ok(version)
}

/// Validates one crash dump via the strict deserializer (which checks the
/// run name, non-empty reason, snapshot sections, flight array, and the
/// shape of any embedded checkpoint), plus: an embedded checkpoint must
/// itself pass the [`FleetCheckpoint`] deserializer, so `relcheck replay`
/// is guaranteed to accept anything this gate passed. Returns the dump's
/// schema_version for the per-kind mixed-version check.
fn validate_crash_dump(doc: &Value) -> Result<u64, String> {
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version")? as u64;
    let dump = CrashDump::from_json(doc)?;
    if let Some(ckpt) = &dump.checkpoint {
        FleetCheckpoint::from_json(ckpt).map_err(|e| format!("embedded checkpoint: {e}"))?;
    }
    Ok(version)
}

/// Validates one folded-stack profile: non-empty, every line of the form
/// `frame[;frame...] count` with a positive integer count.
fn validate_folded(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    if text.trim().is_empty() {
        return Err("folded profile is empty".into());
    }
    for (i, line) in text.lines().enumerate() {
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or(format!("line {}: no `stack count` separator", i + 1))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty stack frame", i + 1));
        }
        let n: u64 = count
            .parse()
            .map_err(|_| format!("line {}: count {count:?} is not an integer", i + 1))?;
        if n == 0 {
            return Err(format!("line {}: zero sample count", i + 1));
        }
    }
    Ok(())
}

/// Validates one perf-history ledger: strict line-by-line decode
/// (truncation and corrupted content digests rejected by
/// [`history::Ledger::parse_entries`]), a single schema_version across
/// every line (a mixed-version ledger means two incompatible writers
/// interleaved and is rejected even though each line may be individually
/// decodable), and the structural invariants `relcheck ledger` enforces.
fn validate_ledger(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let entries = history::Ledger::parse_entries(&text)?;
    if entries.is_empty() {
        return Err("ledger is empty".into());
    }
    let mut versions: BTreeSet<u64> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let doc = Value::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        let version = doc
            .get("schema_version")
            .and_then(Value::as_f64)
            .ok_or(format!("line {}: missing schema_version", i + 1))? as u64;
        versions.insert(version);
    }
    if versions.len() > 1 {
        return Err(format!("mixed schema_versions within ledger: {versions:?}"));
    }
    history::check_invariants(&history::Ledger {
        path: path.to_path_buf(),
        entries,
    })
}

/// Validates one fleet checkpoint via the strict deserializer, returning
/// its schema_version for the per-kind mixed-version check.
fn validate_fleet_checkpoint(doc: &Value) -> Result<u64, String> {
    let version = doc
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version")? as u64;
    let ckpt = FleetCheckpoint::from_json(doc)?;
    if ckpt.scenarios.is_empty() {
        return Err("fleet checkpoint carries no scenario arms".into());
    }
    Ok(version)
}

/// Validates one relcheck repro case: the strict deserializer accepts it
/// and the recorded reason is non-empty.
fn validate_repro(doc: &Value) -> Result<(), String> {
    let case = ReproCase::from_json(doc)?;
    if case.reason.is_empty() {
        return Err("repro case has an empty reason".into());
    }
    if case.scenarios.is_empty() && case.prop_choices.is_empty() {
        return Err("repro case carries neither scenarios nor a choice stream".into());
    }
    Ok(())
}

/// Validates one metrics snapshot, returning its schema_version.
fn validate_snapshot(doc: &Value, path: &std::path::Path) -> Result<u64, String> {
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key `{key}`"));
        }
    }
    let version = doc.get("schema_version").and_then(Value::as_f64);
    if version != Some(obs::SCHEMA_VERSION as f64) {
        return Err(format!(
            "schema_version {version:?}, expected {}",
            obs::SCHEMA_VERSION
        ));
    }
    let manifest_run = doc
        .get("manifest")
        .and_then(|m| m.get("run"))
        .and_then(Value::as_str)
        .ok_or("manifest has no `run`")?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    if manifest_run != stem {
        return Err(format!(
            "manifest.run `{manifest_run}` does not match file stem `{stem}`"
        ));
    }
    // Fleet runs record their shape in the manifest (0/0 when no fleet
    // ran); both fields must be well-formed non-negative integers.
    for key in ["epochs", "shards"] {
        let n = doc
            .get("manifest")
            .and_then(|m| m.get(key))
            .and_then(Value::as_f64)
            .ok_or(format!("manifest has no numeric `{key}`"))?;
        if n < 0.0 || n != n.trunc() {
            return Err(format!("manifest.{key} {n} is not a non-negative integer"));
        }
    }
    let counters = object_len(doc, "counters")?;
    let histograms = object_len(doc, "histograms")?;
    if counters + histograms == 0 {
        return Err("snapshot has no counters or histograms".into());
    }
    Ok(version.expect("checked above") as u64)
}

/// Validates one exported Chrome trace: an array of `ph: "X"` complete
/// events whose `ts` is strictly monotone within each `tid` track.
fn validate_trace(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc.as_array().ok_or("trace is not a JSON array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            return Err(format!("event {i} is not a `ph: \"X\"` complete event"));
        }
        let tid = e
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} has no tid"))? as u64;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} has no ts"))?;
        if let Some(prev) = last_ts.insert(tid, ts) {
            if ts <= prev {
                return Err(format!("event {i}: ts {ts} not monotone on track {tid}"));
            }
        }
    }
    Ok(())
}

fn main() {
    let dir = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "results/obs".into());
    // A directory scans every artifact inside; a single file (e.g. one
    // ledger) is validated on its own.
    let mut paths: Vec<std::path::PathBuf> = if std::path::Path::new(&dir).is_file() {
        vec![std::path::PathBuf::from(&dir)]
    } else {
        match std::fs::read_dir(&dir) {
            Ok(entries) => entries.flatten().map(|e| e.path()).collect(),
            Err(e) => {
                eprintln!("obs_validate: cannot read {dir}: {e}");
                std::process::exit(1);
            }
        }
    };
    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut versions: BTreeSet<u64> = BTreeSet::new();
    let mut fleet_versions: BTreeSet<u64> = BTreeSet::new();
    let mut crash_versions: BTreeSet<u64> = BTreeSet::new();
    let mut farm_job_versions: BTreeSet<u64> = BTreeSet::new();
    let mut farm_state_versions: BTreeSet<u64> = BTreeSet::new();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let result = if name.ends_with(".trace.json") {
            checked += 1;
            validate_trace(&path)
        } else if name.ends_with(".folded") {
            checked += 1;
            validate_folded(&path)
        } else if name.ends_with(".jsonl") {
            checked += 1;
            validate_ledger(&path)
        } else if name.ends_with(".json") {
            checked += 1;
            match std::fs::read_to_string(&path)
                .map_err(|e| format!("read failed: {e}"))
                .and_then(|text| Value::parse(&text).map_err(|e| format!("invalid JSON: {e}")))
            {
                Ok(doc) if is_repro(&doc) => validate_repro(&doc),
                Ok(doc) if is_fleet_checkpoint(&doc) => validate_fleet_checkpoint(&doc).map(|v| {
                    fleet_versions.insert(v);
                }),
                Ok(doc) if is_crash_dump(&doc) => validate_crash_dump(&doc).map(|v| {
                    crash_versions.insert(v);
                }),
                Ok(doc) if is_farm_job(&doc) => validate_farm_job(&doc, &path).map(|v| {
                    farm_job_versions.insert(v);
                }),
                Ok(doc) if is_farm_state(&doc) => validate_farm_state(&doc).map(|v| {
                    farm_state_versions.insert(v);
                }),
                Ok(doc) => validate_snapshot(&doc, &path).map(|v| {
                    versions.insert(v);
                }),
                Err(e) => Err(e),
            }
        } else {
            continue; // .prom and friends have their own consumers
        };
        match result {
            Ok(()) => println!("ok      {}", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("FAILED  {}: {e}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!("obs_validate: no snapshots found in {dir}");
        std::process::exit(1);
    }
    if versions.len() > 1 {
        failed += 1;
        eprintln!("FAILED  {dir}: mixed schema_versions across snapshots: {versions:?}");
    }
    if fleet_versions.len() > 1 {
        failed += 1;
        eprintln!(
            "FAILED  {dir}: mixed schema_versions across fleet checkpoints: {fleet_versions:?}"
        );
    }
    if crash_versions.len() > 1 {
        failed += 1;
        eprintln!("FAILED  {dir}: mixed schema_versions across crash dumps: {crash_versions:?}");
    }
    if farm_job_versions.len() > 1 {
        failed += 1;
        eprintln!(
            "FAILED  {dir}: mixed schema_versions across farm job manifests: {farm_job_versions:?}"
        );
    }
    if farm_state_versions.len() > 1 {
        failed += 1;
        eprintln!(
            "FAILED  {dir}: mixed schema_versions across farm ledgers: {farm_state_versions:?}"
        );
    }
    println!("obs_validate: {checked} artifact(s), {failed} failure(s)");
    if failed > 0 {
        std::process::exit(1);
    }
}
