//! Regenerates Figure 8: repair coverage of RelaxFault vs FreeFault with
//! and without XOR-based LLC set-index hashing (1 repair way per set).

use relaxfault_bench::{emit, fig08_hashing};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(60_000);
    let t = fig08_hashing(trials);
    emit(
        "fig08_hashing",
        &format!("Figure 8: coverage vs set-index hashing ({trials} node trials)"),
        &t,
    );
    relaxfault_bench::obs_finish();
}
