//! Regenerates Figure 8: repair coverage of RelaxFault vs FreeFault with
//! and without XOR-based LLC set-index hashing (1 repair way per set).

use relaxfault_bench::{emit, fig08_hashing, work_arg};

fn main() {
    relaxfault_bench::init();
    let trials = work_arg(60_000);
    let t = fig08_hashing(trials);
    emit(
        "fig08_hashing",
        &format!("Figure 8: coverage vs set-index hashing ({trials} node trials)"),
        &t,
    );
}
