//! Regenerates Figure 12: expected DUEs per 16,384-node system over
//! 6 years, by mechanism and way limit, at 1x and 10x FIT.

use relaxfault_bench::{emit, reliability_matrix};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(2_000_000);
    let r1 = reliability_matrix(1.0, trials);
    emit(
        "fig12a_dues_1x",
        &format!("Figure 12a: DUEs per system, 1x FIT ({trials} node trials)"),
        &r1.dues,
    );
    let t10 = trials / 3;
    let r10 = reliability_matrix(10.0, t10);
    emit(
        "fig12b_dues_10x",
        &format!("Figure 12b: DUEs per system, 10x FIT ({t10} node trials)"),
        &r10.dues,
    );
    relaxfault_bench::obs_finish();
}
