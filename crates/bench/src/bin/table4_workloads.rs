//! Regenerates Table 4: the workload catalogue (synthetic stand-ins).

use relaxfault_bench::emit;
use relaxfault_bench::perf::table4;

fn main() {
    relaxfault_bench::obs_init();
    emit(
        "table4_workloads",
        "Table 4: workloads (synthetic stand-ins)",
        &table4(),
    );
    relaxfault_bench::obs_finish();
}
