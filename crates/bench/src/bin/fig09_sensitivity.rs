//! Regenerates Figure 9: sensitivity of the refined fault model to the
//! FIT acceleration factor (9a/9b) and the accelerated fraction (9c/9d).

use relaxfault_bench::{emit, fig09_sensitivity};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(60_000);
    let (factor, fraction) = fig09_sensitivity(trials);
    emit(
        "fig09a_factor",
        &format!("Figure 9a/9b: sweep of FIT acceleration at 0.1% of nodes+DIMMs ({trials} trials/point)"),
        &factor,
    );
    emit(
        "fig09c_fraction",
        &format!("Figure 9c/9d: sweep of accelerated fraction at 100x ({trials} trials/point)"),
        &fraction,
    );
    relaxfault_bench::obs_finish();
}
