//! Figure-farm orchestrator: regenerates the paper's result set as a
//! resumable DAG of figure/table jobs with auto-repair.
//!
//! ```text
//! farm run --matrix=figures|mini [--dir=PATH] [--jobs=N] [--budget=N]
//!          [--scale=F] [--retries=N] [--resume] [--fail-job=ID]
//! ```
//!
//! Each job spawns the sibling `fig*`/`table*` binary named by its id
//! (found next to the `farm` executable) with `RF_RESULTS_DIR` pointed at
//! `--dir` and `RF_RUN_NAME` set to the job id, so every job leaves its
//! tables and obs snapshot under one results root. Durable farm state
//! (the `farm_state` ledger and per-job `farm_job` manifests) lands under
//! `<dir>/farm/`; a killed farm resumes with `--resume`, skipping
//! ledgered-ok jobs after a drift check and re-running everything else.
//!
//! * `--matrix=figures` is the full 14-bin paper set with its dependency
//!   tiers; `--matrix=mini` is the 3-job chain the CI gate uses.
//! * `--scale=F` multiplies every job's trial/instruction count (floor
//!   50), so CI can run the same DAG in seconds. Scale changes job
//!   digests: a resume must pass the same `--scale` as the original run.
//! * `--jobs=N` sizes the worker pool (default 2 — each child already
//!   parallelises internally); `--budget=N` caps the summed cost of
//!   concurrently running jobs; `--retries=N` grants every job extra
//!   attempts.
//! * `--fail-job=ID` runs that job's child under `RF_CHECK=1
//!   RF_CHECK_FAIL_TRIAL=0`, forcing a deterministic engine-check failure
//!   that writes a relcheck ReproCase — the auto-repair loop then
//!   archives the case next to the job's manifest
//!   (`<dir>/farm/jobs/<ID>.repro.json`) and re-queues an in-process
//!   `relcheck replay` of it as a diagnostic job, while the rest of the
//!   DAG keeps running.
//! * `RF_FARM_CRASH_AT=<job>` (boundary) / `mid:<job>` kills the farm for
//!   the crash/resume gate, exactly like `RF_FLEET_CRASH_AT` does for the
//!   fleet simulator.
//!
//! Exit codes: 0 every matrix job ok; 1 usage error; 3 the DAG completed
//! but some jobs failed or were blocked (their manifests carry the
//! reasons); 4 the farm itself died (injected crash, ledger drift, or a
//! persistence failure) — a crash dump is written and the run resumes
//! with `--resume`.

use relaxfault_bench::emit;
use relaxfault_farm::{
    crash_at_from_env, repro_archive_path, Farm, FarmConfig, Job, JobFailure, JobSpec, Repair,
};
use relaxfault_relcheck::replay::{load_any, replay, LoadedCase};
use relaxfault_util::crashdump::CrashDump;
use relaxfault_util::table::Table;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const USAGE: &str = "usage: farm run --matrix=figures|mini [--dir=PATH] [--jobs=N] \
                     [--budget=N] [--scale=F] [--retries=N] [--resume] [--fail-job=ID]";

/// One matrix entry: the sibling binary to spawn, its dependency tier,
/// and the paper-scale work amount (`None` = the bin takes no positional
/// work argument).
struct JobDef {
    bin: &'static str,
    deps: &'static [&'static str],
    work: Option<u64>,
}

/// The full paper set: 14 figure/table bins in dependency tiers —
/// configuration and field-study roots, then coverage, reliability, and
/// performance tiers, then the ablation summary that reads across them.
const FIGURES: &[JobDef] = &[
    JobDef {
        bin: "table3_config",
        deps: &[],
        work: None,
    },
    JobDef {
        bin: "table4_workloads",
        deps: &[],
        work: None,
    },
    JobDef {
        bin: "fig02_table2",
        deps: &[],
        work: None,
    },
    JobDef {
        bin: "table1_overhead",
        deps: &["table3_config"],
        work: None,
    },
    JobDef {
        bin: "fig08_hashing",
        deps: &["table3_config"],
        work: Some(60_000),
    },
    JobDef {
        bin: "fig10_coverage",
        deps: &["table3_config"],
        work: Some(600_000),
    },
    JobDef {
        bin: "fig11_coverage_10x",
        deps: &["fig10_coverage"],
        work: Some(400_000),
    },
    JobDef {
        bin: "fig09_sensitivity",
        deps: &["fig02_table2"],
        work: Some(60_000),
    },
    JobDef {
        bin: "fig12_dues",
        deps: &["fig02_table2", "table3_config"],
        work: Some(2_000_000),
    },
    JobDef {
        bin: "fig13_sdcs",
        deps: &["fig02_table2", "table3_config"],
        work: Some(4_000_000),
    },
    JobDef {
        bin: "fig14_replacements",
        deps: &["fig12_dues"],
        work: Some(200_000),
    },
    JobDef {
        bin: "fig15_performance",
        deps: &["table3_config", "table4_workloads"],
        work: Some(300_000),
    },
    JobDef {
        bin: "fig16_power",
        deps: &["fig15_performance"],
        work: Some(300_000),
    },
    JobDef {
        bin: "ablation_design",
        deps: &["fig10_coverage", "fig12_dues"],
        work: Some(40_000),
    },
];

/// The 3-job chain the CI crash/resume gate drives.
const MINI: &[JobDef] = &[
    JobDef {
        bin: "table3_config",
        deps: &[],
        work: None,
    },
    JobDef {
        bin: "fig08_hashing",
        deps: &["table3_config"],
        work: Some(60_000),
    },
    JobDef {
        bin: "fig10_coverage",
        deps: &["fig08_hashing"],
        work: Some(600_000),
    },
];

struct Args {
    matrix_name: String,
    matrix: &'static [JobDef],
    dir: PathBuf,
    jobs: usize,
    budget: Option<u64>,
    scale: f64,
    retries: u32,
    resume: bool,
    fail_job: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix_name: "figures".into(),
        matrix: FIGURES,
        dir: PathBuf::from(std::env::var("RF_RESULTS_DIR").unwrap_or_else(|_| "results".into())),
        jobs: 2,
        budget: None,
        scale: 1.0,
        retries: 0,
        resume: false,
        fail_job: None,
    };
    let mut subcommand = None;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--matrix=") {
            (args.matrix_name, args.matrix) = match v {
                "figures" => (v.to_string(), FIGURES),
                "mini" => (v.to_string(), MINI),
                other => return Err(format!("unknown matrix {other:?} (figures or mini)")),
            };
        } else if let Some(v) = a.strip_prefix("--dir=") {
            args.dir = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            args.jobs = v.parse().map_err(|_| format!("bad --jobs={v}"))?;
        } else if let Some(v) = a.strip_prefix("--budget=") {
            args.budget = Some(v.parse().map_err(|_| format!("bad --budget={v}"))?);
        } else if let Some(v) = a.strip_prefix("--scale=") {
            args.scale = v.parse().map_err(|_| format!("bad --scale={v}"))?;
        } else if let Some(v) = a.strip_prefix("--retries=") {
            args.retries = v.parse().map_err(|_| format!("bad --retries={v}"))?;
        } else if a == "--resume" {
            args.resume = true;
        } else if let Some(v) = a.strip_prefix("--fail-job=") {
            args.fail_job = Some(v.to_string());
        } else if !a.starts_with('-') && subcommand.is_none() {
            subcommand = Some(a);
        }
        // Anything else is a shared harness flag obs_init already parsed.
    }
    match subcommand.as_deref() {
        Some("run") => {}
        Some(other) => return Err(format!("unknown subcommand {other:?}")),
        None => return Err("missing subcommand".into()),
    }
    if !(args.scale.is_finite() && args.scale > 0.0) {
        return Err(format!("--scale={} must be a positive number", args.scale));
    }
    if let Some(fail) = &args.fail_job {
        if !args.matrix.iter().any(|d| d.bin == *fail) {
            return Err(format!(
                "--fail-job={fail}: not a job of the {} matrix",
                args.matrix_name
            ));
        }
    }
    Ok(args)
}

/// A job's scaled work amount (floor 50 so a tiny `--scale` still runs a
/// meaningful Monte Carlo).
fn scaled_work(def: &JobDef, scale: f64) -> Option<u64> {
    def.work
        .map(|w| ((w as f64 * scale).round() as u64).max(50))
}

/// The job spec: id = bin name, cost proportional to the scaled work (so
/// the budget dispatcher sees real weights — and so a different `--scale`
/// changes the digests and is rejected as drift on resume).
fn spec_for(def: &JobDef, scale: f64, retries: u32) -> JobSpec {
    let mut spec = JobSpec::new(def.bin)
        .cost(scaled_work(def, scale).map_or(1, |w| (w / 10_000).max(1)))
        .retries(retries);
    for d in def.deps {
        spec = spec.dep(*d);
    }
    spec
}

/// The job body: spawn the sibling binary with the job's work amount,
/// its results root, and its run name. Failure reason = exit status plus
/// the tail of the child's stderr.
fn job_body(
    def: &JobDef,
    scale: f64,
    force_fail: bool,
    exe_dir: PathBuf,
    results: PathBuf,
) -> impl Fn(&relaxfault_farm::JobCtx) -> Result<(), String> + Send + 'static {
    let bin = def.bin;
    let work = scaled_work(def, scale);
    move |ctx| {
        let exe = exe_dir.join(bin);
        let mut cmd = Command::new(&exe);
        if let Some(w) = work {
            cmd.arg(w.to_string());
        }
        // Children must not inherit the farm's own crash hook or try to
        // bind the farm's live endpoint address.
        cmd.env("RF_RESULTS_DIR", &results)
            .env("RF_RUN_NAME", &ctx.id)
            .env_remove("RF_FARM_CRASH_AT")
            .env_remove("RF_OBS_ADDR")
            .env_remove("RF_OBS_ADDR_FILE");
        if force_fail {
            cmd.env("RF_CHECK", "1").env("RF_CHECK_FAIL_TRIAL", "0");
        }
        let out = cmd
            .output()
            .map_err(|e| format!("cannot spawn {}: {e}", exe.display()))?;
        if out.status.success() {
            println!("farm: {} ok (attempt {})", ctx.id, ctx.attempt);
            Ok(())
        } else {
            let stderr = String::from_utf8_lossy(&out.stderr);
            // The panic message precedes the backtrace; frame lists are
            // noise in a manifest reason.
            let stderr = stderr.split("stack backtrace:").next().unwrap_or(&stderr);
            let mut tail: Vec<&str> = stderr.lines().rev().take(4).collect();
            tail.reverse();
            Err(format!(
                "{bin} exited with {}: {}",
                out.status,
                tail.join(" | ")
            ))
        }
    }
}

/// The newest relcheck ReproCase under `<results>/relcheck/`, by mtime —
/// the case the just-failed child captured.
fn newest_repro(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        if !matches!(load_any(&path), Ok(LoadedCase::Repro(_))) {
            continue;
        }
        let modified = entry.metadata().and_then(|m| m.modified()).ok()?;
        if best.as_ref().is_none_or(|(t, _)| modified >= *t) {
            best = Some((modified, path));
        }
    }
    best.map(|(_, path)| path)
}

/// The auto-repair hook: archive the captured ReproCase next to the
/// failed job's manifest and re-queue an in-process `relcheck replay` of
/// the archive as a diagnostic job (`<id>-repro`, role `repro`).
fn repair(results: &Path, failure: &JobFailure) -> Option<Repair> {
    let case = newest_repro(&results.join("relcheck"))?;
    let archive = repro_archive_path(results, failure.id);
    std::fs::create_dir_all(archive.parent()?).ok()?;
    std::fs::copy(&case, &archive).ok()?;
    println!(
        "farm: {} failed; archived repro {} -> {}",
        failure.id,
        case.display(),
        archive.display()
    );
    let replay_path = archive.clone();
    let job =
        Job::diagnostic(
            JobSpec::new(format!("{}-repro", failure.id)),
            move |_ctx| match load_any(&replay_path)? {
                LoadedCase::Repro(case) => {
                    let report = replay(&case)?;
                    if report.reproduced {
                        println!(
                            "farm: diagnostic replay of {} reproduced",
                            replay_path.display()
                        );
                        Ok(())
                    } else {
                        Err(format!(
                            "replay of {} did not reproduce the recorded failure",
                            replay_path.display()
                        ))
                    }
                }
                _ => Err(format!("{}: not a repro case", replay_path.display())),
            },
        );
    Some(Repair {
        job,
        archive: Some(archive),
    })
}

fn main() -> ExitCode {
    relaxfault_bench::obs_init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("farm: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    // The farm's own summary artifacts must land under --dir too.
    std::env::set_var("RF_RESULTS_DIR", &args.dir);
    let exe_dir = match std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
    {
        Some(d) => d,
        None => {
            eprintln!("farm: cannot locate the sibling figure binaries");
            return ExitCode::from(1);
        }
    };
    let results = match args.dir.is_absolute() {
        true => args.dir.clone(),
        false => std::env::current_dir()
            .map(|cwd| cwd.join(&args.dir))
            .unwrap_or_else(|_| args.dir.clone()),
    };

    let mut cfg = FarmConfig::new(&results);
    cfg.workers = args.jobs.max(1);
    cfg.budget = args.budget;
    cfg.backoff_ms = 50;
    cfg.crash_at = crash_at_from_env();
    cfg.resume = args.resume;
    let mut farm = Farm::new(cfg);
    for def in args.matrix {
        let force_fail = args.fail_job.as_deref() == Some(def.bin);
        farm.job(
            spec_for(def, args.scale, args.retries),
            job_body(
                def,
                args.scale,
                force_fail,
                exe_dir.clone(),
                results.clone(),
            ),
        );
    }
    let hook_results = results.clone();
    farm.repair_hook(move |failure| repair(&hook_results, failure));

    println!(
        "farm: matrix {} ({} jobs), {} workers, scale {}{}",
        args.matrix_name,
        args.matrix.len(),
        args.jobs.max(1),
        args.scale,
        if args.resume { ", resuming" } else { "" }
    );
    match farm.run() {
        Ok(report) => {
            let mut t = Table::new(&["job", "outcome", "detail"]);
            let mut rows: Vec<(String, String, String)> = Vec::new();
            for id in &report.completed {
                rows.push((id.clone(), "ok".into(), String::new()));
            }
            for id in &report.skipped {
                rows.push((id.clone(), "skipped".into(), "already ledgered ok".into()));
            }
            for (id, reason) in &report.failed {
                rows.push((id.clone(), "failed".into(), reason.clone()));
            }
            for id in &report.blocked {
                rows.push((id.clone(), "blocked".into(), "dependency failed".into()));
            }
            for (id, ok) in &report.repro {
                let detail = if *ok {
                    "replay reproduced"
                } else {
                    "replay diverged"
                };
                rows.push((id.clone(), "repro".into(), detail.into()));
            }
            rows.sort();
            for (id, outcome, detail) in &rows {
                t.row(&[id.clone(), outcome.clone(), detail.clone()]);
            }
            emit(
                "farm_summary",
                &format!(
                    "Figure farm: {} matrix ({} ok, {} skipped, {} failed, {} blocked, \
                     {} attempts)",
                    args.matrix_name,
                    report.completed.len(),
                    report.skipped.len(),
                    report.failed.len(),
                    report.blocked.len(),
                    report.attempts
                ),
                &t,
            );
            relaxfault_bench::obs_finish();
            if report.failed.is_empty() && report.blocked.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "farm: {} job(s) failed, {} blocked — see {}",
                    report.failed.len(),
                    report.blocked.len(),
                    relaxfault_farm::farm_dir(&results).join("jobs").display()
                );
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("farm: run died: {e}");
            eprintln!(
                "farm: resume with `farm run --matrix={} --dir={} --resume`",
                args.matrix_name,
                args.dir.display()
            );
            match CrashDump::write(&relaxfault_bench::current_run_name(), &e, None) {
                Ok(path) => eprintln!("farm: crash dump written: {path}"),
                Err(dump_err) => eprintln!("farm: crash dump failed: {dump_err}"),
            }
            relaxfault_bench::obs_finish();
            ExitCode::from(4)
        }
    }
}
