//! Regenerates Figure 15: weighted speedup with LLC capacity dedicated to
//! RelaxFault repair (none / 100 KiB of random lines / 1 way / 4 ways).

use relaxfault_bench::emit;
use relaxfault_bench::perf::{fig15_table, performance_sweep};

fn main() {
    let args = relaxfault_bench::obs_init();
    let instr = args.work(300_000);
    let rows = performance_sweep(instr, 2016);
    emit(
        "fig15_performance",
        &format!("Figure 15: weighted speedup vs LLC repair capacity ({instr} instr/core)"),
        &fig15_table(&rows),
    );
    relaxfault_bench::obs_finish();
}
