//! Regenerates Figure 11: cumulative repair coverage vs required LLC
//! capacity at 10x FIT rates.

use relaxfault_bench::{coverage_curves, emit, work_arg};

fn main() {
    relaxfault_bench::init();
    let trials = work_arg(40_000);
    let t = coverage_curves(10.0, trials);
    emit(
        "fig11_coverage_10x",
        &format!("Figure 11: coverage vs LLC capacity, 10x FIT ({trials} node trials)"),
        &t,
    );
}
