//! Regenerates Figure 11: cumulative repair coverage vs required LLC
//! capacity at 10x FIT rates.

use relaxfault_bench::{coverage_curves, emit};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(400_000);
    let t = coverage_curves(10.0, trials);
    emit(
        "fig11_coverage_10x",
        &format!("Figure 11: coverage vs LLC capacity, 10x FIT ({trials} node trials)"),
        &t,
    );
    relaxfault_bench::obs_finish();
}
