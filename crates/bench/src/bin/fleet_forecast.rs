//! Fleet forecast service: epoch-by-epoch fleet simulation with
//! checkpoint/resume, answering batched DUE/SDC/replacement forecast
//! queries.
//!
//! ```text
//! fleet_forecast [NODES] [--epochs=N] [--shards=N] [--seed=N]
//!                [--threads=N] [--ckpt-dir=PATH] [--resume]
//!                [--query=NODES,NODES,...]
//!                [--serve-obs=ADDR] [--profile] [--linger-ms=N]
//! ```
//!
//! `NODES` (positional, default 1,000,000) sizes the simulated fleet.
//! With `--ckpt-dir` every epoch boundary writes a [`FleetCheckpoint`];
//! `--resume` continues from the newest checkpoint in that directory
//! instead of starting over. The `RF_FLEET_CRASH_AT` environment hook
//! (`"N"` = die entering epoch N, `"mid:N"` = die inside epoch N) kills
//! the run for the CI crash/resume gate.
//!
//! All flags take `=`-values: the shared bench arg parser treats a bare
//! numeric argument as the positional work amount.
//!
//! The live-plane flags are shared harness flags (see
//! `relaxfault_bench::obs_init`): `--serve-obs` answers `/health`,
//! `/metrics`, `/progress` (epoch/shard progress, checkpoint lineage, and
//! the forecast for each `--query` size, refreshed every boundary), and
//! `/flight` while the run executes; `--profile` writes folded stacks at
//! exit; `--linger-ms` keeps the endpoint up after the work finishes.
//!
//! Exit codes: 0 success, 1 usage error, 4 the run died (simulated crash
//! or checkpoint failure) — a crash dump with the newest durable
//! checkpoint embedded lands in `results/obs/`, and the run resumes with
//! `--resume`.

use relaxfault_bench::emit;
use relaxfault_relsim::fleet::{crash_at_from_env, latest_checkpoint, FleetConfig, FleetSim};
use relaxfault_relsim::scenario::{Mechanism, Scenario};
use relaxfault_util::crashdump::CrashDump;
use relaxfault_util::json::Value;
use relaxfault_util::table::Table;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    nodes: u64,
    epochs: u32,
    shards: u32,
    seed: u64,
    threads: usize,
    ckpt_dir: Option<PathBuf>,
    resume: bool,
    queries: Vec<u64>,
}

fn parse_args(work: u64) -> Result<Args, String> {
    let mut args = Args {
        nodes: work,
        epochs: 20,
        shards: 0,
        seed: 2016,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ckpt_dir: None,
        resume: false,
        queries: vec![16_384, 100_000, 1_000_000],
    };
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--epochs=") {
            args.epochs = v.parse().map_err(|_| format!("bad --epochs={v}"))?;
        } else if let Some(v) = a.strip_prefix("--shards=") {
            args.shards = v.parse().map_err(|_| format!("bad --shards={v}"))?;
        } else if let Some(v) = a.strip_prefix("--seed=") {
            args.seed = v.parse().map_err(|_| format!("bad --seed={v}"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            args.threads = v.parse().map_err(|_| format!("bad --threads={v}"))?;
        } else if let Some(v) = a.strip_prefix("--ckpt-dir=") {
            args.ckpt_dir = Some(PathBuf::from(v));
        } else if a == "--resume" {
            args.resume = true;
        } else if let Some(v) = a.strip_prefix("--query=") {
            args.queries = v
                .split(',')
                .map(|n| {
                    n.trim()
                        .parse()
                        .map_err(|_| format!("bad --query size {n}"))
                })
                .collect::<Result<_, _>>()?;
        }
    }
    if args.resume && args.ckpt_dir.is_none() {
        return Err("--resume needs --ckpt-dir=PATH".into());
    }
    Ok(args)
}

/// The newest durable checkpoint in `dir` as a raw JSON document, for
/// embedding in a crash dump (`relcheck replay` decodes it back into a
/// [`relaxfault_relsim::fleet::FleetCheckpoint`]). `None` when the
/// directory holds no checkpoint yet.
fn newest_checkpoint_doc(dir: &Path) -> Option<Value> {
    let path = latest_checkpoint(dir).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    Value::parse(&text).ok()
}

/// The standard forecast arms: unprotected baseline, RelaxFault at the
/// paper's 4-way budget, and PPR.
fn arms() -> Vec<Scenario> {
    let base = Scenario::isca16_baseline();
    vec![
        base.clone().with_mechanism(Mechanism::None),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
        base.with_mechanism(Mechanism::Ppr),
    ]
}

fn main() -> ExitCode {
    let bench_args = relaxfault_bench::obs_init();
    let args = match parse_args(bench_args.work(1_000_000)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet_forecast: {e}");
            return ExitCode::from(1);
        }
    };

    let mut sim = if args.resume {
        let dir = args.ckpt_dir.as_ref().expect("checked by parse_args");
        match FleetSim::resume(dir, args.threads) {
            Ok(sim) => {
                println!(
                    "resumed from {} at epoch {}/{}",
                    dir.display(),
                    sim.completed_epochs(),
                    sim.epochs()
                );
                sim
            }
            Err(e) => {
                eprintln!("fleet_forecast: resume: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        FleetSim::new(
            arms(),
            FleetConfig {
                nodes: args.nodes,
                epochs: args.epochs,
                shards: args.shards,
                seed: args.seed,
                threads: args.threads,
                ckpt_dir: args.ckpt_dir.clone(),
                crash_at: crash_at_from_env(),
            },
        )
    };

    // Step manually (rather than `run_to_end`) so every epoch boundary
    // refreshes the `/progress` document and a death can drain the live
    // plane into a crash dump before the process exits.
    sim.publish_progress(&args.queries);
    while sim.completed_epochs() < sim.epochs() {
        if let Err(e) = sim.step() {
            eprintln!(
                "fleet_forecast: run died at epoch {}/{}: {e}",
                sim.completed_epochs(),
                sim.epochs()
            );
            eprintln!("fleet_forecast: resume with --resume --ckpt-dir=PATH");
            let checkpoint = args.ckpt_dir.as_deref().and_then(newest_checkpoint_doc);
            match CrashDump::write(&relaxfault_bench::current_run_name(), &e, checkpoint) {
                Ok(path) => eprintln!("fleet_forecast: crash dump written: {path}"),
                Err(dump_err) => eprintln!("fleet_forecast: crash dump failed: {dump_err}"),
            }
            relaxfault_bench::obs_finish();
            return ExitCode::from(4);
        }
        sim.publish_progress(&args.queries);
    }

    println!(
        "fleet: {} nodes, {} epochs, {} faulty ({:.2}%), {} dirty evals, digest {:#018x}",
        sim.nodes(),
        sim.completed_epochs(),
        sim.faulty_nodes(),
        100.0 * sim.faulty_nodes() as f64 / sim.nodes() as f64,
        sim.dirty_evals(),
        sim.population_digest()
    );

    let mut totals = Table::new(&[
        "mechanism",
        "faulty",
        "repaired",
        "DUEs",
        "SDCs",
        "replacements",
        "unrepaired",
    ]);
    for (m, s) in sim.metrics().iter().zip(sim.scenarios()) {
        totals.row(&[
            s.mechanism.label(),
            m.faulty_nodes.to_string(),
            m.fully_repaired_nodes.to_string(),
            m.dues.to_string(),
            m.sdcs.to_string(),
            m.replacements.to_string(),
            m.unrepaired_faults.to_string(),
        ]);
    }

    let mut forecast = Table::new(&[
        "fleet size",
        "mechanism",
        "DUEs",
        "SDCs",
        "replacements",
        "coverage",
    ]);
    for &q in &args.queries {
        for f in sim.forecast(q) {
            forecast.row(&[
                q.to_string(),
                f.label.clone(),
                format!("{:.2}", f.dues),
                format!("{:.2}", f.sdcs),
                format!("{:.2}", f.replacements),
                format!("{:.4}", f.coverage),
            ]);
        }
    }

    // Replace process counters with the fleet's logical state so full and
    // resumed runs snapshot identically (the CI zero-delta gate).
    sim.publish_fleet_obs();
    emit(
        "fleet_totals",
        &format!(
            "Fleet totals ({} nodes, {} epochs)",
            sim.nodes(),
            sim.completed_epochs()
        ),
        &totals,
    );
    emit("fleet_forecast", "Fleet forecast by target size", &forecast);
    relaxfault_bench::obs_finish();
    ExitCode::SUCCESS
}
