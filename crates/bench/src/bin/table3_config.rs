//! Regenerates Table 3: the simulated system parameters.

use relaxfault_bench::emit;
use relaxfault_perfsim::SimConfig;
use relaxfault_util::table::{format_bytes, Table};

fn main() {
    relaxfault_bench::obs_init();
    let c = SimConfig::isca16();
    let mut t = Table::new(&["component", "configuration"]);
    t.row(&[
        "Processor".into(),
        format!(
            "{}-core, {} GHz, 4-way OOO (base IPC {})",
            c.cores,
            c.core_mhz / 1000,
            c.base_ipc
        ),
    ]);
    t.row(&[
        "L1 D-cache".into(),
        format!(
            "{}, private, {}-way, 64B line, {}-cycle",
            format_bytes(c.l1.size_bytes),
            c.l1.ways,
            c.l1_latency
        ),
    ]);
    t.row(&[
        "L2 cache".into(),
        format!(
            "{}, private, {}-way, 64B line, {}-cycle",
            format_bytes(c.l2.size_bytes),
            c.l2.ways,
            c.l2_latency
        ),
    ]);
    t.row(&[
        "L3 cache".into(),
        format!(
            "{} shared, {}-way, 64B line, {}-cycle, hashed index",
            format_bytes(c.llc.size_bytes),
            c.llc.ways,
            c.llc_latency
        ),
    ]);
    t.row(&[
        "Memory controller".to_string(),
        "open-page policy, channel/rank/bank interleaving, bank XOR hashing".to_string(),
    ]);
    t.row(&[
        "Main memory".into(),
        format!(
            "{} channels, {} ranks/channel, {} banks/rank, DDR3-1600 ({}-{}-{})",
            c.dram.channels,
            c.dram.dimms_per_channel * c.dram.ranks_per_dimm,
            c.dram.banks,
            c.timing.t_cl,
            c.timing.t_rcd,
            c.timing.t_rp
        ),
    ]);
    emit("table3_config", "Table 3: simulated system parameters", &t);
    relaxfault_bench::obs_finish();
}
