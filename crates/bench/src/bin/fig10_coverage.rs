//! Regenerates Figure 10: cumulative repair coverage vs required LLC
//! capacity at baseline FIT rates.

use relaxfault_bench::{coverage_curves, emit};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(600_000);
    let t = coverage_curves(1.0, trials);
    emit(
        "fig10_coverage",
        &format!("Figure 10: coverage vs LLC capacity, 1x FIT ({trials} node trials)"),
        &t,
    );
    relaxfault_bench::obs_finish();
}
