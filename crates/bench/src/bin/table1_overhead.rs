//! Regenerates Table 1: RelaxFault's dedicated storage, plus the §3.3
//! energy-overhead bounds.

use relaxfault_bench::emit;
use relaxfault_cache::CacheConfig;
use relaxfault_core::overhead::{EnergyOverhead, StorageOverhead};
use relaxfault_dram::DramConfig;
use relaxfault_util::table::Table;

fn main() {
    relaxfault_bench::obs_init();
    let o = StorageOverhead::for_system(
        &DramConfig::isca16_reliability(),
        &CacheConfig::isca16_llc(),
    );
    let mut t = Table::new(&["component", "bytes", "description"]);
    t.row(&[
        "faulty-bank table".into(),
        o.faulty_bank_table.to_string(),
        "1 bit per bank per DIMM".to_string(),
    ]);
    t.row(&[
        "data coalescer".into(),
        o.data_coalescer.to_string(),
        "pre-computed per-device bitmasks".to_string(),
    ]);
    t.row(&[
        "LLC tag extension".into(),
        o.llc_tag_extension.to_string(),
        "1 bit per LLC line".to_string(),
    ]);
    t.row(&[
        "total".into(),
        o.total().to_string(),
        "(paper: 16,520)".to_string(),
    ]);
    emit(
        "table1_overhead",
        "Table 1: RelaxFault storage overhead",
        &t,
    );

    let e = EnergyOverhead::isca16();
    let mut t2 = Table::new(&["quantity", "value"]);
    t2.row(&["tag lookup".into(), format!("{} nJ", e.tag_lookup_nj)]);
    t2.row(&[
        "metadata vs LLC access".into(),
        format!(
            "{:.2}% (paper bound: <1.5%)",
            e.metadata_vs_llc_access() * 100.0
        ),
    ]);
    t2.row(&[
        "metadata vs DRAM miss".into(),
        format!(
            "{:.3}% (paper bound: <0.03%)",
            e.metadata_vs_dram_miss() * 100.0
        ),
    ]);
    emit("table1_energy", "Section 3.3: energy overhead bounds", &t2);
    relaxfault_bench::obs_finish();
}
