//! Regenerates Figure 13: expected SDCs per 16,384-node system over
//! 6 years, by mechanism and way limit, at 1x and 10x FIT.

use relaxfault_bench::{emit, reliability_matrix};

fn main() {
    let args = relaxfault_bench::obs_init();
    let trials = args.work(4_000_000);
    let r1 = reliability_matrix(1.0, trials);
    emit(
        "fig13a_sdcs_1x",
        &format!("Figure 13a: SDCs per system, 1x FIT ({trials} node trials)"),
        &r1.sdcs,
    );
    let t10 = trials / 4;
    let r10 = reliability_matrix(10.0, t10);
    emit(
        "fig13b_sdcs_10x",
        &format!("Figure 13b: SDCs per system, 10x FIT ({t10} node trials)"),
        &r10.sdcs,
    );
    relaxfault_bench::obs_finish();
}
