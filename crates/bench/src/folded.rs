//! Differential analysis of flamegraph-folded profiles.
//!
//! The span profiler (`util::profiler`) emits `<run>.folded` files — one
//! `frame;frame count` line per distinct stack, sorted by stack — and PR 7
//! left reading them to external flamegraph tooling. This module makes
//! two profiles comparable in-repo: [`parse`] decodes the folded text,
//! [`self_times`] attributes each stack's samples to its leaf frame (the
//! frame actually on-CPU), and [`diff`] joins two profiles into a table
//! of frames sorted by how much self time they grew or shrank. That is
//! the question a perf regression actually poses — *which span got
//! slower* — answered without leaving the terminal.

use std::collections::BTreeMap;

/// One frame's self-time delta between two profiles, in samples.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDelta {
    /// Leaf frame name (a span label such as `relsim.trial`).
    pub frame: String,
    /// Self-time samples in the `before` profile (0 when absent).
    pub before: u64,
    /// Self-time samples in the `after` profile (0 when absent).
    pub after: u64,
}

impl FrameDelta {
    /// Signed sample delta (`after - before`).
    pub fn delta(&self) -> i64 {
        self.after as i64 - self.before as i64
    }
}

/// Decodes folded-stack text: one `frame[;frame...] count` line per
/// stack. Repeated stacks accumulate (profiler output never repeats, but
/// hand-merged files may).
///
/// # Errors
///
/// Rejects lines with no space-separated trailing count, a non-numeric
/// count, or an empty stack, naming the offending line (1-based).
pub fn parse(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample count", i + 1))?;
        if stack.is_empty() || stack.split(';').any(|frame| frame.is_empty()) {
            return Err(format!("line {}: empty frame in stack", i + 1));
        }
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {}: sample count {count:?} is not a u64", i + 1))?;
        *stacks.entry(stack.to_string()).or_insert(0) += count;
    }
    Ok(stacks)
}

/// Collapses stacks to per-leaf-frame self time: each stack's samples
/// count toward the frame that was actually executing (the last frame).
pub fn self_times(stacks: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, count) in stacks {
        let leaf = stack
            .rsplit(';')
            .next()
            .expect("parse rejects empty stacks");
        *out.entry(leaf.to_string()).or_insert(0) += count;
    }
    out
}

/// Joins two profiles into per-frame self-time deltas, sorted by
/// magnitude of change (largest first; ties by frame name so output is
/// deterministic). Frames present in only one profile appear with the
/// other side at 0.
pub fn diff(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> Vec<FrameDelta> {
    let a = self_times(before);
    let b = self_times(after);
    let mut frames: Vec<&String> = a.keys().chain(b.keys()).collect();
    frames.sort();
    frames.dedup();
    let mut rows: Vec<FrameDelta> = frames
        .into_iter()
        .map(|frame| FrameDelta {
            frame: frame.clone(),
            before: a.get(frame).copied().unwrap_or(0),
            after: b.get(frame).copied().unwrap_or(0),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta()
            .abs()
            .cmp(&x.delta().abs())
            .then_with(|| x.frame.cmp(&y.frame))
    });
    rows
}

/// Renders a delta table: grew-by-self-time first (the regression
/// suspects), then shrank, percentages relative to each profile's total
/// samples so profiles of different lengths compare fairly.
pub fn render(rows: &[FrameDelta]) -> String {
    let total_before: u64 = rows.iter().map(|r| r.before).sum();
    let total_after: u64 = rows.iter().map(|r| r.after).sum();
    let pct = |n: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * n as f64 / total as f64
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>10} {:>10} {:>8} {:>8} {:>8}\n",
        "frame", "before", "after", "Δsamples", "before%", "after%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<40} {:>10} {:>10} {:>+8} {:>7.2}% {:>7.2}%\n",
            r.frame,
            r.before,
            r.after,
            r.delta(),
            pct(r.before, total_before),
            pct(r.after, total_after),
        ));
    }
    out.push_str(&format!(
        "{:<40} {:>10} {:>10} {:>+8}\n",
        "total",
        total_before,
        total_after,
        total_after as i64 - total_before as i64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_malformed_lines() {
        let good = parse("a;b 3\na 2\n\n").expect("parses");
        assert_eq!(good.len(), 2);
        assert_eq!(good["a;b"], 3);
        assert!(parse("nocount\n").unwrap_err().contains("line 1"));
        assert!(parse("a;b notanum\n").unwrap_err().contains("line 1"));
        assert!(parse("a;; 3\n").unwrap_err().contains("empty frame"));
        // Duplicate stacks accumulate.
        assert_eq!(parse("x 1\nx 2\n").expect("parses")["x"], 3);
    }

    #[test]
    fn self_time_goes_to_the_leaf() {
        let stacks = parse("engine;trial 10\nengine;trial;eval 30\nengine 5\n").expect("parses");
        let selfs = self_times(&stacks);
        assert_eq!(selfs["engine"], 5);
        assert_eq!(selfs["trial"], 10);
        assert_eq!(selfs["eval"], 30);
    }

    #[test]
    fn diff_sorts_by_magnitude_and_handles_one_sided_frames() {
        let before = parse("a;hot 100\na;cold 50\na;gone 10\n").expect("parses");
        let after = parse("a;hot 300\na;cold 45\na;new 20\n").expect("parses");
        let rows = diff(&before, &after);
        assert_eq!(rows[0].frame, "hot");
        assert_eq!(rows[0].delta(), 200);
        let gone = rows.iter().find(|r| r.frame == "gone").expect("present");
        assert_eq!((gone.before, gone.after), (10, 0));
        let new = rows.iter().find(|r| r.frame == "new").expect("present");
        assert_eq!((new.before, new.after), (0, 20));
        let rendered = render(&rows);
        assert!(rendered.contains("hot"), "{rendered}");
        assert!(rendered.contains("total"), "{rendered}");
        // Deterministic: same inputs, same bytes.
        assert_eq!(rendered, render(&diff(&before, &after)));
    }
}
