//! The observatory's analysis + rendering layer: turns the perf-history
//! ledger (`util::history`) into trend verdicts and a static dashboard.
//!
//! [`analyze`] runs the robust analytics of `util::stats` over every
//! ledger series — MAD outlier scores, two-sided CUSUM changepoints,
//! baseline comparison and rotation proposals — and [`render_html`]
//! emits a self-contained `report.html` (inline CSS + SVG sparklines, no
//! external assets, no timestamps) whose bytes are a pure function of
//! the ledger and baselines, so re-rendering an unchanged tree is
//! byte-identical. [`check`] distills the same analysis into the CI
//! question: *did the latest regime of any bench series shift upward?*
//!
//! Baselines are the committed obs snapshots under
//! `<results>/baselines/`; a series matches a baseline when the bench
//! name, config hash, and thread count all agree — a baseline for a
//! different configuration proves nothing about this one.

use relaxfault_util::history::{self, HistoryEntry, SeriesKey, SeriesKind, SeriesPoint};
use relaxfault_util::json::Value;
use relaxfault_util::stats::{self, Changepoint};
use std::collections::BTreeMap;
use std::path::Path;

/// How many consecutive runs must sit below a baseline before
/// [`analyze`] proposes rotating it (the `N` of the ISSUE's
/// propose-new-baseline policy).
pub const BASELINE_WINDOW: usize = 5;

/// How far below the baseline those runs must sit (relative margin), so
/// jitter alone never rotates a baseline.
pub const BASELINE_MARGIN: f64 = 0.05;

/// How far above the pre-shift regime the latest regime's median must
/// sit for [`SeriesReport::regression`] to gate — filters out CUSUM
/// detections whose regime has since recovered.
pub const REGRESSION_MARGIN: f64 = 0.05;

/// A bench series whose latest regime regressed: the verdict
/// [`check`] and the dashboard's regression table are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Epoch (series index) where the slow regime begins.
    pub epoch: usize,
    /// Run name of the first slow point.
    pub run: String,
    /// Relative elevation of the latest regime's median over the
    /// pre-shift regime's median.
    pub shift: f64,
}

/// One series' trend verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// What the series measures and under which configuration.
    pub key: SeriesKey,
    /// The observations, in epoch order.
    pub points: Vec<SeriesPoint>,
    /// MAD z-score per point (same length as `points`).
    pub scores: Vec<f64>,
    /// Every detected regime shift, in epoch order.
    pub changepoints: Vec<Changepoint>,
    /// The committed baseline value matching this series, if any.
    pub baseline: Option<f64>,
    /// Proposed replacement baseline (median of the recent window) when
    /// [`BASELINE_WINDOW`] consecutive runs sit below the baseline by
    /// more than [`BASELINE_MARGIN`].
    pub proposal: Option<f64>,
}

impl SeriesReport {
    /// The regression verdict: the last changepoint, if it shifted
    /// **upward** and the regime it opened is still elevated — the
    /// latest-regime median sits more than [`REGRESSION_MARGIN`] above
    /// the pre-shift median, so a regression that was since fixed does
    /// not gate. Only bench series gate CI; counter regimes shift
    /// legitimately when workloads change.
    pub fn regression(&self) -> Option<Regression> {
        if self.key.kind != SeriesKind::Bench {
            return None;
        }
        let cp = self.changepoints.last()?;
        if cp.direction <= 0 || cp.index == 0 || cp.index >= self.points.len() {
            return None;
        }
        let values: Vec<f64> = self.points.iter().map(|p| p.value).collect();
        let pre = stats::median(&values[..cp.index]);
        let post = stats::median(&values[cp.index..]);
        if post <= pre * (1.0 + REGRESSION_MARGIN) {
            return None;
        }
        Some(Regression {
            epoch: cp.index,
            run: self.points[cp.index].run.clone(),
            shift: if pre > 0.0 {
                post / pre - 1.0
            } else {
                f64::INFINITY
            },
        })
    }

    /// One-line description of the regression, naming series, epoch, and
    /// run — the string the CI gate greps for.
    pub fn regression_line(&self) -> Option<String> {
        self.regression().map(|r| {
            format!(
                "REGRESSION {} at epoch {} (run {}): {:+.1}% shift",
                self.key.label(),
                r.epoch,
                r.run,
                r.shift * 100.0
            )
        })
    }
}

/// Reads every committed baseline snapshot under `baselines_dir` into
/// `(bench name, config_hash, threads) -> median_ns`. Files that are not
/// current-schema snapshots are skipped (other artifact families own
/// them); a missing directory just means no baselines.
pub fn load_baselines(baselines_dir: &Path) -> BTreeMap<(String, u64, u64), f64> {
    let mut out = BTreeMap::new();
    let Ok(dir) = std::fs::read_dir(baselines_dir) else {
        return out;
    };
    let mut paths: Vec<_> = dir.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(doc) = Value::parse(&text) else {
            continue;
        };
        let Ok(entry) = history::entry_from_snapshot(&doc) else {
            continue;
        };
        for (name, median) in &entry.benches {
            out.insert((name.clone(), entry.config_hash, entry.threads), *median);
        }
    }
    out
}

/// Runs the full trend analysis over a ledger's entries.
pub fn analyze(
    entries: &[HistoryEntry],
    baselines: &BTreeMap<(String, u64, u64), f64>,
) -> Vec<SeriesReport> {
    let mut reports = Vec::new();
    for (key, points) in history::series(entries) {
        let values: Vec<f64> = points.iter().map(|p| p.value).collect();
        let scores = stats::mad_scores(&values);
        let changepoints = stats::cusum_changepoints(&values, stats::CUSUM_K, stats::CUSUM_H);
        let baseline = if key.kind == SeriesKind::Bench {
            baselines
                .get(&(key.name.clone(), key.config_hash, key.threads))
                .copied()
        } else {
            None
        };
        let proposal = baseline
            .and_then(|b| stats::propose_baseline(&values, b, BASELINE_WINDOW, BASELINE_MARGIN));
        reports.push(SeriesReport {
            key,
            points,
            scores,
            changepoints,
            baseline,
            proposal,
        });
    }
    reports
}

/// The CI verdict over a full analysis: one line per regressed bench
/// series; empty means the latest regime of every bench series is at or
/// below its trend.
pub fn check(reports: &[SeriesReport]) -> Vec<String> {
    reports
        .iter()
        .filter_map(SeriesReport::regression_line)
        .collect()
}

/// Appends `count` synthetic runs to the ledger at `ledger_path`,
/// cloning the last entry that carries bench `series_name` with that
/// bench median multiplied by `factor` — the injection harness behind
/// the CI history gate (factor 2.0 fakes a regression the changepoint
/// detector must catch; factor 1.0 extends the clean trend). Synthetic
/// runs are named `<run>-syn<K>` and stamped one millisecond apart after
/// the newest ledger entry, so every invariant still holds.
///
/// # Errors
///
/// Fails when the ledger cannot be loaded, no entry carries the series,
/// or the append fails.
pub fn extend_series(
    ledger_path: &Path,
    series_name: &str,
    factor: f64,
    count: usize,
) -> Result<usize, String> {
    let mut ledger = history::Ledger::load(ledger_path)?;
    let template = ledger
        .entries
        .iter()
        .rev()
        .find(|e| e.benches.iter().any(|(n, _)| n == series_name))
        .cloned()
        .ok_or_else(|| format!("no ledger entry carries bench {series_name}"))?;
    let base_clock = ledger
        .entries
        .iter()
        .map(|e| e.wall_clock_ms)
        .max()
        .unwrap_or(0);
    let existing = ledger.entries.len();
    let mut synthetic = Vec::new();
    for i in 0..count {
        let mut e = template.clone();
        e.run = format!("{}-syn{}", template.run, existing + i);
        e.wall_clock_ms = base_clock + 1 + i as u64;
        for (name, median) in &mut e.benches {
            if name == series_name {
                *median *= factor;
            }
        }
        synthetic.push(e.seal());
    }
    ledger.append(synthetic)
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Inline-SVG sparkline for one series: the value polyline plus one
/// marker circle per changepoint (red for upward/regression, green for
/// downward/improvement) and a dashed baseline rule when one exists.
/// Pure text geometry — identical input bytes yield identical SVG.
fn sparkline(report: &SeriesReport) -> String {
    const W: f64 = 560.0;
    const H: f64 = 72.0;
    const PAD: f64 = 8.0;
    let values: Vec<f64> = report.points.iter().map(|p| p.value).collect();
    if values.is_empty() {
        return String::new();
    }
    let mut lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if let Some(b) = report.baseline {
        lo = lo.min(b);
        hi = hi.max(b);
    }
    if hi - lo < 1e-12 {
        // Flat series: park the line mid-band instead of dividing by 0.
        lo -= 1.0;
        hi += 1.0;
    }
    let x = |i: usize| {
        if values.len() == 1 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (values.len() - 1) as f64
        }
    };
    let y = |v: f64| PAD + (H - 2.0 * PAD) * (1.0 - (v - lo) / (hi - lo));
    let mut svg = format!(r#"<svg width="{W}" height="{H}" viewBox="0 0 {W} {H}" role="img">"#);
    if let Some(b) = report.baseline {
        svg.push_str(&format!(
            r#"<line x1="{PAD}" y1="{0:.2}" x2="{1:.2}" y2="{0:.2}" class="baseline"/>"#,
            y(b),
            W - PAD
        ));
    }
    let path: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{:.2},{:.2}", x(i), y(*v)))
        .collect();
    svg.push_str(&format!(
        r#"<polyline points="{}" class="trend"/>"#,
        path.join(" ")
    ));
    for cp in &report.changepoints {
        if let Some(v) = values.get(cp.index) {
            let class = if cp.direction > 0 { "cp-up" } else { "cp-down" };
            svg.push_str(&format!(
                r#"<circle cx="{:.2}" cy="{:.2}" r="4" class="{class}"><title>epoch {}: {:+.1}%</title></circle>"#,
                x(cp.index),
                y(*v),
                cp.index,
                cp.shift * 100.0
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Renders the full dashboard. Self-contained (inline CSS/SVG, no
/// scripts, no external fetches) and deterministic: no timestamps, no
/// randomness — the bytes depend only on `reports` (and therefore only
/// on the ledger + baselines they came from).
pub fn render_html(reports: &[SeriesReport]) -> String {
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>perf-history observatory</title>\n<style>\n\
         body{font-family:ui-monospace,monospace;margin:2rem;background:#fafafa;color:#222}\n\
         h1,h2{border-bottom:1px solid #ccc;padding-bottom:.2rem}\n\
         table{border-collapse:collapse;margin:.5rem 0}\n\
         td,th{border:1px solid #ccc;padding:.2rem .6rem;text-align:right}\n\
         th{background:#eee}td.name,th.name{text-align:left}\n\
         .trend{fill:none;stroke:#369;stroke-width:1.5}\n\
         .baseline{stroke:#999;stroke-dasharray:4 3}\n\
         .cp-up{fill:#c22}.cp-down{fill:#2a2}\n\
         .series{margin:1.2rem 0;padding:.6rem;background:#fff;border:1px solid #ddd}\n\
         .regressed{border-color:#c22;background:#fff5f5}\n\
         .ok{color:#2a2}.bad{color:#c22}\n\
         </style></head><body>\n<h1>perf-history observatory</h1>\n",
    );
    let runs: usize = reports
        .iter()
        .map(|r| r.points.iter().map(|p| p.entry_index).max().unwrap_or(0))
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    html.push_str(&format!(
        "<p>{} series over {} ledger entries.</p>\n",
        reports.len(),
        runs
    ));

    // Regression table: the reason this page exists, so it goes first.
    html.push_str("<h2>Regressions</h2>\n");
    let regressions: Vec<&SeriesReport> = reports
        .iter()
        .filter(|r| r.regression().is_some())
        .collect();
    if regressions.is_empty() {
        html.push_str("<p class=\"ok\">none — every bench series' latest regime is at or below its trend.</p>\n");
    } else {
        html.push_str(
            "<table><tr><th class=\"name\">series</th><th>epoch</th><th>run</th>\
             <th>shift</th><th>latest</th></tr>\n",
        );
        for r in &regressions {
            let reg = r.regression().expect("filtered on regression");
            html.push_str(&format!(
                "<tr><td class=\"name\">{}</td><td>{}</td><td>{}</td>\
                 <td class=\"bad\">{:+.1}%</td><td>{:.1}</td></tr>\n",
                html_escape(&r.key.label()),
                reg.epoch,
                html_escape(&reg.run),
                reg.shift * 100.0,
                r.points.last().map(|p| p.value).unwrap_or(f64::NAN),
            ));
        }
        html.push_str("</table>\n");
    }

    // Baseline rotation proposals.
    let proposals: Vec<&SeriesReport> = reports.iter().filter(|r| r.proposal.is_some()).collect();
    if !proposals.is_empty() {
        html.push_str("<h2>Baseline rotation proposals</h2>\n<table><tr><th class=\"name\">series</th><th>baseline</th><th>proposed</th></tr>\n");
        for r in &proposals {
            html.push_str(&format!(
                "<tr><td class=\"name\">{}</td><td>{:.1}</td><td class=\"ok\">{:.1}</td></tr>\n",
                html_escape(&r.key.label()),
                r.baseline.expect("proposal implies baseline"),
                r.proposal.expect("filtered on proposal"),
            ));
        }
        html.push_str("</table>\n");
    }

    // Per-series sparklines with run lineage.
    html.push_str("<h2>Series</h2>\n");
    for r in reports {
        let class = if r.regression().is_some() {
            "series regressed"
        } else {
            "series"
        };
        html.push_str(&format!(
            "<div class=\"{class}\"><h3>{}</h3>\n{}\n",
            html_escape(&r.key.label()),
            sparkline(r)
        ));
        html.push_str(
            "<table><tr><th>epoch</th><th class=\"name\">run</th><th>value</th><th>MAD z</th></tr>\n",
        );
        // Lineage: newest runs are what the reader navigates to — show
        // the tail, full history lives in the sparkline.
        let tail = r.points.len().saturating_sub(8);
        for (p, z) in r.points.iter().zip(&r.scores).skip(tail) {
            html.push_str(&format!(
                "<tr><td>{}</td><td class=\"name\"><a href=\"../obs/{run}.json\">{run}</a></td>\
                 <td>{:.1}</td><td>{:.2}</td></tr>\n",
                p.epoch,
                p.value,
                z,
                run = html_escape(&p.run),
            ));
        }
        html.push_str("</table></div>\n");
    }
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: &str, clock: u64, median: f64) -> HistoryEntry {
        HistoryEntry {
            id: 0,
            run: run.to_string(),
            git_sha: "abc".into(),
            config_hash: 0x50c1_207f_8068_9ff5,
            threads: 1,
            wall_clock_ms: clock,
            benches: vec![("engine_hot.fig10_mix".into(), median)],
            counters: vec![("relsim.trials".into(), 4000)],
        }
        .seal()
    }

    fn trend(medians: &[f64]) -> Vec<HistoryEntry> {
        medians
            .iter()
            .enumerate()
            .map(|(i, m)| entry(&format!("run{i}"), i as u64 + 1, *m))
            .collect()
    }

    #[test]
    fn clean_trend_passes_and_regression_is_named() {
        let clean = analyze(&trend(&[50.0; 8]), &BTreeMap::new());
        assert!(check(&clean).is_empty(), "{:?}", check(&clean));

        let mut medians = vec![50.0; 8];
        medians.extend([100.0; 3]);
        let bad = analyze(&trend(&medians), &BTreeMap::new());
        let verdict = check(&bad);
        assert_eq!(verdict.len(), 1, "{verdict:?}");
        assert!(verdict[0].contains("engine_hot.fig10_mix"), "{verdict:?}");
        assert!(verdict[0].contains("epoch 8"), "{verdict:?}");

        // A regression that was since fixed does not fail the check.
        medians.extend([50.0; 6]);
        let recovered = analyze(&trend(&medians), &BTreeMap::new());
        assert!(check(&recovered).is_empty(), "{:?}", check(&recovered));
    }

    #[test]
    fn counter_shifts_never_gate() {
        let mut entries = trend(&[50.0; 8]);
        for e in &mut entries {
            e.counters = vec![("relsim.trials".into(), 4000)];
        }
        // Counter doubles mid-series — visible, but not a CI failure.
        let n = entries.len();
        for e in entries.iter_mut().skip(n - 3) {
            e.counters = vec![("relsim.trials".into(), 8000)];
        }
        let entries: Vec<HistoryEntry> = entries.into_iter().map(HistoryEntry::seal).collect();
        let reports = analyze(&entries, &BTreeMap::new());
        let counter = reports
            .iter()
            .find(|r| r.key.kind == SeriesKind::Counter)
            .expect("counter series present");
        assert!(!counter.changepoints.is_empty(), "shift should be detected");
        assert!(check(&reports).is_empty(), "but must not gate CI");
    }

    #[test]
    fn baseline_matching_requires_config_and_threads() {
        let mut baselines = BTreeMap::new();
        baselines.insert(
            (
                "engine_hot.fig10_mix".to_string(),
                0x50c1_207f_8068_9ff5_u64,
                1_u64,
            ),
            60.0,
        );
        baselines.insert(("engine_hot.fig10_mix".to_string(), 999_u64, 1_u64), 10.0);
        let reports = analyze(&trend(&[50.0; 6]), &baselines);
        let bench = reports
            .iter()
            .find(|r| r.key.kind == SeriesKind::Bench)
            .expect("bench series");
        assert_eq!(bench.baseline, Some(60.0), "must match on config hash");
        // 6 consecutive runs at 50 sit >5% below baseline 60: rotation.
        assert_eq!(bench.proposal, Some(50.0));
    }

    #[test]
    fn html_is_deterministic_and_marks_changepoints() {
        let mut medians = vec![50.0; 8];
        medians.extend([100.0; 3]);
        let mut baselines = BTreeMap::new();
        baselines.insert(
            (
                "engine_hot.fig10_mix".to_string(),
                0x50c1_207f_8068_9ff5_u64,
                1_u64,
            ),
            55.0,
        );
        let reports = analyze(&trend(&medians), &baselines);
        let html = render_html(&reports);
        assert_eq!(html, render_html(&analyze(&trend(&medians), &baselines)));
        assert!(html.contains("cp-up"), "changepoint marker missing");
        assert!(html.contains("class=\"baseline\""), "baseline rule missing");
        assert!(html.contains("REGRESSION") || html.contains("Regressions"));
        assert!(html.contains("../obs/run10.json"), "lineage link missing");
        assert!(
            !html.to_lowercase().contains("<script"),
            "must be script-free"
        );
    }

    #[test]
    fn extend_series_injects_and_stays_valid() {
        let dir = std::env::temp_dir().join(format!("rf_report_extend_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("ledger.jsonl");
        let mut ledger = history::Ledger::load(&path).expect("empty");
        ledger.append(trend(&[50.0, 50.0])).expect("seed");

        let added = extend_series(&path, "engine_hot.fig10_mix", 2.0, 3).expect("extend");
        assert_eq!(added, 3);
        let ledger = history::Ledger::load(&path).expect("reload");
        assert_eq!(ledger.entries.len(), 5);
        history::check_invariants(&ledger).expect("synthetic entries keep invariants");
        let last = ledger.entries.last().expect("non-empty");
        assert_eq!(last.benches[0].1, 100.0);
        assert!(last.run.starts_with("run1-syn"), "{}", last.run);

        assert!(extend_series(&path, "no.such.series", 2.0, 1).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
