//! Cross-run snapshot diffing: the engine behind the `obs_diff` binary.
//!
//! Loads two `results/obs/<run>.json` snapshots, aligns their counters,
//! gauges, histograms, and bench medians by name, and classifies every
//! delta:
//!
//! * **counters / gauges** — the simulators are deterministic in their
//!   seed, so any difference at equal config is drift and classifies as
//!   regressed (this is the CI determinism gate's signal);
//! * **`*_ns` histograms** (span timings) — counts must match exactly
//!   (they are deterministic), but durations jitter, so the mean (exact
//!   `sum/count`, not the bucket-quantized p50) is compared against a
//!   relative threshold;
//! * **benches** — each side carries its raw per-batch samples, so the
//!   comparison is statistical: medians whose distribution-free ~95%
//!   confidence intervals ([`median_ci`]) overlap are indistinguishable;
//!   disjoint intervals classify by direction once the relative change
//!   clears the threshold;
//! * metrics present on only one side are **added**/**removed** — worth
//!   reporting, never a failure.
//!
//! Only `regressed` deltas fail a run. Manifest disagreements that make
//! the comparison suspect (different config hash, seeds, profile) are
//! surfaced as warnings, not failures: comparing across configs is
//! sometimes exactly what you want.

use relaxfault_util::json::Value;
use relaxfault_util::obs;
use relaxfault_util::stats::median_ci;
use relaxfault_util::table::Table;
use std::collections::BTreeMap;

/// How one metric moved between two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Statistically indistinguishable (or exactly equal).
    Unchanged,
    /// Better in the current run (faster timing).
    Improved,
    /// Worse in the current run, or deterministic drift.
    Regressed,
    /// Only in the current run.
    Added,
    /// Only in the baseline run.
    Removed,
}

impl Class {
    /// Short lower-case label used in tables and verdict JSON.
    pub fn label(self) -> &'static str {
        match self {
            Class::Unchanged => "unchanged",
            Class::Improved => "improved",
            Class::Regressed => "regressed",
            Class::Added => "added",
            Class::Removed => "removed",
        }
    }
}

/// One aligned metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Section the metric came from: `counter`, `gauge`, `histogram`, or
    /// `bench`.
    pub kind: &'static str,
    /// The verdict.
    pub class: Class,
    /// Rendered baseline value.
    pub baseline: String,
    /// Rendered current value.
    pub current: String,
    /// Human explanation of the verdict.
    pub detail: String,
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone)]
pub struct Report {
    /// Baseline run name (from its manifest).
    pub baseline_run: String,
    /// Current run name (from its manifest).
    pub current_run: String,
    /// Every aligned metric, sorted by (kind, name).
    pub deltas: Vec<Delta>,
    /// Manifest disagreements that make the comparison suspect.
    pub warnings: Vec<String>,
}

impl Report {
    /// Number of regressed deltas — the failure signal.
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.class == Class::Regressed)
            .count()
    }

    /// Renders the changed deltas (everything except `unchanged`) as a
    /// fixed-width table, plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        let changed: Vec<&Delta> = self
            .deltas
            .iter()
            .filter(|d| d.class != Class::Unchanged)
            .collect();
        if !changed.is_empty() {
            let mut t = Table::new(&["metric", "kind", "verdict", "baseline", "current", "detail"]);
            for d in &changed {
                t.row(&[
                    d.name.clone(),
                    d.kind.to_string(),
                    d.class.label().to_string(),
                    d.baseline.clone(),
                    d.current.clone(),
                    d.detail.clone(),
                ]);
            }
            out.push_str(&t.render());
        }
        let unchanged = self.deltas.len() - changed.len();
        out.push_str(&format!(
            "{} vs {}: {} regressed, {} improved, {} unchanged, {} added/removed\n",
            self.baseline_run,
            self.current_run,
            self.regressions(),
            self.count(Class::Improved),
            unchanged,
            self.count(Class::Added) + self.count(Class::Removed),
        ));
        out
    }

    fn count(&self, class: Class) -> usize {
        self.deltas.iter().filter(|d| d.class == class).count()
    }

    /// Machine-readable verdict document, written beside CI logs.
    pub fn verdict_json(&self, timing_threshold: f64) -> Value {
        let deltas = self
            .deltas
            .iter()
            .filter(|d| d.class != Class::Unchanged)
            .map(|d| {
                Value::object([
                    ("name", Value::from(d.name.as_str())),
                    ("kind", Value::from(d.kind)),
                    ("class", Value::from(d.class.label())),
                    ("baseline", Value::from(d.baseline.as_str())),
                    ("current", Value::from(d.current.as_str())),
                    ("detail", Value::from(d.detail.as_str())),
                ])
            })
            .collect();
        Value::object([
            ("schema_version", Value::from(obs::SCHEMA_VERSION)),
            ("baseline_run", Value::from(self.baseline_run.as_str())),
            ("current_run", Value::from(self.current_run.as_str())),
            ("timing_threshold", Value::from(timing_threshold)),
            ("regressed", Value::from(self.regressions() as u64)),
            ("improved", Value::from(self.count(Class::Improved) as u64)),
            (
                "unchanged",
                Value::from(self.count(Class::Unchanged) as u64),
            ),
            ("added", Value::from(self.count(Class::Added) as u64)),
            ("removed", Value::from(self.count(Class::Removed) as u64)),
            ("deltas", Value::Array(deltas)),
            (
                "warnings",
                Value::Array(
                    self.warnings
                        .iter()
                        .map(|w| Value::from(w.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Collects one snapshot section (`counters`, `histograms`, …) as an
/// ordered name → value map; missing or non-object sections are empty.
fn section<'a>(doc: &'a Value, key: &str) -> BTreeMap<&'a str, &'a Value> {
    match doc.get(key) {
        Some(Value::Object(pairs)) => pairs.iter().map(|(k, v)| (k.as_str(), v)).collect(),
        _ => BTreeMap::new(),
    }
}

fn manifest_str<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get("manifest")
        .and_then(|m| m.get(key))
        .and_then(Value::as_str)
        .unwrap_or("")
}

/// Walks both sides of an aligned section, producing `Added`/`Removed`
/// deltas for one-sided names and delegating matched pairs to `compare`.
fn align(
    kind: &'static str,
    base: &BTreeMap<&str, &Value>,
    cur: &BTreeMap<&str, &Value>,
    deltas: &mut Vec<Delta>,
    mut compare: impl FnMut(&str, &Value, &Value) -> Delta,
) {
    for (&name, &bv) in base {
        match cur.get(name) {
            Some(&cv) => deltas.push(compare(name, bv, cv)),
            None => deltas.push(Delta {
                name: name.to_string(),
                kind,
                class: Class::Removed,
                baseline: render_value(bv),
                current: "-".into(),
                detail: "only in baseline".into(),
            }),
        }
    }
    for (&name, &cv) in cur {
        if !base.contains_key(name) {
            deltas.push(Delta {
                name: name.to_string(),
                kind,
                class: Class::Added,
                baseline: "-".into(),
                current: render_value(cv),
                detail: "only in current".into(),
            });
        }
    }
}

fn render_value(v: &Value) -> String {
    match v.as_f64() {
        Some(n) => format_num(n),
        None => v
            .get("count")
            .and_then(Value::as_f64)
            .map(|c| format!("n={c}"))
            .unwrap_or_else(|| "?".into()),
    }
}

fn format_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.2}")
    }
}

fn rel_change(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cur - base) / base
    }
}

/// Exact comparison for deterministic scalars (counters, gauges): any
/// difference is drift, classified as regressed.
fn compare_exact(kind: &'static str) -> impl FnMut(&str, &Value, &Value) -> Delta {
    move |name, bv, cv| {
        let (b, c) = (bv.as_f64(), cv.as_f64());
        let class = if b == c {
            Class::Unchanged
        } else {
            Class::Regressed
        };
        Delta {
            name: name.to_string(),
            kind,
            class,
            baseline: render_value(bv),
            current: render_value(cv),
            detail: if class == Class::Regressed {
                format!("deterministic {kind} drifted")
            } else {
                String::new()
            },
        }
    }
}

/// Compares one histogram. Timing histograms (`*_ns`) get exact count
/// checks plus a thresholded mean comparison; everything else is exact.
fn compare_histogram(name: &str, bv: &Value, cv: &Value, threshold: f64) -> Delta {
    let num = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let (b_count, c_count) = (num(bv, "count"), num(cv, "count"));
    let is_timing = name.ends_with("_ns");
    let mut delta = Delta {
        name: name.to_string(),
        kind: "histogram",
        class: Class::Unchanged,
        baseline: String::new(),
        current: String::new(),
        detail: String::new(),
    };
    if b_count != c_count {
        delta.class = Class::Regressed;
        delta.baseline = format!("n={}", format_num(b_count));
        delta.current = format!("n={}", format_num(c_count));
        delta.detail = "recorded count drifted".into();
        return delta;
    }
    if is_timing {
        // Durations jitter; compare the exact mean against the threshold.
        let b_mean = num(bv, "mean");
        let c_mean = num(cv, "mean");
        let change = rel_change(b_mean, c_mean);
        delta.baseline = format!("{}ns", format_num(b_mean));
        delta.current = format!("{}ns", format_num(c_mean));
        if change.abs() > threshold {
            delta.class = if change > 0.0 {
                Class::Regressed
            } else {
                Class::Improved
            };
            delta.detail = format!(
                "mean {:+.1}% (threshold {:.0}%)",
                change * 100.0,
                threshold * 100.0
            );
        }
    } else {
        let (b_sum, c_sum) = (num(bv, "sum"), num(cv, "sum"));
        delta.baseline = format!("sum={}", format_num(b_sum));
        delta.current = format!("sum={}", format_num(c_sum));
        if b_sum != c_sum {
            delta.class = Class::Regressed;
            delta.detail = "deterministic histogram sum drifted".into();
        }
    }
    delta
}

/// Compares one bench: medians whose ~95% CIs overlap are unchanged;
/// disjoint intervals classify by direction once the relative change
/// clears the threshold.
fn compare_bench(name: &str, bv: &Value, cv: &Value, threshold: f64) -> Delta {
    let batches = |v: &Value| -> Vec<f64> {
        v.get("batch_ns")
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(Value::as_f64).collect())
            .unwrap_or_default()
    };
    let median = |v: &Value| v.get("median_ns").and_then(Value::as_f64).unwrap_or(0.0);
    let (b_med, c_med) = (median(bv), median(cv));
    let (b_batch, c_batch) = (batches(bv), batches(cv));
    let mut delta = Delta {
        name: name.to_string(),
        kind: "bench",
        class: Class::Unchanged,
        baseline: format!("{}ns", format_num(b_med)),
        current: format!("{}ns", format_num(c_med)),
        detail: String::new(),
    };
    if b_batch.is_empty() || c_batch.is_empty() {
        delta.detail = "no batch samples; medians not compared".into();
        return delta;
    }
    if b_batch.iter().chain(&c_batch).any(|x| !x.is_finite()) {
        // A NaN/inf sample marks a corrupt snapshot; report it instead of
        // letting the CI math panic on an unordered comparison.
        delta.detail = "non-finite batch samples; medians not compared".into();
        return delta;
    }
    let (b_lo, b_hi) = median_ci(&b_batch);
    let (c_lo, c_hi) = median_ci(&c_batch);
    let disjoint = b_hi < c_lo || c_hi < b_lo;
    let change = rel_change(b_med, c_med);
    if disjoint && change.abs() > threshold {
        delta.class = if change > 0.0 {
            Class::Regressed
        } else {
            Class::Improved
        };
        delta.detail = format!(
            "median {:+.1}%, CIs disjoint ([{:.0}, {:.0}] vs [{:.0}, {:.0}])",
            change * 100.0,
            b_lo,
            b_hi,
            c_lo,
            c_hi
        );
    }
    delta
}

/// Diffs two parsed snapshots. `timing_threshold` is the relative change
/// (e.g. `0.2` = 20%) below which timing deltas are noise.
///
/// # Errors
///
/// Returns a message when the documents are not comparable snapshots
/// (missing sections, mismatched `schema_version`).
pub fn diff_snapshots(
    baseline: &Value,
    current: &Value,
    timing_threshold: f64,
) -> Result<Report, String> {
    let version = |doc: &Value, side: &str| {
        doc.get("schema_version")
            .and_then(Value::as_f64)
            .ok_or(format!("{side} snapshot has no schema_version"))
    };
    let bv = version(baseline, "baseline")?;
    let cv = version(current, "current")?;
    if bv != cv {
        return Err(format!(
            "schema_version mismatch: baseline v{bv} vs current v{cv}"
        ));
    }
    for (doc, side) in [(baseline, "baseline"), (current, "current")] {
        if !matches!(doc.get("counters"), Some(Value::Object(_))) {
            return Err(format!("{side} snapshot has no counters section"));
        }
    }

    let mut warnings = Vec::new();
    for key in ["profile", "lanes", "config_hash"] {
        let (b, c) = (manifest_str(baseline, key), manifest_str(current, key));
        if b != c {
            warnings.push(format!("manifest {key} differs: {b:?} vs {c:?}"));
        }
    }
    for key in ["seeds", "threads"] {
        let get = |doc: &Value| {
            doc.get("manifest")
                .and_then(|m| m.get(key))
                .map(|v| v.to_pretty())
        };
        let (b, c) = (get(baseline), get(current));
        if b != c {
            warnings.push(format!(
                "manifest {key} differs: {} vs {}",
                b.unwrap_or_else(|| "absent".into()),
                c.unwrap_or_else(|| "absent".into()),
            ));
        }
    }

    let mut deltas = Vec::new();
    align(
        "counter",
        &section(baseline, "counters"),
        &section(current, "counters"),
        &mut deltas,
        compare_exact("counter"),
    );
    align(
        "gauge",
        &section(baseline, "gauges"),
        &section(current, "gauges"),
        &mut deltas,
        compare_exact("gauge"),
    );
    align(
        "histogram",
        &section(baseline, "histograms"),
        &section(current, "histograms"),
        &mut deltas,
        |name, b, c| compare_histogram(name, b, c, timing_threshold),
    );
    align(
        "bench",
        &section(baseline, "benches"),
        &section(current, "benches"),
        &mut deltas,
        |name, b, c| compare_bench(name, b, c, timing_threshold),
    );

    Ok(Report {
        baseline_run: manifest_str(baseline, "run").to_string(),
        current_run: manifest_str(current, "run").to_string(),
        deltas,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Value {
        Value::parse(
            r#"{
              "schema_version": 2,
              "manifest": {"run": "a", "git_sha": "abc", "profile": "release",
                           "threads": 4, "seeds": [2016], "config_hash": "00000000deadbeef",
                           "sim_runs": 1, "wall_clock_ms": 1000},
              "counters": {"relsim.trial_evals": 800, "relsim.repairs": 123},
              "gauges": {"perfsim.llc.locked_lines": 64},
              "histograms": {
                "relsim.trial_ns": {"count": 200, "sum": 200000, "mean": 1000.0,
                                     "p50": 959, "p95": 1983, "p99": 1983, "max": 2100},
                "core.plan_sets": {"count": 50, "sum": 4100, "mean": 82.0,
                                    "p50": 79, "p95": 95, "p99": 95, "max": 101}
              },
              "benches": {
                "node_eval": {"median_ns": 100.0, "iters": 1000,
                               "batch_ns": [98.0, 99.0, 100.0, 100.5, 101.0, 101.5, 102.0]}
              },
              "dropped_events": 0
            }"#,
        )
        .expect("fixture parses")
    }

    /// Replaces the number at `section.name.key` (or `section.name` for
    /// scalars) in a fixture.
    fn perturb(doc: &Value, path: &[&str], new: Value) -> Value {
        fn walk(v: &Value, path: &[&str], new: &Value) -> Value {
            match v {
                Value::Object(pairs) => Value::Object(
                    pairs
                        .iter()
                        .map(|(k, val)| {
                            if k == path[0] {
                                if path.len() == 1 {
                                    (k.clone(), new.clone())
                                } else {
                                    (k.clone(), walk(val, &path[1..], new))
                                }
                            } else {
                                (k.clone(), val.clone())
                            }
                        })
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        walk(doc, path, &new)
    }

    #[test]
    fn identical_snapshots_have_zero_regressions() {
        let a = fixture();
        let r = diff_snapshots(&a, &a, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        assert!(r.warnings.is_empty());
        assert!(r.deltas.iter().all(|d| d.class == Class::Unchanged));
        assert!(r.render().contains("0 regressed"));
    }

    #[test]
    fn perturbed_counter_is_flagged_as_regression() {
        let a = fixture();
        let b = perturb(&a, &["counters", "relsim.repairs"], Value::from(124u64));
        let r = diff_snapshots(&a, &b, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 1);
        let d = r
            .deltas
            .iter()
            .find(|d| d.class == Class::Regressed)
            .expect("one regression");
        assert_eq!(d.name, "relsim.repairs");
        assert_eq!(d.kind, "counter");
        assert!(r.render().contains("relsim.repairs"));
        let verdict = r.verdict_json(0.2);
        assert_eq!(verdict.get("regressed").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn timing_mean_within_threshold_is_noise_beyond_is_regression() {
        let a = fixture();
        // +10% mean at 20% threshold: unchanged.
        let mild = perturb(
            &a,
            &["histograms", "relsim.trial_ns", "mean"],
            Value::from(1100.0),
        );
        let r = diff_snapshots(&a, &mild, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        // +50%: regression; -50%: improvement.
        let slow = perturb(
            &a,
            &["histograms", "relsim.trial_ns", "mean"],
            Value::from(1500.0),
        );
        let r = diff_snapshots(&a, &slow, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 1);
        let fast = perturb(
            &a,
            &["histograms", "relsim.trial_ns", "mean"],
            Value::from(500.0),
        );
        let r = diff_snapshots(&a, &fast, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        assert!(r.deltas.iter().any(|d| d.class == Class::Improved));
    }

    #[test]
    fn non_timing_histogram_is_exact() {
        let a = fixture();
        let b = perturb(
            &a,
            &["histograms", "core.plan_sets", "sum"],
            Value::from(4200u64),
        );
        let r = diff_snapshots(&a, &b, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 1);
        assert!(r
            .deltas
            .iter()
            .any(|d| d.name == "core.plan_sets" && d.class == Class::Regressed));
    }

    #[test]
    fn histogram_count_drift_is_regression_even_for_timings() {
        let a = fixture();
        let b = perturb(
            &a,
            &["histograms", "relsim.trial_ns", "count"],
            Value::from(201u64),
        );
        let r = diff_snapshots(&a, &b, 10.0).expect("diff runs");
        assert_eq!(r.regressions(), 1);
    }

    #[test]
    fn bench_overlapping_cis_are_unchanged_disjoint_regress() {
        let a = fixture();
        // Slightly shifted batches: CIs overlap, no verdict.
        let near = perturb(
            &a,
            &["benches", "node_eval", "batch_ns"],
            Value::Array(
                [98.5, 99.5, 100.2, 100.8, 101.2, 101.8, 102.5]
                    .iter()
                    .map(|&x| Value::from(x))
                    .collect(),
            ),
        );
        let r = diff_snapshots(&a, &near, 0.1).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        // Far slower batches: disjoint CIs and a big relative change.
        let slow = perturb(
            &perturb(
                &a,
                &["benches", "node_eval", "batch_ns"],
                Value::Array(
                    [198.0, 199.0, 200.0, 200.5, 201.0, 201.5, 202.0]
                        .iter()
                        .map(|&x| Value::from(x))
                        .collect(),
                ),
            ),
            &["benches", "node_eval", "median_ns"],
            Value::from(200.5),
        );
        let r = diff_snapshots(&a, &slow, 0.1).expect("diff runs");
        assert_eq!(r.regressions(), 1);
        let d = &r.deltas.iter().find(|d| d.kind == "bench").unwrap();
        assert_eq!(d.class, Class::Regressed);
        assert!(d.detail.contains("CIs disjoint"));
    }

    #[test]
    fn added_and_removed_metrics_do_not_fail() {
        let a = fixture();
        let b = perturb(&a, &["counters"], {
            Value::object([("relsim.trial_evals", Value::from(800u64))])
        });
        // `relsim.repairs` exists only in baseline now.
        let r = diff_snapshots(&a, &b, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        assert!(r
            .deltas
            .iter()
            .any(|d| d.name == "relsim.repairs" && d.class == Class::Removed));
        let r = diff_snapshots(&b, &a, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        assert!(r
            .deltas
            .iter()
            .any(|d| d.name == "relsim.repairs" && d.class == Class::Added));
    }

    #[test]
    fn mismatched_schema_versions_are_an_error() {
        let a = fixture();
        let b = perturb(&a, &["schema_version"], Value::from(1u64));
        let err = diff_snapshots(&a, &b, 0.2).unwrap_err();
        assert!(err.contains("schema_version"));
    }

    #[test]
    fn differing_manifests_warn_but_do_not_fail() {
        let a = fixture();
        let b = perturb(
            &a,
            &["manifest", "config_hash"],
            Value::from("00000000cafebabe"),
        );
        let r = diff_snapshots(&a, &b, 0.2).expect("diff runs");
        assert_eq!(r.regressions(), 0);
        assert!(r.warnings.iter().any(|w| w.contains("config_hash")));
    }
}
