//! Command-line driver for the correctness subsystem.
//!
//! ```text
//! relcheck smoke [--cases N]     run every oracle property (default 50 cases)
//! relcheck replay <file.json>    re-execute a persisted repro case,
//!                                fleet checkpoint, or crash dump
//!                                (dispatched by `kind`)
//! relcheck ledger <ledger.jsonl> strict-parse a perf-history ledger and
//!                                enforce its structural invariants
//!                                (unique verified ids, valid run names,
//!                                finite medians, per-lineage series
//!                                monotonicity)
//! relcheck lane-matrix [--trials N] [--seed S] [--out PATH]
//!                                run the bit-slicing equivalence gate:
//!                                one pinned scenario mix across every
//!                                (lane mode, thread count) cell, all
//!                                digests required identical; the verdict
//!                                JSON goes to --out (or stdout)
//! ```
//!
//! Exit codes: 0 success / reproduced, 1 usage or replay error,
//! 2 replay did not reproduce the recorded failure, 3 an oracle property,
//! ledger invariant, or lane-matrix cell failed (the repro path /
//! offending entry / diverging digest is printed).

use relaxfault_relcheck::replay::{
    load_any, replay, replay_crash_dump, replay_fleet, LoadedCase, ReplayReport,
};
use relaxfault_relcheck::{run_lane_matrix, run_smoke};
use relaxfault_util::{history, obs};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: relcheck smoke [--cases N] | relcheck replay <case.json> \
         | relcheck ledger <ledger.jsonl> \
         | relcheck lane-matrix [--trials N] [--seed S] [--out PATH]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("smoke") => {
            let mut cases: u32 = 50;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => cases = n,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            match run_smoke(cases) {
                Ok(()) => {
                    println!("relcheck smoke: all oracle properties held ({cases} cases each)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("relcheck smoke: {e}");
                    ExitCode::from(3)
                }
            }
        }
        Some("replay") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            // A replay is a debugging session: force tracing on so the
            // re-executed trial narrates what it does.
            if std::env::var("RF_TRACE").is_err() {
                obs::set_filter("debug").expect("'debug' is a valid filter spec");
            }
            let loaded = match load_any(Path::new(path)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("relcheck replay: {e}");
                    return ExitCode::from(1);
                }
            };
            let result = match &loaded {
                LoadedCase::Repro(case) => {
                    println!(
                        "replaying {} (seed {:#x}, trial {}, group {}): {}",
                        case.case, case.seed, case.trial, case.group, case.reason
                    );
                    replay(case)
                }
                LoadedCase::Fleet(ckpt) => {
                    println!(
                        "replaying fleet checkpoint (seed {:#x}, {} nodes, {} shards, \
                         epoch {}/{})",
                        ckpt.seed, ckpt.nodes, ckpt.shards, ckpt.completed_epochs, ckpt.epochs
                    );
                    replay_fleet(ckpt)
                }
                LoadedCase::Crash(dump) => {
                    println!(
                        "replaying crash dump of run {:?} ({}) via its embedded checkpoint",
                        dump.run, dump.reason
                    );
                    replay_crash_dump(dump)
                }
            };
            match result {
                Ok(report) => report_verdict(&report),
                Err(e) => {
                    eprintln!("relcheck replay: {e}");
                    ExitCode::from(1)
                }
            }
        }
        Some("ledger") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let ledger = match history::Ledger::load(Path::new(path)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("relcheck ledger: {e}");
                    return ExitCode::from(1);
                }
            };
            match history::check_invariants(&ledger) {
                Ok(()) => {
                    println!(
                        "relcheck ledger: {} entries, {} series, all invariants held",
                        ledger.entries.len(),
                        history::series(&ledger.entries).len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("relcheck ledger: invariant violated: {e}");
                    ExitCode::from(3)
                }
            }
        }
        Some("lane-matrix") => {
            let mut trials: u64 = 4000;
            let mut seed: u64 = 0x1A7E;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--trials" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => trials = n,
                        None => return usage(),
                    },
                    "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(s) => seed = s,
                        None => return usage(),
                    },
                    "--out" => match it.next() {
                        Some(p) => out = Some(p.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let verdict = run_lane_matrix(trials, seed);
            let json = verdict.to_json().to_pretty();
            if let Some(path) = out {
                let path = Path::new(&path);
                if let Some(dir) = path.parent() {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("relcheck lane-matrix: creating {}: {e}", dir.display());
                        return ExitCode::from(1);
                    }
                }
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("relcheck lane-matrix: writing {}: {e}", path.display());
                    return ExitCode::from(1);
                }
                println!(
                    "relcheck lane-matrix: verdict written to {}",
                    path.display()
                );
            } else {
                println!("{json}");
            }
            for c in &verdict.cells {
                println!(
                    "  {:>6} x {} thread(s): {:016x}",
                    c.lanes.label(),
                    c.threads,
                    c.digest
                );
            }
            if verdict.pass {
                println!(
                    "relcheck lane-matrix: {} cells bit-identical over {} trials",
                    verdict.cells.len(),
                    trials
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("relcheck lane-matrix: lane modes DIVERGED (see digests above)");
                ExitCode::from(3)
            }
        }
        _ => usage(),
    }
}

fn report_verdict(report: &ReplayReport) -> ExitCode {
    for (label, out) in &report.outcomes {
        println!("  arm {label}: {out:?}");
    }
    for f in &report.failures {
        println!("  failure: {f}");
    }
    if report.reproduced {
        println!("reproduced: yes");
        ExitCode::SUCCESS
    } else {
        println!("reproduced: NO (recorded failure did not recur)");
        ExitCode::from(2)
    }
}
