//! Corner-biased generators for scenarios and fault mixes.
//!
//! Uniform random extents almost never produce the fault shapes that
//! stress the repair planners: field studies of DDR4 DRAM report that a
//! large share of multi-cell faults are single-device multi-row clusters,
//! pin/column faults, and whole-bank failures. These generators use
//! [`Source::weighted`] to spend most of their probability mass on exactly
//! those corners while still covering the simple shapes, so a thousand
//! generated cases reach states a million uniform ones would miss.

use relaxfault_dram::{DramConfig, RankId};
use relaxfault_faults::{BankSet, Extent, FaultRegion};
use relaxfault_util::prop::Source;

/// A fault extent biased toward planner corner regions: multi-row
/// clusters, subarray column (pin) faults, and whole-bank faults dominate;
/// single-cell shapes keep a small share for contrast.
pub fn arb_corner_extent(src: &mut Source, cfg: &DramConfig) -> Extent {
    let bank = src.u32(0, cfg.banks - 1);
    match src.weighted(&[2, 1, 2, 4, 5, 2]) {
        0 => Extent::Bit {
            bank,
            row: src.u32(0, cfg.rows - 1),
            col: src.u32(0, cfg.cols - 1),
        },
        1 => Extent::Word {
            bank,
            row: src.u32(0, cfg.rows - 1),
            col: src.u32(0, cfg.cols - 1),
        },
        2 => Extent::Row {
            bank,
            row: src.u32(0, cfg.rows - 1),
        },
        3 => {
            // Pin/column fault: one column address through 1..=4 whole
            // subarrays, aligned the way the sense-amp stripes fail.
            let spans = cfg.rows / cfg.subarray_rows;
            let count = src.weighted(&[6, 2, 1]) as u32 + 1; // 1, 2, or 3
            let count = count.min(spans);
            let start = src.u32(0, spans - count);
            Extent::Column {
                bank,
                col: src.u32(0, cfg.cols - 1),
                row_start: start * cfg.subarray_rows,
                row_count: count * cfg.subarray_rows,
            }
        }
        4 => {
            // Single-device multi-row cluster: mostly tight (2..=32 rows),
            // occasionally subarray-scale.
            let rows = match src.weighted(&[5, 3, 1]) {
                0 => src.u32(2, 32),
                1 => src.u32(33, 256),
                _ => src.u32(257, 2048),
            };
            Extent::RowCluster {
                bank,
                row_start: src.u32(0, cfg.rows - rows),
                row_count: rows,
            }
        }
        _ => {
            // Whole-bank up to whole-device.
            let banks = match src.weighted(&[4, 2, 1]) {
                0 => BankSet::one(bank),
                1 => {
                    let other = src.u32(0, cfg.banks - 1);
                    BankSet(BankSet::one(bank).0 | BankSet::one(other).0)
                }
                _ => BankSet::all(cfg.banks),
            };
            Extent::Banks { banks }
        }
    }
}

/// A region on a random existing (rank, device), with a corner-biased
/// extent.
pub fn arb_corner_region(src: &mut Source, cfg: &DramConfig) -> FaultRegion {
    FaultRegion {
        rank: RankId {
            channel: src.u32(0, cfg.channels - 1),
            dimm: src.u32(0, cfg.dimms_per_channel - 1),
            rank: src.u32(0, cfg.ranks_per_dimm - 1),
        },
        device: src.u32(0, cfg.devices_per_rank() - 1),
        extent: arb_corner_extent(src, cfg),
    }
}

/// A sequence of fault offers (each one fault = one or two regions, as
/// multi-rank faults produce) to drive a planner through, shrinking toward
/// fewer and simpler offers.
pub fn arb_offer_sequence(src: &mut Source, cfg: &DramConfig) -> Vec<Vec<FaultRegion>> {
    src.vec(1, 6, |s| {
        let first = arb_corner_region(s, cfg);
        if s.weighted(&[5, 1]) == 1 {
            // A sibling region on another rank of the same coordinates,
            // like a multi-rank DIMM fault.
            let mut sibling = first;
            sibling.rank.rank = (sibling.rank.rank + 1) % cfg.ranks_per_dimm.max(1);
            if sibling.rank != first.rank {
                return vec![first, sibling];
            }
        }
        vec![first]
    })
}

/// A per-set way limit, biased low (tight budgets exercise rejection and
/// rollback far more often than the full 16-way budget).
pub fn arb_max_ways(src: &mut Source) -> u32 {
    [1, 2, 4, 16][src.weighted(&[5, 3, 2, 1])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_regions_stay_in_geometry() {
        let cfg = DramConfig::isca16_reliability();
        relaxfault_util::prop::check(300, |src| {
            for offer in arb_offer_sequence(src, &cfg) {
                for r in &offer {
                    if let Err(e) = r.check_geometry(&cfg) {
                        relaxfault_util::prop_assert!(false, "out of geometry: {e}");
                    }
                }
            }
            Ok(())
        });
    }

    #[test]
    fn generator_reaches_every_corner_shape() {
        let cfg = DramConfig::isca16_reliability();
        let mut seen = [false; 6];
        relaxfault_util::prop::check(400, |src| {
            match arb_corner_extent(src, &cfg) {
                Extent::Bit { .. } => seen[0] = true,
                Extent::Word { .. } => seen[1] = true,
                Extent::Row { .. } => seen[2] = true,
                Extent::Column { .. } => seen[3] = true,
                Extent::RowCluster { .. } => seen[4] = true,
                Extent::Banks { .. } => seen[5] = true,
            }
            Ok(())
        });
        assert!(seen.iter().all(|&s| s), "missing shapes: {seen:?}");
    }
}
