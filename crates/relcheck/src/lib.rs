//! Correctness subsystem for the RelaxFault reproduction: differential
//! oracles, invariant checks, and deterministic failing-trial replay.
//!
//! The production planners and Monte Carlo engine are heavily optimised —
//! XOR-delta candidate enumeration, one-pass rollback occupancy, scratch
//! reuse, zero-fault fast paths, work-stealing scheduling. Each
//! optimisation is an opportunity for a silent divergence that a
//! statistics-level test would never notice. This crate pins them down:
//!
//! * [`oracle`] — naive re-implementations of every optimised path
//!   (direct encoding, ordered maps, two-pass check-then-commit,
//!   allocate-everything evaluation, a single-threaded engine), asserted
//!   bit-identical to production under corner-biased generated workloads;
//! * [`gen`] — `util::prop` generators biased toward the DDR4 field-study
//!   corner regions (multi-row clusters, pin/column faults, whole-bank
//!   faults) that stress the planners hardest;
//! * [`replay`] — re-execution of persisted
//!   [`relaxfault_relsim::repro::ReproCase`] files, proving bit-exact
//!   reproduction by fault-population digest (engine cases) or by
//!   re-failing the decoded property (oracle cases).
//!
//! * [`lanematrix`] — the bit-slicing equivalence gate: one pinned
//!   scenario mix digested across every `(lane mode, thread count)`
//!   cell, all nine digests required identical.
//!
//! The `relcheck` binary drives the entry points CI uses:
//! `relcheck smoke` runs every oracle property at a reduced case count,
//! `relcheck replay <case.json>` re-executes a persisted failure with
//! tracing forced on, and `relcheck lane-matrix` emits the lane
//! equivalence verdict JSON.

pub mod gen;
pub mod lanematrix;
pub mod oracle;
pub mod replay;

pub use lanematrix::{run_lane_matrix, LaneMatrixVerdict};
pub use oracle::{check_with_repro, run_smoke, PROP_CASES};
pub use replay::{load_any, replay, replay_fleet, LoadedCase, ReplayReport};
