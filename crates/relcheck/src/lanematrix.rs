//! The CI lane-matrix gate: one pinned scenario mix run through every
//! (lane mode, thread count) cell of `{scalar, u64, u128} × {1, 2, 4}`
//! must produce bit-identical results.
//!
//! The comparison digests the *deterministic* engine outputs — every
//! counter field of [`ScenarioResult`] plus the canonical (sorted)
//! repair-bytes distribution. Timing histograms are exactly what this
//! gate must not read: their nanosecond sums differ run to run by
//! construction. The verdict JSON goes under `results/ci/` as a build
//! artifact, one digest per cell, so a failing cell is identifiable
//! from the artifact alone.

use relaxfault_relsim::engine::{run_scenarios_with_lanes, RunConfig, ScenarioResult};
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::json::Value;
use relaxfault_util::lanes::LaneMode;
use relaxfault_util::obs;

/// One matrix cell's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneCell {
    /// Lane mode the engine ran under.
    pub lanes: LaneMode,
    /// Worker threads.
    pub threads: usize,
    /// FNV-1a digest of the deterministic results.
    pub digest: u64,
}

/// The full matrix verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMatrixVerdict {
    /// Trials per cell.
    pub trials: u64,
    /// Engine seed (identical in every cell).
    pub seed: u64,
    /// Every cell, in `(mode, threads)` iteration order.
    pub cells: Vec<LaneCell>,
    /// Whether every cell digested identically.
    pub pass: bool,
}

impl LaneMatrixVerdict {
    /// JSON form (digests as 16-digit hex strings — JSON numbers are
    /// doubles and would round them).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema_version", Value::from(1u64)),
            ("kind", Value::from("lane_matrix_verdict")),
            ("trials", Value::from(self.trials)),
            ("seed", Value::from(self.seed)),
            (
                "cells",
                Value::Array(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::object([
                                ("lanes", Value::from(c.lanes.label())),
                                ("threads", Value::from(c.threads as u64)),
                                ("digest", Value::from(format!("{:016x}", c.digest))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "verdict",
                Value::from(if self.pass { "pass" } else { "fail" }),
            ),
        ])
    }
}

/// Digests every deterministic field of the results: all counters, the
/// labels, and the repair-bytes samples in canonical sorted order
/// (bit-for-bit via `to_bits`).
fn digest_results(results: &mut [ScenarioResult]) -> u64 {
    use std::fmt::Write;
    let mut text = String::new();
    for r in results {
        let _ = write!(
            text,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:?}|",
            r.label,
            r.trials,
            r.faulty_nodes,
            r.fully_repaired_nodes,
            r.dues,
            r.transient_dues,
            r.sdcs,
            r.replacements,
            r.unrepaired_faults,
            r.permanent_faults,
            r.max_ways_seen,
            r.unrepaired_by_mode,
        );
        for s in r.repair_bytes.sorted_samples() {
            let _ = write!(text, "{:016x},", s.to_bits());
        }
        text.push(';');
    }
    obs::fnv1a(text.as_bytes())
}

/// Runs the matrix: the paper's Figure 10 arm mix (RelaxFault, FreeFault,
/// PPR on one shared fault population) at `trials` lifetimes per cell,
/// every lane mode × thread count, all on one seed.
pub fn run_lane_matrix(trials: u64, seed: u64) -> LaneMatrixVerdict {
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 4 }),
        base.with_mechanism(Mechanism::Ppr),
    ];
    let mut cells = Vec::new();
    for mode in LaneMode::ALL {
        for threads in [1usize, 2, 4] {
            let run = RunConfig {
                trials,
                seed,
                threads,
                chunk_size: 0,
            };
            let mut results = run_scenarios_with_lanes(&arms, &run, mode);
            cells.push(LaneCell {
                lanes: mode,
                threads,
                digest: digest_results(&mut results),
            });
        }
    }
    let pass = cells.iter().all(|c| c.digest == cells[0].digest);
    LaneMatrixVerdict {
        trials,
        seed,
        cells,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_passes_and_serializes() {
        let v = run_lane_matrix(600, 0xC1);
        assert!(v.pass, "lane matrix diverged: {:#?}", v.cells);
        assert_eq!(v.cells.len(), 9);
        let json = v.to_json().to_pretty();
        assert!(json.contains("\"verdict\": \"pass\""));
        assert!(json.contains("\"lanes\": \"u128\""));
        // The digest is a function of the results, so a different seed
        // digests differently.
        let other = run_lane_matrix(600, 0xC2);
        assert!(other.pass);
        assert_ne!(other.cells[0].digest, v.cells[0].digest);
    }
}
