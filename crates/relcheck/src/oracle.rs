//! Slow-but-obviously-correct reference implementations of the repair
//! planners, the LLC occupancy accounting, and trial evaluation, plus the
//! differential properties that assert them bit-identical to the
//! production path.
//!
//! Every production optimization has a naive mirror here:
//!
//! * candidate enumeration — direct per-line [`RelaxMap`] /
//!   [`AddressMap`] encoding, no XOR-delta tables;
//! * LLC occupancy — `BTreeMap`/`BTreeSet` with a two-pass
//!   check-then-commit, no rollback needed, instead of the one-pass
//!   insert-and-roll-back hash path;
//! * trial evaluation — freshly allocated state per call, no scratch
//!   reuse, no planner caching;
//! * the whole engine — a single-threaded trial loop with no zero-fault
//!   fast path and no work stealing.
//!
//! The differential properties drive both sides with the corner-biased
//! generators from [`crate::gen`] and compare verdicts *and* full internal
//! state after every offer.

use crate::gen;
use relaxfault_cache::CacheConfig;
use relaxfault_core::mapping::{RelaxMap, RepairLine};
use relaxfault_core::plan::{FreeFault, Ppr, RelaxFault, RepairMechanism};
use relaxfault_dram::{AddressMap, DramConfig, DramLoc};
use relaxfault_ecc::EccOutcome;
use relaxfault_faults::{Extent, FaultModel, FaultRegion, FaultSampler, NodeFaults};
use relaxfault_relsim::engine::{
    run_scenarios, run_scenarios_with_lanes, RunConfig, ScenarioResult,
};
use relaxfault_relsim::node::{evaluate_node_with, EvalScratch, NodeOutcome};
use relaxfault_relsim::repro::ReproCase;
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_util::lanes::LaneMode;
use relaxfault_util::prop::{self, PropResult, Source};
use relaxfault_util::rng::{mix64, Rng, Rng64};
use relaxfault_util::stats::Ecdf;
use relaxfault_util::{prop_assert, prop_assert_eq};
use std::collections::{BTreeMap, BTreeSet};

// --- naive LLC occupancy ---

/// Reference occupancy accounting: ordered maps, two passes. The check
/// pass mutates nothing, so atomicity is trivially correct — no rollback
/// to get wrong.
pub struct NaiveOccupancy {
    max_ways: u32,
    line_bytes: u64,
    sets: u64,
    lines: BTreeSet<u64>,
    per_set: BTreeMap<u64, u32>,
    max_used: u32,
}

impl NaiveOccupancy {
    /// Mirrors `LlcOccupancy::new`.
    pub fn new(llc: &CacheConfig, max_ways: u32) -> Self {
        assert!(max_ways >= 1 && max_ways <= llc.ways);
        Self {
            max_ways,
            line_bytes: llc.line_bytes as u64,
            sets: llc.sets(),
            lines: BTreeSet::new(),
            per_set: BTreeMap::new(),
            max_used: 0,
        }
    }

    /// The same absolute ceiling the production planners precheck with.
    pub fn budget_ceiling(&self) -> u64 {
        self.sets * self.max_ways as u64
    }

    /// Atomic add of `(set, key)` candidates: pass 1 counts the genuinely
    /// fresh lines per set against the way limit, pass 2 commits them only
    /// if every set fits. Whether any set overflows does not depend on
    /// candidate order, so this matches the production early-abort verdict
    /// exactly.
    pub fn try_add(&mut self, cand: &[(u64, u64)]) -> bool {
        let mut fresh: Vec<(u64, u64)> = Vec::new();
        let mut seen = BTreeSet::new();
        for &(set, key) in cand {
            if self.lines.contains(&key) || !seen.insert(key) {
                continue;
            }
            fresh.push((set, key));
        }
        let mut add: BTreeMap<u64, u32> = BTreeMap::new();
        for &(set, _) in &fresh {
            *add.entry(set).or_insert(0) += 1;
        }
        for (&set, &n) in &add {
            if self.per_set.get(&set).copied().unwrap_or(0) + n > self.max_ways {
                return false;
            }
        }
        for (set, key) in fresh {
            self.lines.insert(key);
            let c = self.per_set.entry(set).or_insert(0);
            *c += 1;
            self.max_used = self.max_used.max(*c);
        }
        true
    }

    /// Lines locked.
    pub fn lines_used(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Bytes locked.
    pub fn bytes_used(&self) -> u64 {
        self.lines_used() * self.line_bytes
    }

    /// Worst per-set occupancy.
    pub fn max_ways_used(&self) -> u32 {
        self.max_used
    }

    /// Sorted `(set, count)` pairs.
    pub fn occupied_sets(&self) -> Vec<(u32, u32)> {
        self.per_set.iter().map(|(&s, &c)| (s as u32, c)).collect()
    }

    /// Sorted locked keys.
    pub fn line_keys(&self) -> Vec<u64> {
        self.lines.iter().copied().collect()
    }
}

// --- naive planners ---

/// Reference RelaxFault planner: every repair line encoded directly
/// through [`RelaxMap`], one `repair_addr` per line.
pub struct NaiveRelax {
    map: RelaxMap,
    dram: DramConfig,
    occ: NaiveOccupancy,
}

impl NaiveRelax {
    /// Mirrors [`RelaxFault::new`].
    pub fn new(dram: &DramConfig, llc: &CacheConfig, max_ways: u32) -> Self {
        Self {
            map: RelaxMap::new(dram, llc),
            dram: *dram,
            occ: NaiveOccupancy::new(llc, max_ways),
        }
    }

    fn enumerate(&self, regions: &[FaultRegion]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for r in regions {
            let rect = r.footprint(&self.dram);
            let groups = rect.colblocks.divided(self.map.coalesce_factor());
            for bank in rect.banks.iter() {
                for row in rect.rows.iter() {
                    for colgroup in groups.iter() {
                        let line = RepairLine {
                            rank: r.rank,
                            device: r.device,
                            bank,
                            row,
                            colgroup,
                        };
                        out.push((self.map.set_of(&line), self.map.key_of(&line)));
                    }
                }
            }
        }
        out
    }

    fn lines_needed(&self, regions: &[FaultRegion]) -> u64 {
        regions
            .iter()
            .map(|r| r.footprint(&self.dram))
            .map(|rect| {
                rect.banks.len() as u64
                    * rect.rows.len()
                    * rect.colblocks.divided(self.map.coalesce_factor()).len()
            })
            .sum()
    }

    /// Mirrors [`RelaxFault::try_repair_with`], enumeration and all.
    pub fn try_repair(&mut self, regions: &[FaultRegion]) -> bool {
        if self.lines_needed(regions) > self.occ.budget_ceiling() {
            return false;
        }
        let cand = self.enumerate(regions);
        self.occ.try_add(&cand)
    }

    /// The occupancy state, for comparison.
    pub fn occupancy(&self) -> &NaiveOccupancy {
        &self.occ
    }
}

/// Reference FreeFault planner: every faulty block encoded directly
/// through the physical [`AddressMap`].
pub struct NaiveFree {
    map: AddressMap,
    llc: CacheConfig,
    dram: DramConfig,
    occ: NaiveOccupancy,
}

impl NaiveFree {
    /// Mirrors [`FreeFault::new`].
    pub fn new(dram: &DramConfig, llc: &CacheConfig, max_ways: u32) -> Self {
        Self {
            map: AddressMap::nehalem_like(dram, true),
            llc: *llc,
            dram: *dram,
            occ: NaiveOccupancy::new(llc, max_ways),
        }
    }

    fn enumerate(&self, regions: &[FaultRegion]) -> Vec<(u64, u64)> {
        let off = self.llc.offset_bits();
        let mut out = Vec::new();
        for r in regions {
            let rect = r.footprint(&self.dram);
            for bank in rect.banks.iter() {
                for row in rect.rows.iter() {
                    for colblock in rect.colblocks.iter() {
                        let addr = self
                            .map
                            .encode(
                                DramLoc {
                                    channel: r.rank.channel,
                                    dimm: r.rank.dimm,
                                    rank: r.rank.rank,
                                    bank,
                                    row,
                                    colblock,
                                },
                                0,
                            )
                            .0;
                        out.push((self.llc.set_of(addr), addr >> off));
                    }
                }
            }
        }
        out
    }

    fn lines_needed(&self, regions: &[FaultRegion]) -> u64 {
        regions
            .iter()
            .map(|r| r.footprint(&self.dram).block_count())
            .sum()
    }

    /// Mirrors [`FreeFault::try_repair_with`].
    pub fn try_repair(&mut self, regions: &[FaultRegion]) -> bool {
        if self.lines_needed(regions) > self.occ.budget_ceiling() {
            return false;
        }
        let cand = self.enumerate(regions);
        self.occ.try_add(&cand)
    }

    /// The occupancy state, for comparison.
    pub fn occupancy(&self) -> &NaiveOccupancy {
        &self.occ
    }
}

/// Reference PPR planner: ordered maps, row lists re-derived from the
/// extents with a plain match, two-pass check-then-commit.
pub struct NaivePpr {
    dram: DramConfig,
    banks_per_group: u32,
    spares_per_group: u32,
    used: BTreeMap<(u32, u32, u32), u32>,
    rows: BTreeSet<(u32, u32, u32, u32)>,
}

impl NaivePpr {
    /// Mirrors [`Ppr::with_spares`]; [`Ppr::new`]'s defaults are
    /// `banks.div_ceil(4).max(1)` banks per group and one spare.
    pub fn new(dram: &DramConfig, banks_per_group: u32, spares_per_group: u32) -> Self {
        Self {
            dram: *dram,
            banks_per_group,
            spares_per_group,
            used: BTreeMap::new(),
            rows: BTreeSet::new(),
        }
    }

    /// Mirrors [`Ppr::try_repair_with`].
    pub fn try_repair(&mut self, regions: &[FaultRegion]) -> bool {
        let total_spares =
            (self.dram.banks / self.banks_per_group).max(1) as u64 * self.spares_per_group as u64;
        let mut cand: BTreeSet<(u32, u32, u32, u32)> = BTreeSet::new();
        for r in regions {
            let flat = r.rank.flat_index(&self.dram);
            let per_bank: u64 = match r.extent {
                Extent::Bit { .. } | Extent::Word { .. } | Extent::Row { .. } => 1,
                Extent::Column { row_count, .. } | Extent::RowCluster { row_count, .. } => {
                    row_count as u64
                }
                Extent::Banks { .. } => return false,
            };
            if per_bank > total_spares {
                return false;
            }
            match r.extent {
                Extent::Bit { bank, row, .. }
                | Extent::Word { bank, row, .. }
                | Extent::Row { bank, row } => {
                    cand.insert((flat, r.device, bank, row));
                }
                Extent::Column {
                    bank,
                    row_start,
                    row_count,
                    ..
                }
                | Extent::RowCluster {
                    bank,
                    row_start,
                    row_count,
                } => {
                    for row in row_start..row_start + row_count {
                        cand.insert((flat, r.device, bank, row));
                    }
                }
                Extent::Banks { .. } => unreachable!(),
            }
        }
        // Check pass: fresh rows per (rank, device, group) against the
        // remaining spares.
        let mut fresh: BTreeMap<(u32, u32, u32), u32> = BTreeMap::new();
        for &(flat, device, bank, row) in &cand {
            if !self.rows.contains(&(flat, device, bank, row)) {
                *fresh
                    .entry((flat, device, bank / self.banks_per_group))
                    .or_insert(0) += 1;
            }
        }
        for (group, &n) in &fresh {
            if self.used.get(group).copied().unwrap_or(0) + n > self.spares_per_group {
                return false;
            }
        }
        for (flat, device, bank, row) in cand {
            if self.rows.insert((flat, device, bank, row)) {
                *self
                    .used
                    .entry((flat, device, bank / self.banks_per_group))
                    .or_insert(0) += 1;
            }
        }
        true
    }

    /// Spares consumed.
    pub fn spares_used(&self) -> u64 {
        self.used.values().map(|&v| v as u64).sum()
    }

    /// Sorted substituted rows.
    pub fn repaired_rows(&self) -> Vec<(u32, u32, u32, u32)> {
        self.rows.iter().copied().collect()
    }
}

// --- state comparison ---

fn compare_occupancy(
    lines_used: u64,
    bytes_used: u64,
    max_ways_used: u32,
    mut keys: Vec<u64>,
    mut sets: Vec<(u32, u32)>,
    naive: &NaiveOccupancy,
) -> Result<(), String> {
    if lines_used != naive.lines_used() {
        return Err(format!(
            "lines_used {lines_used} != naive {}",
            naive.lines_used()
        ));
    }
    if bytes_used != naive.bytes_used() {
        return Err(format!(
            "bytes_used {bytes_used} != naive {}",
            naive.bytes_used()
        ));
    }
    if max_ways_used != naive.max_ways_used() {
        return Err(format!(
            "max_ways_used {max_ways_used} != naive {}",
            naive.max_ways_used()
        ));
    }
    keys.sort_unstable();
    if keys != naive.line_keys() {
        return Err("locked line keys diverge".into());
    }
    sets.sort_unstable();
    if sets != naive.occupied_sets() {
        return Err("per-set occupancy diverges".into());
    }
    Ok(())
}

/// Full-state equality between the production RelaxFault planner and its
/// reference, bit for bit.
///
/// # Errors
///
/// Returns a description of the first diverging piece of state.
pub fn compare_relax(prod: &RelaxFault, naive: &NaiveRelax) -> Result<(), String> {
    compare_occupancy(
        prod.lines_used(),
        prod.bytes_used(),
        prod.max_ways_used(),
        prod.line_keys().collect(),
        prod.occupied_sets().collect(),
        &naive.occ,
    )
}

/// Full-state equality between the production FreeFault planner and its
/// reference.
///
/// # Errors
///
/// Returns a description of the first diverging piece of state.
pub fn compare_free(prod: &FreeFault, naive: &NaiveFree) -> Result<(), String> {
    compare_occupancy(
        prod.lines_used(),
        prod.bytes_used(),
        prod.max_ways_used(),
        prod.line_keys().collect(),
        prod.occupied_sets().collect(),
        &naive.occ,
    )
}

/// Full-state equality between the production PPR planner and its
/// reference.
///
/// # Errors
///
/// Returns a description of the first diverging piece of state.
pub fn compare_ppr(prod: &Ppr, naive: &NaivePpr) -> Result<(), String> {
    if prod.spares_used() != naive.spares_used() {
        return Err(format!(
            "spares_used {} != naive {}",
            prod.spares_used(),
            naive.spares_used()
        ));
    }
    let mut rows: Vec<_> = prod.repaired_rows().collect();
    rows.sort_unstable();
    if rows != naive.repaired_rows() {
        return Err("substituted row sets diverge".into());
    }
    Ok(())
}

// --- reference trial evaluation ---

enum RefPlanner {
    None,
    Relax(RelaxFault),
    Free(FreeFault),
    Ppr(Ppr),
}

impl RefPlanner {
    fn new(s: &Scenario) -> Self {
        match s.mechanism {
            Mechanism::None => RefPlanner::None,
            Mechanism::RelaxFault { max_ways } => {
                RefPlanner::Relax(RelaxFault::new(&s.dram, &s.llc, max_ways))
            }
            Mechanism::FreeFault { max_ways } => {
                RefPlanner::Free(FreeFault::new(&s.dram, &s.llc, max_ways))
            }
            Mechanism::Ppr => RefPlanner::Ppr(Ppr::new(&s.dram)),
            Mechanism::PprCustom {
                banks_per_group,
                spares_per_group,
            } => RefPlanner::Ppr(Ppr::with_spares(&s.dram, banks_per_group, spares_per_group)),
        }
    }

    fn try_repair(&mut self, regions: &[FaultRegion]) -> bool {
        // Allocating form: a fresh PlanScratch per offer, by design.
        match self {
            RefPlanner::None => false,
            RefPlanner::Relax(p) => p.try_repair(regions),
            RefPlanner::Free(p) => p.try_repair(regions),
            RefPlanner::Ppr(p) => p.try_repair(regions),
        }
    }

    fn bytes_used(&self) -> u64 {
        match self {
            RefPlanner::None => 0,
            RefPlanner::Relax(p) => p.bytes_used(),
            RefPlanner::Free(p) => p.bytes_used(),
            RefPlanner::Ppr(p) => p.bytes_used(),
        }
    }

    fn max_ways_used(&self) -> u32 {
        match self {
            RefPlanner::None => 0,
            RefPlanner::Relax(p) => p.max_ways_used(),
            RefPlanner::Free(p) => p.max_ways_used(),
            RefPlanner::Ppr(p) => p.max_ways_used(),
        }
    }
}

/// Reference trial evaluation: the same timeline semantics as
/// `evaluate_node_with`, written with freshly allocated vectors and a
/// planner built per call — no scratch reuse, no caching, nothing carried
/// across calls. Consumes the RNG in the identical order, so outcomes must
/// match the production path bit for bit.
pub fn reference_evaluate_node<R: Rng + ?Sized>(
    scenario: &Scenario,
    node: &NodeFaults,
    rng: &mut R,
) -> NodeOutcome {
    let cfg = &scenario.dram;
    let mut out = NodeOutcome::default();
    if node.events.is_empty() {
        return out;
    }
    let mut planner: Option<RefPlanner> = None;
    let mut live: Vec<(u32, FaultRegion)> = Vec::new();

    for event in &node.events {
        let permanent = event.is_permanent();
        if permanent {
            out.faulty = true;
            out.permanent_faults += 1;
        }
        let live_regions: Vec<FaultRegion> = live.iter().map(|(_, r)| *r).collect();
        let mut outcome =
            scenario
                .ecc
                .classify_arrival(cfg, &event.regions, permanent, &live_regions, rng);
        let event_dimms: Vec<u32> = event
            .regions
            .iter()
            .map(|r| r.rank.dimm_index(cfg))
            .collect();

        let repaired = permanent && {
            let p = planner.get_or_insert_with(|| RefPlanner::new(scenario));
            p.try_repair(&event.regions)
        };

        if outcome == EccOutcome::Due
            && repaired
            && scenario.ecc.p_repair_preempts_due > 0.0
            && rng.gen_bool(scenario.ecc.p_repair_preempts_due)
        {
            outcome = EccOutcome::Corrected;
        }

        match outcome {
            EccOutcome::Corrected => {}
            EccOutcome::Due => {
                out.dues += 1;
                if permanent {
                    if scenario.replacement == ReplacementPolicy::AfterDue {
                        for &dimm in &event_dimms {
                            out.replacements += 1;
                            live.retain(|(d, _)| *d != dimm);
                        }
                        continue;
                    }
                } else {
                    out.transient_dues += 1;
                }
            }
            EccOutcome::Sdc => {
                out.sdcs += 1;
            }
        }

        if !permanent || repaired {
            continue;
        }
        out.unrepaired_faults += 1;
        out.unrepaired_by_mode[event.mode as usize] += 1;
        for r in &event.regions {
            live.push((r.rank.dimm_index(cfg), *r));
        }

        if let ReplacementPolicy::AfterErrors { trigger_prob } = scenario.replacement {
            if rng.gen_bool(trigger_prob) {
                for &dimm in &event_dimms {
                    out.replacements += 1;
                    live.retain(|(d, _)| *d != dimm);
                }
            }
        }
    }

    out.fully_repaired = out.faulty && out.unrepaired_faults == 0;
    if let Some(p) = &planner {
        out.repair_bytes = p.bytes_used();
        out.max_ways = p.max_ways_used();
    }
    out
}

/// Reference engine: single thread, no zero-fault fast path (every trial
/// is fully sampled with the allocating `sample_node`), no work stealing,
/// reference trial evaluation. Same `(seed, trial, group)` stream keying,
/// so [`run_scenarios`] must reproduce it bit for bit at any thread count.
pub fn reference_run_scenarios(scenarios: &[Scenario], run: &RunConfig) -> Vec<ScenarioResult> {
    assert!(!scenarios.is_empty());
    let cfg = scenarios[0].dram;
    let mut groups: Vec<(FaultModel, Vec<usize>)> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        if let Some((_, idxs)) = groups.iter_mut().find(|(m, _)| *m == s.fault_model) {
            idxs.push(i);
        } else {
            groups.push((s.fault_model, vec![i]));
        }
    }
    let mut results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|s| ScenarioResult {
            label: s.mechanism.label(),
            trials: 0,
            faulty_nodes: 0,
            fully_repaired_nodes: 0,
            repair_bytes: Ecdf::new(),
            dues: 0,
            transient_dues: 0,
            sdcs: 0,
            replacements: 0,
            unrepaired_faults: 0,
            permanent_faults: 0,
            max_ways_seen: 0,
            unrepaired_by_mode: [0; 6],
        })
        .collect();
    let samplers: Vec<FaultSampler> = groups
        .iter()
        .map(|(model, _)| FaultSampler::new(model, &cfg))
        .collect();
    for trial in 0..run.trials {
        for (gi, (_, members)) in groups.iter().enumerate() {
            let mut sample_rng = Rng64::seed_from_u64(mix64(run.seed, trial, gi as u64));
            let node = samplers[gi].sample_node(&mut sample_rng);
            for &si in members {
                let mut eval_rng = Rng64::seed_from_u64(mix64(run.seed ^ 0xECC, trial, 0));
                let out = reference_evaluate_node(&scenarios[si], &node, &mut eval_rng);
                let r = &mut results[si];
                r.trials += 1;
                r.faulty_nodes += out.faulty as u64;
                r.fully_repaired_nodes += out.fully_repaired as u64;
                if out.fully_repaired {
                    r.repair_bytes.add(out.repair_bytes as f64);
                }
                r.dues += out.dues as u64;
                r.transient_dues += out.transient_dues as u64;
                r.sdcs += out.sdcs as u64;
                r.replacements += out.replacements as u64;
                r.unrepaired_faults += out.unrepaired_faults as u64;
                r.permanent_faults += out.permanent_faults as u64;
                r.max_ways_seen = r.max_ways_seen.max(out.max_ways);
                for (a, b) in r.unrepaired_by_mode.iter_mut().zip(out.unrepaired_by_mode) {
                    *a += b as u64;
                }
            }
        }
    }
    results
}

// --- differential properties ---

/// RelaxFault differential: drive production and reference planners with
/// the same corner-biased offer sequence; verdicts and full occupancy
/// state must agree after every offer, and the production invariants must
/// hold throughout.
pub fn relax_oracle_property(src: &mut Source) -> PropResult {
    let dram = DramConfig::isca16_reliability();
    let llc = if src.bool() {
        CacheConfig::isca16_llc()
    } else {
        CacheConfig::isca16_llc_no_hash()
    };
    let max_ways = gen::arb_max_ways(src);
    let offers = gen::arb_offer_sequence(src, &dram);
    let mut prod = RelaxFault::new(&dram, &llc, max_ways);
    let mut naive = NaiveRelax::new(&dram, &llc, max_ways);
    for offer in &offers {
        let a = prod.try_repair(offer);
        let b = naive.try_repair(offer);
        prop_assert_eq!(a, b, "verdict diverged for {offer:?}");
        if let Err(e) = compare_relax(&prod, &naive) {
            prop_assert!(false, "state diverged after {offer:?}: {e}");
        }
        if let Err(e) = prod.check_invariants() {
            prop_assert!(false, "production invariant: {e}");
        }
    }
    Ok(())
}

/// FreeFault differential, same shape as [`relax_oracle_property`].
pub fn free_oracle_property(src: &mut Source) -> PropResult {
    let dram = DramConfig::isca16_reliability();
    let llc = if src.bool() {
        CacheConfig::isca16_llc()
    } else {
        CacheConfig::isca16_llc_no_hash()
    };
    let max_ways = gen::arb_max_ways(src);
    let offers = gen::arb_offer_sequence(src, &dram);
    let mut prod = FreeFault::new(&dram, &llc, max_ways);
    let mut naive = NaiveFree::new(&dram, &llc, max_ways);
    for offer in &offers {
        let a = prod.try_repair(offer);
        let b = naive.try_repair(offer);
        prop_assert_eq!(a, b, "verdict diverged for {offer:?}");
        if let Err(e) = compare_free(&prod, &naive) {
            prop_assert!(false, "state diverged after {offer:?}: {e}");
        }
        if let Err(e) = prod.check_invariants() {
            prop_assert!(false, "production invariant: {e}");
        }
    }
    Ok(())
}

/// PPR differential: spare accounting and substituted-row sets must agree
/// offer by offer, across default and custom groupings.
pub fn ppr_oracle_property(src: &mut Source) -> PropResult {
    let dram = DramConfig::isca16_reliability();
    let (bpg, spg) = if src.bool() {
        (dram.banks.div_ceil(4).max(1), 1)
    } else {
        (src.u32(1, dram.banks), src.u32(1, 8))
    };
    let offers = gen::arb_offer_sequence(src, &dram);
    let mut prod = Ppr::with_spares(&dram, bpg, spg);
    let mut naive = NaivePpr::new(&dram, bpg, spg);
    for offer in &offers {
        let a = prod.try_repair(offer);
        let b = naive.try_repair(offer);
        prop_assert_eq!(a, b, "verdict diverged for {offer:?}");
        if let Err(e) = compare_ppr(&prod, &naive) {
            prop_assert!(false, "state diverged after {offer:?}: {e}");
        }
        if let Err(e) = prod.check_invariants() {
            prop_assert!(false, "production invariant: {e}");
        }
    }
    Ok(())
}

/// Trial-evaluation differential: sampled lifetimes (FIT-scaled so faults
/// are common) evaluated by the production scratch-reusing path — two
/// trials back to back on the *same* scratch — against the allocating
/// reference, under a generated mechanism and replacement policy.
pub fn eval_oracle_property(src: &mut Source) -> PropResult {
    let mechanism = match src.choice_index(5) {
        0 => Mechanism::None,
        1 => Mechanism::RelaxFault {
            max_ways: gen::arb_max_ways(src),
        },
        2 => Mechanism::FreeFault {
            max_ways: gen::arb_max_ways(src),
        },
        3 => Mechanism::Ppr,
        _ => Mechanism::PprCustom {
            banks_per_group: 2,
            spares_per_group: src.u32(1, 4),
        },
    };
    let replacement = match src.choice_index(3) {
        0 => ReplacementPolicy::None,
        1 => ReplacementPolicy::AfterDue,
        _ => ReplacementPolicy::AfterErrors { trigger_prob: 0.5 },
    };
    let scenario = Scenario::isca16_baseline()
        .with_fit_scale(300.0)
        .with_mechanism(mechanism)
        .with_replacement(replacement);
    let sampler = FaultSampler::new(&scenario.fault_model, &scenario.dram);
    let mut scratch = EvalScratch::new();
    // Two consecutive trials through one scratch: the second exercises
    // planner reset and buffer reuse against the from-scratch reference.
    for _ in 0..2 {
        let sample_seed = src.u64(0, u64::MAX);
        let eval_seed = src.u64(0, u64::MAX);
        let node = sampler.sample_node(&mut Rng64::seed_from_u64(sample_seed));
        let mut prod_rng = Rng64::seed_from_u64(eval_seed);
        let prod = evaluate_node_with(&scenario, &node, &mut prod_rng, &mut scratch);
        let mut ref_rng = Rng64::seed_from_u64(eval_seed);
        let reference = reference_evaluate_node(&scenario, &node, &mut ref_rng);
        prop_assert_eq!(prod, reference, "outcome diverged");
        if let Err(e) = scratch.check_invariants() {
            prop_assert!(false, "scratch invariant: {e}");
        }
    }
    Ok(())
}

/// Whole-engine differential: the parallel, fast-pathed, work-stealing
/// production engine against the single-threaded allocating reference, at
/// a generated thread count and chunk size.
pub fn engine_oracle_property(src: &mut Source) -> PropResult {
    let base = Scenario::isca16_baseline()
        .with_fit_scale(40.0)
        .with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 4 }),
        base.with_mechanism(Mechanism::Ppr),
    ];
    let run = RunConfig {
        trials: src.u64(1, 60),
        seed: src.u64(0, u64::MAX),
        threads: src.usize(1, 4),
        chunk_size: src.u64(0, 8),
    };
    let prod = run_scenarios(&arms, &run);
    let reference = reference_run_scenarios(&arms, &run);
    prop_assert_eq!(prod, reference, "engine diverged from reference");
    Ok(())
}

/// Bit-sliced-engine differential: [`run_scenarios_with_lanes`] under
/// `u64`/`u128` lanes against the scalar path, on corner-biased shapes —
/// sub-block trial counts (pure scalar tails), exact lane multiples and
/// their off-by-ones, near-zero-fault populations (the popcount bulk
/// retire), and rollback-heavy ones (high FIT scale against 1-way
/// planners). Results must be bit-identical in every field.
pub fn lanes_oracle_property(src: &mut Source) -> PropResult {
    let trials = match src.choice_index(4) {
        0 => src.u64(1, 63),
        1 => [64, 128, 192, 256][src.choice_index(4)],
        2 => [63, 65, 127, 129][src.choice_index(4)],
        _ => src.u64(1, 300),
    };
    // 0.2 leaves almost every lane bit clean; 300 makes faults (and
    // failed try_add offers against the 1-way arm) the common case.
    let fit = [0.2, 40.0, 300.0][src.choice_index(3)];
    let base = Scenario::isca16_baseline()
        .with_fit_scale(fit)
        .with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone().with_mechanism(Mechanism::FreeFault {
            max_ways: gen::arb_max_ways(src),
        }),
        base.with_mechanism(Mechanism::Ppr),
    ];
    let run = RunConfig {
        trials,
        seed: src.u64(0, u64::MAX),
        threads: src.usize(1, 4),
        // Small explicit chunks are never lane-aligned, so every chunk
        // ends in a scalar remainder tail.
        chunk_size: src.u64(0, 150),
    };
    let scalar = run_scenarios_with_lanes(&arms, &run, LaneMode::Scalar);
    for mode in [LaneMode::U64, LaneMode::U128] {
        let sliced = run_scenarios_with_lanes(&arms, &run, mode);
        prop_assert_eq!(sliced, scalar, "{} diverged from scalar", mode.label());
    }
    Ok(())
}

/// A named differential property: the replay dispatch key and the
/// property function it resolves to.
pub type PropCase = (&'static str, fn(&mut Source) -> PropResult);

/// The named differential properties, the replay dispatch table for
/// property-based repro cases.
pub const PROP_CASES: &[PropCase] = &[
    ("relax_oracle", relax_oracle_property),
    ("free_oracle", free_oracle_property),
    ("ppr_oracle", ppr_oracle_property),
    ("eval_oracle", eval_oracle_property),
    ("engine_oracle", engine_oracle_property),
    ("lanes", lanes_oracle_property),
];

/// Runs a named property `cases` times; on failure, persists the shrunk
/// choice stream as a repro case under `results/relcheck/` and panics with
/// its path.
///
/// # Panics
///
/// Panics if the property fails (after writing the repro).
pub fn check_with_repro(name: &str, cases: u32, property: fn(&mut Source) -> PropResult) {
    if let Some(path) = run_with_repro(name, cases, property) {
        panic!("{name} failed; repro written to {path} — rerun with `relcheck replay`");
    }
}

/// Non-panicking form of [`check_with_repro`]: returns the repro path on
/// failure, `None` on success.
pub fn run_with_repro(
    name: &str,
    cases: u32,
    property: fn(&mut Source) -> PropResult,
) -> Option<String> {
    let ce = prop::find_counterexample(cases, property)?;
    let case = ReproCase {
        case: name.into(),
        reason: ce.message,
        seed: ce.seed,
        trial: ce.case,
        group: 0,
        epoch: None,
        scenarios: Vec::new(),
        digest: None,
        prop_choices: ce.choices,
    };
    Some(case.write().display().to_string())
}

/// Runs every named property at a reduced case count — the CI oracle
/// smoke pass.
///
/// # Errors
///
/// Returns the failing property's name and repro path.
pub fn run_smoke(cases: u32) -> Result<(), String> {
    for &(name, property) in PROP_CASES {
        if let Some(path) = run_with_repro(name, cases, property) {
            return Err(format!("{name} failed; repro written to {path}"));
        }
    }
    Ok(())
}
