//! Deterministic re-execution of persisted repro cases and fleet
//! checkpoints.
//!
//! A [`ReproCase`] comes in two flavours and this module replays both:
//!
//! * **engine cases** (`RF_CHECK=1` failures) carry the scenario arms of
//!   the failing fault-model group plus the `(seed, trial, group)` stream
//!   coordinates — replay re-derives the exact RNG streams, resamples the
//!   fault population, and proves bit-exactness by comparing its FNV-1a
//!   digest against the one recorded at failure time;
//! * **property cases** (oracle failures) carry the shrunk choice stream —
//!   replay decodes it back through the named property from
//!   [`crate::oracle::PROP_CASES`] and reproduces iff the property fails
//!   again.
//!
//! Fleet checkpoints ([`FleetCheckpoint`]) share the same persistence
//! contract and get the same treatment: [`replay_fleet`] rebuilds the
//! fleet from the checkpoint's embedded configuration, re-runs it up to
//! the recorded boundary, and proves the checkpoint honest by comparing
//! every shard digest and arm metric. Crash dumps ([`CrashDump`]) carry
//! the newest durable checkpoint of the dying run embedded as a raw JSON
//! value; [`replay_crash_dump`] decodes it through the strict
//! [`FleetCheckpoint`] deserializer and hands it to [`replay_fleet`], so
//! "the run died at epoch N" becomes a bit-exactness proof of everything
//! up to the last boundary. [`load_any`] dispatches a JSON file to the
//! right replayer by its `kind` header.

use crate::oracle::PROP_CASES;
use relaxfault_faults::{FaultSampler, NodeFaults};
use relaxfault_relsim::engine::{eval_rng_seed, sample_rng_seed};
use relaxfault_relsim::fleet::{FleetCheckpoint, FleetConfig, FleetSim};
use relaxfault_relsim::node::{evaluate_node_with, EvalScratch, NodeOutcome};
use relaxfault_relsim::repro::{trial_digest, ReproCase};
use relaxfault_util::crashdump::CrashDump;
use relaxfault_util::json::Value;
use relaxfault_util::persist::Persist;
use relaxfault_util::prop::{Failed, Source};
use relaxfault_util::rng::Rng64;
use std::path::Path;

/// What a replay established.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The case name replayed.
    pub case: String,
    /// Whether the replay reproduced the recorded failure: digest match
    /// for engine cases, a failing property for property cases.
    pub reproduced: bool,
    /// Digest of the resampled population (engine cases with a non-empty
    /// lifetime).
    pub digest: Option<u64>,
    /// Per-arm outcomes of the replayed trial, labelled by mechanism
    /// (engine cases).
    pub outcomes: Vec<(String, NodeOutcome)>,
    /// Invariant or property failures observed during the replay — the
    /// recorded defect, seen again.
    pub failures: Vec<String>,
}

/// Replays a repro case.
///
/// # Errors
///
/// Returns a message if the case is malformed (unknown property name,
/// engine case without scenarios, arms disagreeing on geometry).
pub fn replay(case: &ReproCase) -> Result<ReplayReport, String> {
    if !case.prop_choices.is_empty() {
        return replay_property(case);
    }
    replay_engine(case)
}

fn replay_property(case: &ReproCase) -> Result<ReplayReport, String> {
    let (_, property) = PROP_CASES
        .iter()
        .find(|(name, _)| *name == case.case)
        .ok_or_else(|| format!("unknown property case {:?}", case.case))?;
    let mut src = Source::from_choices(case.prop_choices.clone());
    let mut failures = Vec::new();
    match property(&mut src) {
        Ok(()) => {}
        Err(Failed::Assumption) => {
            failures.push("replayed stream discarded by prop_assume".into());
        }
        Err(Failed::Assertion(msg)) => failures.push(msg),
    }
    Ok(ReplayReport {
        case: case.case.clone(),
        reproduced: failures.iter().any(|f| !f.contains("prop_assume")),
        digest: None,
        outcomes: Vec::new(),
        failures,
    })
}

fn replay_engine(case: &ReproCase) -> Result<ReplayReport, String> {
    if case.scenarios.is_empty() {
        return Err("engine case has no scenario arms".into());
    }
    let cfg = case.scenarios[0].dram;
    if !case.scenarios.iter().all(|s| s.dram == cfg) {
        return Err("scenario arms disagree on DRAM geometry".into());
    }
    // All arms of one group share a fault model by construction; rebuild
    // the group's sampler from the first arm.
    let sampler = FaultSampler::new(&case.scenarios[0].fault_model, &cfg);

    // The exact engine stream: `trial_is_clean` consumes the first draw of
    // the sample stream, and `sample_faulty_into` continues from there.
    let mut sample_rng = Rng64::seed_from_u64(sample_rng_seed(case.seed, case.trial, case.group));
    let mut node = NodeFaults::default();
    if !sampler.trial_is_clean(&mut sample_rng) {
        sampler.sample_faulty_into(&mut sample_rng, &mut node);
    }
    let digest = trial_digest(&node);
    let mut failures = Vec::new();
    if let Err(e) = node.check_invariants(&cfg) {
        failures.push(format!("sampled population: {e}"));
    }

    let mut outcomes = Vec::new();
    for s in &case.scenarios {
        let mut eval_rng = Rng64::seed_from_u64(eval_rng_seed(case.seed, case.trial));
        let mut scratch = EvalScratch::new();
        let out = evaluate_node_with(s, &node, &mut eval_rng, &mut scratch);
        if let Err(e) = scratch.check_invariants() {
            failures.push(format!("{} planner: {e}", s.mechanism.label()));
        }
        outcomes.push((s.mechanism.label(), out));
    }

    Ok(ReplayReport {
        case: case.case.clone(),
        reproduced: case.digest.is_none_or(|d| d == digest),
        digest: Some(digest),
        outcomes,
        failures,
    })
}

/// A persisted artifact the replayer can re-execute, dispatched by the
/// JSON `kind` header.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadedCase {
    /// A failing-trial repro case ([`ReproCase::KIND`]).
    Repro(ReproCase),
    /// A fleet checkpoint ([`FleetCheckpoint::KIND`]).
    Fleet(FleetCheckpoint),
    /// A crash dump ([`CrashDump::KIND`]) from a run that died.
    Crash(CrashDump),
}

/// Loads a persisted JSON artifact and dispatches it by `kind`.
///
/// # Errors
///
/// Returns a path-contextualized message when the file is unreadable,
/// malformed, or of an unknown kind.
pub fn load_any(path: &Path) -> Result<LoadedCase, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let v = Value::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{}: missing kind header", path.display()))?;
    let ctx = |e: String| format!("{}: {e}", path.display());
    match kind {
        k if k == ReproCase::KIND => ReproCase::from_json(&v).map(LoadedCase::Repro).map_err(ctx),
        k if k == FleetCheckpoint::KIND => FleetCheckpoint::from_json(&v)
            .map(LoadedCase::Fleet)
            .map_err(ctx),
        k if k == CrashDump::KIND => CrashDump::from_json(&v).map(LoadedCase::Crash).map_err(ctx),
        other => Err(format!(
            "{}: unknown kind {other:?} (expected {:?}, {:?}, or {:?})",
            path.display(),
            ReproCase::KIND,
            FleetCheckpoint::KIND,
            CrashDump::KIND
        )),
    }
}

/// Replays the fleet checkpoint embedded in a crash dump: the dump's
/// coordinates are only trustworthy up to the last durable boundary, so
/// the proof is exactly [`replay_fleet`] on that checkpoint, labelled
/// with the recorded cause of death.
///
/// # Errors
///
/// Returns a message when the dump carries no checkpoint (a plain panic,
/// nothing durable to re-execute) or the embedded document fails the
/// strict [`FleetCheckpoint`] deserializer.
pub fn replay_crash_dump(dump: &CrashDump) -> Result<ReplayReport, String> {
    let ckpt = dump
        .checkpoint
        .as_ref()
        .ok_or("crash dump carries no checkpoint — nothing durable to replay")?;
    let ckpt = FleetCheckpoint::from_json(ckpt).map_err(|e| format!("embedded checkpoint: {e}"))?;
    let mut report = replay_fleet(&ckpt)?;
    report.case = format!("crash_dump({}): {}", dump.run, report.case);
    Ok(report)
}

/// Replays a fleet checkpoint: rebuilds the fleet from the embedded
/// configuration, re-runs it through the recorded number of epochs, and
/// compares every shard digest and per-shard arm metric against the
/// checkpoint. `reproduced` means the checkpoint is a bit-exact snapshot
/// of a real run — a tampered or drifted file reports each mismatch in
/// `failures`.
///
/// # Errors
///
/// Returns a message when the checkpoint's configuration cannot be
/// rebuilt (e.g. arms disagreeing on geometry) or the re-run fails.
pub fn replay_fleet(ckpt: &FleetCheckpoint) -> Result<ReplayReport, String> {
    if ckpt.scenarios.is_empty() {
        return Err("fleet checkpoint has no scenario arms".into());
    }
    let cfg = FleetConfig {
        nodes: ckpt.nodes,
        epochs: ckpt.epochs,
        shards: ckpt.shards,
        seed: ckpt.seed,
        threads: 1,
        ckpt_dir: None,
        crash_at: None,
    };
    let mut sim = FleetSim::new(ckpt.scenarios.clone(), cfg);
    for _ in 0..ckpt.completed_epochs {
        sim.step()?;
    }
    let rebuilt = sim.checkpoint();
    let mut failures = Vec::new();
    if rebuilt.config_digest != ckpt.config_digest {
        failures.push(format!(
            "config digest: rebuilt {:#018x}, checkpoint {:#018x}",
            rebuilt.config_digest, ckpt.config_digest
        ));
    }
    for (si, (a, b)) in rebuilt
        .shard_digests
        .iter()
        .zip(&ckpt.shard_digests)
        .enumerate()
    {
        if a != b {
            failures.push(format!(
                "shard {si} population digest: rebuilt {a:#018x}, checkpoint {b:#018x}"
            ));
        }
    }
    for (si, (a, b)) in rebuilt
        .shard_metrics
        .iter()
        .zip(&ckpt.shard_metrics)
        .enumerate()
    {
        if a != b {
            failures.push(format!("shard {si} metrics diverge from checkpoint"));
        }
    }
    if rebuilt.dirty_evals != ckpt.dirty_evals {
        failures.push(format!(
            "dirty_evals: rebuilt {}, checkpoint {}",
            rebuilt.dirty_evals, ckpt.dirty_evals
        ));
    }
    Ok(ReplayReport {
        case: format!(
            "fleet_checkpoint@{}/{} epochs",
            ckpt.completed_epochs, ckpt.epochs
        ),
        reproduced: failures.is_empty(),
        digest: Some(sim.population_digest()),
        outcomes: Vec::new(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_relsim::scenario::{Mechanism, Scenario};

    /// A deterministic engine case: any (seed, trial, group) replays to the
    /// same digest, so a case recorded from one replay reproduces under a
    /// second.
    #[test]
    fn engine_replay_is_deterministic_and_digest_checked() {
        let scenarios = vec![Scenario::isca16_baseline()
            .with_fit_scale(200.0)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })];
        // Find a faulty trial so the digest covers a non-empty lifetime.
        let sampler = FaultSampler::new(&scenarios[0].fault_model, &scenarios[0].dram);
        let trial = (0..10_000)
            .find(|&t| {
                let mut rng = Rng64::seed_from_u64(sample_rng_seed(11, t, 0));
                !sampler.trial_is_clean(&mut rng)
            })
            .expect("a faulty trial exists at 200x FIT");
        let mut case = ReproCase {
            case: "engine_check".into(),
            reason: "test".into(),
            seed: 11,
            trial,
            group: 0,
            epoch: None,
            scenarios,
            digest: None,
            prop_choices: Vec::new(),
        };
        let first = replay(&case).unwrap();
        assert!(first.reproduced, "digest-less case always reproduces");
        let digest = first.digest.expect("faulty trial has a digest");
        // Pin the digest: an exact replay still reproduces...
        case.digest = Some(digest);
        let second = replay(&case).unwrap();
        assert!(second.reproduced);
        assert_eq!(second.outcomes, first.outcomes);
        // ...and a tampered trial coordinate is caught.
        case.trial += 1;
        let third = replay(&case).unwrap();
        assert!(!third.reproduced, "different trial must change the digest");
    }

    #[test]
    fn fleet_checkpoint_replay_reproduces_and_catches_tampering() {
        let arms = vec![
            Scenario::isca16_baseline()
                .with_fit_scale(150.0)
                .with_mechanism(Mechanism::None),
            Scenario::isca16_baseline()
                .with_fit_scale(150.0)
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
        ];
        let mut sim = FleetSim::new(arms, FleetConfig::quick(600, 3, 77));
        sim.step().unwrap();
        sim.step().unwrap();
        let mut ckpt = sim.checkpoint();
        let report = replay_fleet(&ckpt).unwrap();
        assert!(
            report.reproduced,
            "honest checkpoint replays: {:?}",
            report.failures
        );
        // A tampered metric is caught shard by shard.
        ckpt.shard_metrics[0][0].dues += 1;
        let report = replay_fleet(&ckpt).unwrap();
        assert!(!report.reproduced);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("shard 0 metrics")));
    }

    #[test]
    fn load_any_dispatches_by_kind() {
        let dir = std::env::temp_dir().join(format!("rf_load_any_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repro = ReproCase {
            case: "engine_check".into(),
            reason: "test".into(),
            seed: 3,
            trial: 0,
            group: 0,
            epoch: None,
            scenarios: vec![Scenario::isca16_baseline()],
            digest: None,
            prop_choices: Vec::new(),
        };
        let repro_path = dir.join("case.json");
        repro.save(&repro_path).unwrap();
        assert_eq!(load_any(&repro_path).unwrap(), LoadedCase::Repro(repro));

        let sim = FleetSim::new(
            vec![Scenario::isca16_baseline()],
            FleetConfig::quick(50, 2, 1),
        );
        let ckpt = sim.checkpoint();
        let ckpt_path = dir.join("ckpt.json");
        ckpt.save(&ckpt_path).unwrap();
        assert_eq!(load_any(&ckpt_path).unwrap(), LoadedCase::Fleet(ckpt));

        let alien = dir.join("alien.json");
        std::fs::write(&alien, "{\"kind\": \"metrics_snapshot\"}").unwrap();
        let err = load_any(&alien).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A minimal structurally-valid crash dump wrapping `checkpoint`.
    fn dump_with(checkpoint: Option<Value>) -> CrashDump {
        let empty = || Value::Object(Vec::new());
        CrashDump {
            run: "crashtest".into(),
            reason: "simulated crash mid-epoch 1".into(),
            wall_clock_ms: 1,
            snapshot: Value::object([
                ("manifest", empty()),
                ("counters", empty()),
                ("gauges", empty()),
                ("histograms", empty()),
            ]),
            flight: Value::Array(Vec::new()),
            checkpoint,
        }
    }

    #[test]
    fn crash_dump_replay_proves_the_embedded_checkpoint() {
        let arms = vec![Scenario::isca16_baseline()
            .with_fit_scale(150.0)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })];
        let mut sim = FleetSim::new(arms, FleetConfig::quick(500, 3, 99));
        sim.step().unwrap();
        sim.step().unwrap();
        let ckpt = sim.checkpoint();

        // An honest embedded checkpoint replays bit-exactly...
        let dump = dump_with(Some(ckpt.to_json()));
        let report = replay_crash_dump(&dump).unwrap();
        assert!(report.reproduced, "failures: {:?}", report.failures);
        assert!(report.case.starts_with("crash_dump(crashtest)"));

        // ...a tampered one is caught by the same shard-level comparison...
        let mut bad = ckpt.clone();
        bad.shard_metrics[0][0].dues += 1;
        let report = replay_crash_dump(&dump_with(Some(bad.to_json()))).unwrap();
        assert!(!report.reproduced);

        // ...and a checkpoint-less dump (plain panic) is an explicit error,
        // not a vacuous success.
        let err = replay_crash_dump(&dump_with(None)).unwrap_err();
        assert!(err.contains("no checkpoint"), "{err}");
    }

    #[test]
    fn load_any_dispatches_crash_dumps() {
        use relaxfault_util::persist::Persist as _;
        let dir = std::env::temp_dir().join(format!("rf_load_crash_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sim = FleetSim::new(
            vec![Scenario::isca16_baseline()],
            FleetConfig::quick(50, 2, 1),
        );
        let dump = dump_with(Some(sim.checkpoint().to_json()));
        let path = dir.join("run.crashdump.json");
        dump.save(&path).unwrap();
        assert_eq!(load_any(&path).unwrap(), LoadedCase::Crash(dump));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn property_replay_reproduces_a_recorded_failure() {
        // A stream that decodes to a failing input for a property that
        // rejects everything reproduces trivially; the point is the
        // dispatch and verdict plumbing.
        let case = ReproCase {
            case: "no_such_property".into(),
            reason: "test".into(),
            seed: 0,
            trial: 0,
            group: 0,
            epoch: None,
            scenarios: Vec::new(),
            digest: None,
            prop_choices: vec![1, 2, 3],
        };
        assert!(replay(&case).is_err(), "unknown property names are errors");
    }
}
