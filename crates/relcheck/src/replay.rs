//! Deterministic re-execution of persisted repro cases.
//!
//! A [`ReproCase`] comes in two flavours and this module replays both:
//!
//! * **engine cases** (`RF_CHECK=1` failures) carry the scenario arms of
//!   the failing fault-model group plus the `(seed, trial, group)` stream
//!   coordinates — replay re-derives the exact RNG streams, resamples the
//!   fault population, and proves bit-exactness by comparing its FNV-1a
//!   digest against the one recorded at failure time;
//! * **property cases** (oracle failures) carry the shrunk choice stream —
//!   replay decodes it back through the named property from
//!   [`crate::oracle::PROP_CASES`] and reproduces iff the property fails
//!   again.

use crate::oracle::PROP_CASES;
use relaxfault_faults::{FaultSampler, NodeFaults};
use relaxfault_relsim::node::{evaluate_node_with, EvalScratch, NodeOutcome};
use relaxfault_relsim::repro::{trial_digest, ReproCase};
use relaxfault_util::prop::{Failed, Source};
use relaxfault_util::rng::{mix64, Rng64};

/// What a replay established.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The case name replayed.
    pub case: String,
    /// Whether the replay reproduced the recorded failure: digest match
    /// for engine cases, a failing property for property cases.
    pub reproduced: bool,
    /// Digest of the resampled population (engine cases with a non-empty
    /// lifetime).
    pub digest: Option<u64>,
    /// Per-arm outcomes of the replayed trial, labelled by mechanism
    /// (engine cases).
    pub outcomes: Vec<(String, NodeOutcome)>,
    /// Invariant or property failures observed during the replay — the
    /// recorded defect, seen again.
    pub failures: Vec<String>,
}

/// Replays a repro case.
///
/// # Errors
///
/// Returns a message if the case is malformed (unknown property name,
/// engine case without scenarios, arms disagreeing on geometry).
pub fn replay(case: &ReproCase) -> Result<ReplayReport, String> {
    if !case.prop_choices.is_empty() {
        return replay_property(case);
    }
    replay_engine(case)
}

fn replay_property(case: &ReproCase) -> Result<ReplayReport, String> {
    let (_, property) = PROP_CASES
        .iter()
        .find(|(name, _)| *name == case.case)
        .ok_or_else(|| format!("unknown property case {:?}", case.case))?;
    let mut src = Source::from_choices(case.prop_choices.clone());
    let mut failures = Vec::new();
    match property(&mut src) {
        Ok(()) => {}
        Err(Failed::Assumption) => {
            failures.push("replayed stream discarded by prop_assume".into());
        }
        Err(Failed::Assertion(msg)) => failures.push(msg),
    }
    Ok(ReplayReport {
        case: case.case.clone(),
        reproduced: failures.iter().any(|f| !f.contains("prop_assume")),
        digest: None,
        outcomes: Vec::new(),
        failures,
    })
}

fn replay_engine(case: &ReproCase) -> Result<ReplayReport, String> {
    if case.scenarios.is_empty() {
        return Err("engine case has no scenario arms".into());
    }
    let cfg = case.scenarios[0].dram;
    if !case.scenarios.iter().all(|s| s.dram == cfg) {
        return Err("scenario arms disagree on DRAM geometry".into());
    }
    // All arms of one group share a fault model by construction; rebuild
    // the group's sampler from the first arm.
    let sampler = FaultSampler::new(&case.scenarios[0].fault_model, &cfg);

    // The exact engine stream: `trial_is_clean` consumes the first draw of
    // the sample stream, and `sample_faulty_into` continues from there.
    let mut sample_rng = Rng64::seed_from_u64(mix64(case.seed, case.trial, case.group));
    let mut node = NodeFaults::default();
    if !sampler.trial_is_clean(&mut sample_rng) {
        sampler.sample_faulty_into(&mut sample_rng, &mut node);
    }
    let digest = trial_digest(&node);
    let mut failures = Vec::new();
    if let Err(e) = node.check_invariants(&cfg) {
        failures.push(format!("sampled population: {e}"));
    }

    let mut outcomes = Vec::new();
    for s in &case.scenarios {
        let mut eval_rng = Rng64::seed_from_u64(mix64(case.seed ^ 0xECC, case.trial, 0));
        let mut scratch = EvalScratch::new();
        let out = evaluate_node_with(s, &node, &mut eval_rng, &mut scratch);
        if let Err(e) = scratch.check_invariants() {
            failures.push(format!("{} planner: {e}", s.mechanism.label()));
        }
        outcomes.push((s.mechanism.label(), out));
    }

    Ok(ReplayReport {
        case: case.case.clone(),
        reproduced: case.digest.is_none_or(|d| d == digest),
        digest: Some(digest),
        outcomes,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_relsim::scenario::{Mechanism, Scenario};

    /// A deterministic engine case: any (seed, trial, group) replays to the
    /// same digest, so a case recorded from one replay reproduces under a
    /// second.
    #[test]
    fn engine_replay_is_deterministic_and_digest_checked() {
        let scenarios = vec![Scenario::isca16_baseline()
            .with_fit_scale(200.0)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })];
        // Find a faulty trial so the digest covers a non-empty lifetime.
        let sampler = FaultSampler::new(&scenarios[0].fault_model, &scenarios[0].dram);
        let trial = (0..10_000)
            .find(|&t| {
                let mut rng = Rng64::seed_from_u64(mix64(11, t, 0));
                !sampler.trial_is_clean(&mut rng)
            })
            .expect("a faulty trial exists at 200x FIT");
        let mut case = ReproCase {
            case: "engine_check".into(),
            reason: "test".into(),
            seed: 11,
            trial,
            group: 0,
            scenarios,
            digest: None,
            prop_choices: Vec::new(),
        };
        let first = replay(&case).unwrap();
        assert!(first.reproduced, "digest-less case always reproduces");
        let digest = first.digest.expect("faulty trial has a digest");
        // Pin the digest: an exact replay still reproduces...
        case.digest = Some(digest);
        let second = replay(&case).unwrap();
        assert!(second.reproduced);
        assert_eq!(second.outcomes, first.outcomes);
        // ...and a tampered trial coordinate is caught.
        case.trial += 1;
        let third = replay(&case).unwrap();
        assert!(!third.reproduced, "different trial must change the digest");
    }

    #[test]
    fn property_replay_reproduces_a_recorded_failure() {
        // A stream that decodes to a failing input for a property that
        // rejects everything reproduces trivially; the point is the
        // dispatch and verdict plumbing.
        let case = ReproCase {
            case: "no_such_property".into(),
            reason: "test".into(),
            seed: 0,
            trial: 0,
            group: 0,
            scenarios: Vec::new(),
            digest: None,
            prop_choices: vec![1, 2, 3],
        };
        assert!(replay(&case).is_err(), "unknown property names are errors");
    }
}
