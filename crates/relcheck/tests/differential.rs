//! Differential oracle suite: production planners, trial evaluation, and
//! the engine against their naive references, plus a seeded-mutation check
//! that the harness actually catches the class of bug it exists for.

use relaxfault_cache::{CacheConfig, Indexing};
use relaxfault_relcheck::oracle::{
    self, check_with_repro, engine_oracle_property, eval_oracle_property, free_oracle_property,
    ppr_oracle_property, relax_oracle_property, NaiveOccupancy,
};
use relaxfault_util::prop::{self, Source};
use relaxfault_util::{prop_assert, prop_assert_eq};

/// RelaxFault planner vs direct-encode, two-pass reference: 1000 generated
/// corner-biased offer sequences, verdicts and full occupancy state
/// bit-identical after every offer.
#[test]
fn relax_planner_matches_naive_reference() {
    check_with_repro("relax_oracle", 1000, relax_oracle_property);
}

/// FreeFault planner vs physical-address reference, same regime.
#[test]
fn free_planner_matches_naive_reference() {
    check_with_repro("free_oracle", 1000, free_oracle_property);
}

/// PPR planner vs ordered-map reference, default and custom groupings.
#[test]
fn ppr_planner_matches_naive_reference() {
    check_with_repro("ppr_oracle", 1000, ppr_oracle_property);
}

/// Scratch-reusing trial evaluation vs the allocate-everything reference,
/// including back-to-back trials through one scratch (planner reset).
#[test]
fn trial_evaluation_matches_allocating_reference() {
    check_with_repro("eval_oracle", 200, eval_oracle_property);
}

/// The parallel fast-pathed engine vs the single-threaded reference, at
/// generated thread counts and chunk sizes.
#[test]
fn engine_matches_single_threaded_reference() {
    check_with_repro("engine_oracle", 20, engine_oracle_property);
}

/// A deliberately broken occupancy tracker: the production one-pass
/// insert, with the rollback on rejection *dropped* — exactly the bug the
/// `try_add` atomicity contract guards against. The differential harness
/// must catch it.
struct BuggyOccupancy {
    max_ways: u32,
    lines: std::collections::HashSet<u64>,
    per_set: Vec<u32>,
}

impl BuggyOccupancy {
    fn new(sets: usize, max_ways: u32) -> Self {
        Self {
            max_ways,
            lines: std::collections::HashSet::new(),
            per_set: vec![0; sets],
        }
    }

    fn try_add(&mut self, cand: &[(u64, u64)]) -> bool {
        for &(set, key) in cand {
            if !self.lines.insert(key) {
                continue;
            }
            let c = &mut self.per_set[set as usize];
            *c += 1;
            if *c > self.max_ways {
                // BUG under test: abort without rolling back anything this
                // call already inserted.
                return false;
            }
        }
        true
    }
}

#[test]
fn seeded_rollback_mutation_is_caught() {
    // A tiny 8-set, 2-way cache so generated offers collide constantly.
    let llc = CacheConfig {
        size_bytes: 8 * 2 * 64,
        ways: 2,
        line_bytes: 64,
        indexing: Indexing::Canonical,
    };
    let ce = prop::find_counterexample(500, |src: &mut Source| {
        let max_ways = src.u32(1, 2);
        let mut buggy = BuggyOccupancy::new(8, max_ways);
        let mut naive = NaiveOccupancy::new(&llc, max_ways);
        let offers = src.vec(1, 8, |s| s.vec(1, 6, |s2| (s2.u64(0, 7), s2.u64(0, 31))));
        for offer in &offers {
            let a = buggy.try_add(offer);
            let b = naive.try_add(offer);
            prop_assert_eq!(a, b, "verdict diverged");
            let mut keys: Vec<u64> = buggy.lines.iter().copied().collect();
            keys.sort_unstable();
            prop_assert_eq!(keys, naive.line_keys(), "locked lines diverged");
        }
        Ok(())
    });
    assert!(
        ce.is_some(),
        "the dropped rollback must be caught by the differential harness"
    );
}

/// `run_smoke` (the CI entry point) passes at its reduced default count.
#[test]
fn smoke_entry_point_passes() {
    assert_eq!(oracle::run_smoke(10), Ok(()));
}

/// The naive occupancy itself honours the atomicity contract it is used
/// to enforce: a rejected offer leaves it untouched.
#[test]
fn naive_occupancy_rejection_is_atomic() {
    let llc = CacheConfig::isca16_llc_no_hash();
    prop::check(200, |src| {
        let mut occ = NaiveOccupancy::new(&llc, 1);
        let accepted = src.vec(0, 4, |s| (s.u64(0, 7), s.u64(0, 15)));
        occ.try_add(&accepted);
        let before_keys = occ.line_keys();
        let before_sets = occ.occupied_sets();
        // An offer that reuses an occupied set with a fresh key must be
        // rejected and leave no trace.
        if let Some(&(set, _)) = occ.occupied_sets().first() {
            let offer = [(set as u64, 1000), (set as u64, 1001)];
            prop_assert!(!occ.try_add(&offer), "two fresh lines cannot fit one way");
            prop_assert_eq!(occ.line_keys(), before_keys);
            prop_assert_eq!(occ.occupied_sets(), before_sets);
        }
        Ok(())
    });
}
