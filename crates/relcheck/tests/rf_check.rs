//! End-to-end `RF_CHECK` round trip: a forced in-engine failure must
//! persist a replayable repro case, and `relcheck` replay must reproduce
//! it bit-exactly (digest match).
//!
//! This test owns its integration-test binary: the engine resolves
//! `RF_CHECK` / `RF_CHECK_FAIL_TRIAL` once per process through a
//! `OnceLock`, so the env vars must be set before any other test in the
//! same process touches the engine.

use relaxfault_faults::{FaultSampler, NodeFaults};
use relaxfault_relcheck::replay::replay;
use relaxfault_relsim::engine::{run_scenarios, RunConfig};
use relaxfault_relsim::repro::{trial_digest, ReproCase};
use relaxfault_relsim::scenario::{Mechanism, Scenario};
use relaxfault_util::json::Value;
use relaxfault_util::rng::{mix64, Rng64};

#[test]
fn forced_engine_failure_round_trips_through_replay() {
    let seed = 20160618;
    let scenarios = vec![
        Scenario::isca16_baseline()
            .with_fit_scale(200.0)
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        Scenario::isca16_baseline()
            .with_fit_scale(200.0)
            .with_mechanism(Mechanism::Ppr),
    ];
    // The forced failure fires after sampling, so pick a trial the
    // zero-fault fast path does not skip.
    let sampler = FaultSampler::new(&scenarios[0].fault_model, &scenarios[0].dram);
    let trial = (0..10_000)
        .find(|&t| {
            let mut rng = Rng64::seed_from_u64(mix64(seed, t, 0));
            !sampler.trial_is_clean(&mut rng)
        })
        .expect("a faulty trial exists at 200x FIT");

    let results_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("rf_check_results");
    let _ = std::fs::remove_dir_all(&results_dir);
    std::env::set_var("RF_RESULTS_DIR", &results_dir);
    std::env::set_var("RF_CHECK", "1");
    std::env::set_var("RF_CHECK_FAIL_TRIAL", trial.to_string());

    let run = RunConfig {
        trials: trial + 1,
        seed,
        threads: 2,
        chunk_size: 4,
    };
    let panicked = std::panic::catch_unwind(|| run_scenarios(&scenarios, &run));
    assert!(panicked.is_err(), "the forced RF_CHECK failure must panic");

    // Exactly one repro case lands in <results>/relcheck.
    let dir = results_dir.join("relcheck");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("repro directory exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1, "one forced failure, one repro: {files:?}");
    let path = files.pop().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let case = ReproCase::from_json(&Value::parse(&text).unwrap()).unwrap();
    assert_eq!(case.case, "engine_check");
    assert_eq!(case.seed, seed);
    assert_eq!(case.trial, trial);
    assert_eq!(case.group, 0);
    assert!(case.reason.contains("forced failure"));
    // Both arms share one fault model, so the failing group carries both.
    assert_eq!(case.scenarios, scenarios);

    // The recorded digest matches an independent resample of the stream.
    let mut rng = Rng64::seed_from_u64(mix64(seed, trial, 0));
    assert!(!sampler.trial_is_clean(&mut rng));
    let mut node = NodeFaults::default();
    sampler.sample_faulty_into(&mut rng, &mut node);
    assert_eq!(case.digest, Some(trial_digest(&node)));

    // And the replay agrees: same digest, same verdict, no invariant
    // failures (the forced trigger is artificial, not a real violation).
    let report = replay(&case).expect("replayable case");
    assert!(report.reproduced, "replay must be bit-exact: {report:?}");
    assert_eq!(report.digest, case.digest);
    assert_eq!(report.outcomes.len(), 2);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
}
