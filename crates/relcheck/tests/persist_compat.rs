//! Backward-compatibility regression: repro cases written by the PR 5
//! persistence code (schema v1, before the `epoch` field and the unified
//! `Persist` layer existed) must still validate and replay bit-exactly
//! through today's code paths.

use relaxfault_relcheck::replay::{load_any, replay, LoadedCase};
use relaxfault_relsim::repro::ReproCase;
use relaxfault_relsim::scenario::{Mechanism, Scenario};
use relaxfault_util::json::Value;
use relaxfault_util::persist::Persist;

/// Reconstructs the exact v1 on-disk layout: the field set and ordering
/// the PR 5 writer produced — `schema_version: 1`, no `epoch` key, hex
/// seed/digest/choices, scenarios through the `Scenario` JSON layer.
fn v1_case_text(scenarios: &[Scenario], seed: u64, trial: u64, digest: Option<u64>) -> String {
    let hex = |v: u64| Value::from(format!("{v:#018x}"));
    Value::object([
        ("schema_version", Value::from(1u64)),
        ("kind", Value::from("relcheck_repro")),
        ("case", Value::from("engine_check")),
        ("reason", Value::from("forced failure (pre-epoch writer)")),
        ("seed", hex(seed)),
        ("trial", Value::from(trial)),
        ("group", Value::from(0u64)),
        (
            "scenarios",
            Value::Array(scenarios.iter().map(Scenario::to_json).collect()),
        ),
        (
            "digest",
            match digest {
                Some(d) => hex(d),
                None => Value::Null,
            },
        ),
        ("prop_choices", Value::Array(Vec::new())),
    ])
    .to_pretty()
}

#[test]
fn v1_repro_case_validates_and_replays_bit_exactly() {
    let scenarios = vec![Scenario::isca16_baseline()
        .with_fit_scale(200.0)
        .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })];

    // A digest-less v1 case first: parse through the unified layer, then
    // replay it to learn the population digest of its (seed, trial).
    let text = v1_case_text(&scenarios, 11, 202, None);
    let case = ReproCase::parse_str(&text).expect("v1 layout parses through Persist");
    assert_eq!(case.epoch, None, "v1 cases decode with no epoch");
    assert_eq!(case.seed, 11);
    let first = replay(&case).expect("v1 case replays");
    assert!(first.reproduced, "digest-less case always reproduces");
    let digest = first.digest.expect("replay digests the population");

    // Re-author the v1 file with the recorded digest, as PR 5 did at
    // failure time. Replaying the pinned case through today's engine must
    // reproduce bit-exactly: same RNG stream derivation, same sampler,
    // same digest.
    let pinned = v1_case_text(&scenarios, 11, 202, Some(digest));
    let case = ReproCase::parse_str(&pinned).expect("pinned v1 layout parses");
    let replayed = replay(&case).expect("pinned v1 case replays");
    assert!(
        replayed.reproduced,
        "v1 digest must match today's replay bit-exactly"
    );
    assert_eq!(replayed.digest, Some(digest));
    assert_eq!(replayed.outcomes, first.outcomes);

    // The file-level dispatch path CI uses accepts the old kind too.
    let dir = std::env::temp_dir().join(format!("rf_persist_compat_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("v1_case.json");
    std::fs::write(&path, &pinned).unwrap();
    match load_any(&path).expect("load_any dispatches v1 repro files") {
        LoadedCase::Repro(loaded) => assert_eq!(loaded, case),
        LoadedCase::Fleet(_) => panic!("repro file dispatched as fleet checkpoint"),
        LoadedCase::Crash(_) => panic!("repro file dispatched as crash dump"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_round_trip_upgrades_to_v2() {
    // Writing a loaded v1 case back out produces a v2 file (with an
    // explicit null epoch) that decodes to the same case — upgrade on
    // rewrite, never silent data loss.
    let scenarios = vec![Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr)];
    let case = ReproCase::parse_str(&v1_case_text(&scenarios, 7, 3, None)).unwrap();
    let rewritten = Persist::to_json(&case);
    assert_eq!(
        rewritten.get("schema_version").and_then(Value::as_f64),
        Some(2.0),
        "rewrites are at the current schema"
    );
    assert!(
        matches!(rewritten.get("epoch"), Some(Value::Null)),
        "the upgraded file carries the epoch field explicitly"
    );
    assert_eq!(ReproCase::from_json(&rewritten).unwrap(), case);
}
