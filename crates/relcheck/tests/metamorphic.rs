//! Metamorphic properties of the GF(2) mapping algebra.
//!
//! The production planners lean on linearity: the XOR-delta candidate
//! enumeration assumes `repair_addr` decomposes into independent row and
//! column-group contributions, and the XOR-folded set index assumes
//! `set_of` distributes over XOR. These tests pin the algebra itself, so a
//! mapping change that silently breaks a linearity assumption fails here
//! even if every differential oracle still agrees.

use relaxfault_cache::CacheConfig;
use relaxfault_core::mapping::{RelaxMap, RepairLine};
use relaxfault_core::plan::{RelaxFault, RepairMechanism};
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_relcheck::gen;
use relaxfault_util::prop::{self, Source};
use relaxfault_util::{prop_assert, prop_assert_eq};

fn dram() -> DramConfig {
    DramConfig::isca16_reliability()
}

fn arb_llc(src: &mut Source) -> CacheConfig {
    if src.bool() {
        CacheConfig::isca16_llc()
    } else {
        CacheConfig::isca16_llc_no_hash()
    }
}

/// `set_of` is GF(2)-linear for both indexings: the set of an XOR of two
/// addresses is the XOR of their sets.
#[test]
fn set_index_distributes_over_xor() {
    prop::check(500, |src| {
        let llc = arb_llc(src);
        let a = src.u64(0, u64::MAX);
        let b = src.u64(0, u64::MAX);
        prop_assert_eq!(
            llc.set_of(a ^ b),
            llc.set_of(a) ^ llc.set_of(b),
            "set_of must distribute over xor"
        );
        Ok(())
    });
}

/// The XOR fold keeps the tag untouched, so `(set, tag)` stays unique and
/// the canonical index is recoverable: `index = set ^ set_of(tag-only
/// address)`. This invertibility is why hashing spreads faults across sets
/// without ever aliasing two distinct blocks.
#[test]
fn xorfold_round_trips_through_the_tag() {
    let llc = CacheConfig::isca16_llc();
    let sb = llc.set_bits();
    let off = llc.offset_bits();
    prop::check(500, |src| {
        let block = src.u64(0, (1 << 40) - 1);
        let index = block & ((1 << sb) - 1);
        let tag = block >> sb;
        let set = llc.set_of(block << off);
        let fold = llc.set_of((tag << sb) << off);
        prop_assert_eq!(
            set ^ fold,
            index,
            "index must be recoverable from (set, tag)"
        );
        Ok(())
    });
}

/// `repair_addr` decomposes over GF(2): the contribution of (row,
/// colgroup) relative to (0, 0) is the same at every (rank, device, bank)
/// base — exactly the assumption behind the production XOR-delta tables.
#[test]
fn repair_addr_row_and_colgroup_deltas_are_base_independent() {
    let cfg = dram();
    prop::check(400, |src| {
        let llc = arb_llc(src);
        let map = RelaxMap::new(&cfg, &llc);
        let base = RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        };
        let line = |rank: RankId, device: u32, bank: u32, row: u32, colgroup: u32| RepairLine {
            rank,
            device,
            bank,
            row,
            colgroup,
        };
        let rank = RankId {
            channel: src.u32(0, cfg.channels - 1),
            dimm: src.u32(0, cfg.dimms_per_channel - 1),
            rank: src.u32(0, cfg.ranks_per_dimm - 1),
        };
        let device = src.u32(0, cfg.devices_per_rank() - 1);
        let bank = src.u32(0, cfg.banks - 1);
        let row = src.u32(0, cfg.rows - 1);
        let cg = src.u32(0, map.colgroups_per_row() - 1);

        // Delta measured at the origin base...
        let d_row =
            map.repair_addr(&line(base, 0, 0, row, 0)) ^ map.repair_addr(&line(base, 0, 0, 0, 0));
        let d_cg =
            map.repair_addr(&line(base, 0, 0, 0, cg)) ^ map.repair_addr(&line(base, 0, 0, 0, 0));
        // ...must reproduce the full address at any other base.
        let full = map.repair_addr(&line(rank, device, bank, row, cg));
        let composed = map.repair_addr(&line(rank, device, bank, 0, 0)) ^ d_row ^ d_cg;
        prop_assert_eq!(
            full,
            composed,
            "row/colgroup deltas must be base-independent"
        );

        // The row delta itself splits into low-byte and high-byte parts —
        // the two-level table the production enumeration indexes.
        let lo = row & 0xFF;
        let hi = row & !0xFF;
        let d_lo =
            map.repair_addr(&line(base, 0, 0, lo, 0)) ^ map.repair_addr(&line(base, 0, 0, 0, 0));
        let d_hi =
            map.repair_addr(&line(base, 0, 0, hi, 0)) ^ map.repair_addr(&line(base, 0, 0, 0, 0));
        prop_assert_eq!(d_row, d_lo ^ d_hi, "row delta must split by byte");
        Ok(())
    });
}

/// The set index of a repair line decomposes the same way (it is
/// `set_of . repair_addr`, a composition of linear maps).
#[test]
fn repair_set_deltas_are_base_independent() {
    let cfg = dram();
    prop::check(400, |src| {
        let llc = arb_llc(src);
        let map = RelaxMap::new(&cfg, &llc);
        let base = RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        };
        let line = |rank: RankId, device: u32, bank: u32, row: u32, colgroup: u32| RepairLine {
            rank,
            device,
            bank,
            row,
            colgroup,
        };
        let rank = RankId {
            channel: src.u32(0, cfg.channels - 1),
            dimm: src.u32(0, cfg.dimms_per_channel - 1),
            rank: src.u32(0, cfg.ranks_per_dimm - 1),
        };
        let device = src.u32(0, cfg.devices_per_rank() - 1);
        let bank = src.u32(0, cfg.banks - 1);
        let row = src.u32(0, cfg.rows - 1);
        let cg = src.u32(0, map.colgroups_per_row() - 1);
        let d_row = map.set_of(&line(base, 0, 0, row, 0)) ^ map.set_of(&line(base, 0, 0, 0, 0));
        let d_cg = map.set_of(&line(base, 0, 0, 0, cg)) ^ map.set_of(&line(base, 0, 0, 0, 0));
        prop_assert_eq!(
            map.set_of(&line(rank, device, bank, row, cg)),
            map.set_of(&line(rank, device, bank, 0, 0)) ^ d_row ^ d_cg,
            "set deltas must be base-independent"
        );
        Ok(())
    });
}

/// Relabelling devices is a bijection on repair lines: the line count of
/// any offer is exactly invariant, and when two permuted runs both accept
/// the same offers they lock the same number of lines.
#[test]
fn device_permutation_preserves_coverage_counts() {
    let cfg = dram();
    prop::check(150, |src| {
        let llc = arb_llc(src);
        let max_ways = gen::arb_max_ways(src);
        let offers = gen::arb_offer_sequence(src, &cfg);
        let shift = src.u32(1, cfg.devices_per_rank() - 1);
        let permuted: Vec<Vec<_>> = offers
            .iter()
            .map(|offer| {
                offer
                    .iter()
                    .map(|r| {
                        let mut p = *r;
                        p.device = (p.device + shift) % cfg.devices_per_rank();
                        p
                    })
                    .collect()
            })
            .collect();
        let mut a = RelaxFault::new(&cfg, &llc, max_ways);
        let mut b = RelaxFault::new(&cfg, &llc, max_ways);
        let mut verdicts_match = true;
        for (offer, perm) in offers.iter().zip(&permuted) {
            prop_assert_eq!(
                a.lines_needed(offer),
                b.lines_needed(perm),
                "line demand must be device-order invariant"
            );
            let va = a.try_repair(offer);
            let vb = b.try_repair(perm);
            // Under tight way budgets the permutation can legitimately
            // change which offer collides; counts are only comparable
            // while the verdict histories agree.
            verdicts_match &= va == vb;
            if !verdicts_match {
                break;
            }
            prop_assert_eq!(
                a.lines_used(),
                b.lines_used(),
                "accepted line counts must be device-order invariant"
            );
        }
        prop_assert!(
            a.check_invariants().is_ok() && b.check_invariants().is_ok(),
            "invariants must hold under permutation"
        );
        Ok(())
    });
}
