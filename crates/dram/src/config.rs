//! Memory-system geometry: channels, DIMMs, ranks, devices, banks, subarrays.

/// Geometry of one node's DRAM system (paper Figure 1).
///
/// All structural counts must be powers of two (the address mapping scatters
/// bit fields), except the device counts per rank: an ECC DIMM has
/// `data_devices_per_rank + ecc_devices_per_rank` devices (18 for chipkill
/// with ×4 parts), and only the data devices appear in the 64-byte line.
///
/// # Examples
///
/// ```
/// let cfg = relaxfault_dram::DramConfig::isca16_reliability();
/// assert_eq!(cfg.line_bytes(), 64);
/// assert_eq!(cfg.dimms_per_node(), 8);
/// assert_eq!(cfg.node_bytes(), 64 << 30); // 8 × 8 GiB DIMMs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Independent memory channels per node.
    pub channels: u32,
    /// DIMMs sharing each channel.
    pub dimms_per_channel: u32,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u32,
    /// Devices per rank that carry data (16 for a 64-bit bus of ×4 parts).
    pub data_devices_per_rank: u32,
    /// Redundant devices per rank for ECC (2 for ×4 chipkill).
    pub ecc_devices_per_rank: u32,
    /// DQ width of each device in bits (×4 → 4).
    pub device_width: u32,
    /// Banks per device.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Column addresses per row (each selects `device_width` bits/device).
    pub cols: u32,
    /// Burst length (column addresses consumed per 64-byte access).
    pub burst_length: u32,
    /// Rows per subarray/tile (Figure 1 shows 512×512 tiles).
    pub subarray_rows: u32,
}

impl DramConfig {
    /// The reliability-evaluation system of Section 4.1: 8 × 8 GiB DDR3
    /// DIMMs per node (4 channels × 2 DIMMs), each DIMM one rank of
    /// 18 ×4 devices (16 data + 2 ECC) with 8 banks of 65536 × 2048.
    pub fn isca16_reliability() -> Self {
        Self {
            channels: 4,
            dimms_per_channel: 2,
            ranks_per_dimm: 1,
            data_devices_per_rank: 16,
            ecc_devices_per_rank: 2,
            device_width: 4,
            banks: 8,
            rows: 65536,
            cols: 2048,
            burst_length: 8,
            subarray_rows: 512,
        }
    }

    /// The performance-evaluation system of Table 3: 2 channels, 2 ranks per
    /// channel, 8 banks per rank, DDR3-1600 parts.
    pub fn isca16_performance() -> Self {
        Self {
            channels: 2,
            dimms_per_channel: 2,
            ranks_per_dimm: 1,
            data_devices_per_rank: 16,
            ecc_devices_per_rank: 2,
            device_width: 4,
            banks: 8,
            rows: 65536,
            cols: 2048,
            burst_length: 8,
            subarray_rows: 512,
        }
    }

    /// Checks the structural power-of-two and sizing invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |name: &str, v: u32| {
            if v == 0 || !v.is_power_of_two() {
                Err(format!("{name} must be a nonzero power of two, got {v}"))
            } else {
                Ok(())
            }
        };
        pow2("channels", self.channels)?;
        pow2("dimms_per_channel", self.dimms_per_channel)?;
        pow2("ranks_per_dimm", self.ranks_per_dimm)?;
        pow2("data_devices_per_rank", self.data_devices_per_rank)?;
        pow2("device_width", self.device_width)?;
        pow2("banks", self.banks)?;
        pow2("rows", self.rows)?;
        pow2("cols", self.cols)?;
        pow2("burst_length", self.burst_length)?;
        pow2("subarray_rows", self.subarray_rows)?;
        if self.cols < self.burst_length {
            return Err(format!(
                "cols ({}) must be at least burst_length ({})",
                self.cols, self.burst_length
            ));
        }
        if self.subarray_rows > self.rows {
            return Err(format!(
                "subarray_rows ({}) must not exceed rows ({})",
                self.subarray_rows, self.rows
            ));
        }
        if !self.line_bytes().is_multiple_of(self.data_devices_per_rank) {
            return Err("line bytes must divide evenly across data devices".into());
        }
        Ok(())
    }

    /// Bytes per cache-line-sized rank access:
    /// `data_devices × device_width × burst / 8`.
    pub fn line_bytes(&self) -> u32 {
        self.data_devices_per_rank * self.device_width * self.burst_length / 8
    }

    /// 64-byte blocks per row (`cols / burst_length`).
    pub fn blocks_per_row(&self) -> u32 {
        self.cols / self.burst_length
    }

    /// Bytes each device contributes to one line (`device_width × burst / 8`).
    pub fn device_subblock_bytes(&self) -> u32 {
        self.device_width * self.burst_length / 8
    }

    /// Total devices per rank including ECC devices.
    pub fn devices_per_rank(&self) -> u32 {
        self.data_devices_per_rank + self.ecc_devices_per_rank
    }

    /// Capacity of one device in bits.
    pub fn device_bits(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64 * self.device_width as u64
    }

    /// Data bytes per rank (excluding ECC devices).
    pub fn rank_bytes(&self) -> u64 {
        self.device_bits() * self.data_devices_per_rank as u64 / 8
    }

    /// Data bytes per DIMM.
    pub fn dimm_bytes(&self) -> u64 {
        self.rank_bytes() * self.ranks_per_dimm as u64
    }

    /// Data bytes per node.
    pub fn node_bytes(&self) -> u64 {
        self.dimm_bytes() * self.dimms_per_node() as u64
    }

    /// DIMMs per node.
    pub fn dimms_per_node(&self) -> u32 {
        self.channels * self.dimms_per_channel
    }

    /// Ranks per node.
    pub fn ranks_per_node(&self) -> u32 {
        self.dimms_per_node() * self.ranks_per_dimm
    }

    /// Devices per node (including ECC devices) — the population the fault
    /// model injects into.
    pub fn devices_per_node(&self) -> u32 {
        self.ranks_per_node() * self.devices_per_rank()
    }

    /// Subarrays (tile rows) per bank.
    pub fn subarrays_per_bank(&self) -> u32 {
        self.rows / self.subarray_rows
    }

    /// Number of distinct ranks an address can name.
    pub fn total_rank_slots(&self) -> u32 {
        self.channels * self.dimms_per_channel * self.ranks_per_dimm
    }
}

/// Identifies one rank within a node.
///
/// # Examples
///
/// ```
/// use relaxfault_dram::{DramConfig, RankId};
/// let cfg = DramConfig::isca16_reliability();
/// let r = RankId { channel: 3, dimm: 1, rank: 0 };
/// assert_eq!(r.flat_index(&cfg), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankId {
    /// Channel index within the node.
    pub channel: u32,
    /// DIMM index within the channel.
    pub dimm: u32,
    /// Rank index within the DIMM.
    pub rank: u32,
}

impl RankId {
    /// Dense index of this rank within the node
    /// (`channel`-major, then `dimm`, then `rank`).
    pub fn flat_index(&self, cfg: &DramConfig) -> u32 {
        (self.channel * cfg.dimms_per_channel + self.dimm) * cfg.ranks_per_dimm + self.rank
    }

    /// Dense index of this rank's DIMM within the node.
    pub fn dimm_index(&self, cfg: &DramConfig) -> u32 {
        self.channel * cfg.dimms_per_channel + self.dimm
    }

    /// Inverse of [`RankId::flat_index`].
    pub fn from_flat_index(cfg: &DramConfig, idx: u32) -> Self {
        let rank = idx % cfg.ranks_per_dimm;
        let dimm_flat = idx / cfg.ranks_per_dimm;
        Self {
            channel: dimm_flat / cfg.dimms_per_channel,
            dimm: dimm_flat % cfg.dimms_per_channel,
            rank,
        }
    }
}

impl std::fmt::Display for RankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}/dimm{}/rk{}", self.channel, self.dimm, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_config_matches_paper() {
        let cfg = DramConfig::isca16_reliability();
        cfg.validate().unwrap();
        assert_eq!(cfg.line_bytes(), 64);
        assert_eq!(cfg.blocks_per_row(), 256);
        assert_eq!(cfg.device_subblock_bytes(), 4);
        assert_eq!(cfg.devices_per_rank(), 18);
        assert_eq!(cfg.dimm_bytes(), 8 << 30); // 8 GiB DIMMs
        assert_eq!(cfg.node_bytes(), 64 << 30); // 64 GiB node
        assert_eq!(cfg.devices_per_node(), 144);
        assert_eq!(cfg.subarrays_per_bank(), 128);
        // One ×4 device is 4 Gb.
        assert_eq!(cfg.device_bits(), 4 << 30);
    }

    #[test]
    fn performance_config_is_valid() {
        let cfg = DramConfig::isca16_performance();
        cfg.validate().unwrap();
        assert_eq!(cfg.channels, 2);
        assert_eq!(cfg.total_rank_slots(), 4);
    }

    #[test]
    fn validate_rejects_non_pow2() {
        let mut cfg = DramConfig::isca16_reliability();
        cfg.banks = 6;
        assert!(cfg.validate().unwrap_err().contains("banks"));
    }

    #[test]
    fn validate_rejects_tiny_rows() {
        let mut cfg = DramConfig::isca16_reliability();
        cfg.subarray_rows = cfg.rows * 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rank_id_roundtrip() {
        let cfg = DramConfig::isca16_reliability();
        for idx in 0..cfg.ranks_per_node() {
            let r = RankId::from_flat_index(&cfg, idx);
            assert_eq!(r.flat_index(&cfg), idx);
        }
    }

    #[test]
    fn rank_display_is_informative() {
        let r = RankId {
            channel: 1,
            dimm: 0,
            rank: 0,
        };
        assert_eq!(r.to_string(), "ch1/dimm0/rk0");
    }
}
