//! DRAM system organization, address mapping, timing, and power.
//!
//! This crate models the main-memory substrate that RelaxFault (Kim & Erez,
//! ISCA 2016) operates on:
//!
//! * [`config`] — the geometry of a node's memory system: channels, DIMMs,
//!   ranks, ×4/×8 devices, banks, rows, columns, subarrays (paper Figure 1).
//! * [`addr`] — the physical-address ⇄ DRAM-location mapping (paper
//!   Figure 7a), including the XOR-permutation *bank hash* of Zhang et al.
//!   that memory controllers use to spread row-buffer conflicts. The mapping
//!   is bit-exact and invertible; the repair mechanisms in
//!   `relaxfault-core` depend on its bit-level structure.
//! * [`devmap`] — how each DRAM device's bits interleave into a 64-byte
//!   cache line (one `device_width`-bit nibble per device per burst beat).
//!   This is what makes a single-device fault *spread* across a line, and
//!   what the RelaxFault coalescer reverses.
//! * [`timing`] — DDR3 bank-level command timing (tRCD/tRP/tCL/tRAS/tFAW/...)
//!   used by the performance simulator's FR-FCFS controller.
//! * [`power`] — per-operation DRAM energy accounting in the style of
//!   Micron TN-41-01, used for the paper's Figure 16.
//!
//! # Examples
//!
//! ```
//! use relaxfault_dram::{DramConfig, AddressMap, PhysAddr};
//!
//! let cfg = DramConfig::isca16_reliability();
//! let map = AddressMap::nehalem_like(&cfg, true);
//! let (loc, off) = map.decode(PhysAddr(0x2_1234_5678));
//! assert_eq!(map.encode(loc, off), PhysAddr(0x2_1234_5678));
//! ```

pub mod addr;
pub mod config;
pub mod devmap;
pub mod power;
pub mod timing;

pub use addr::{AddressMap, DramLoc, Field, PhysAddr};
pub use config::{DramConfig, RankId};
pub use power::{DramEnergy, OpCounts};
pub use timing::{DdrTiming, DramCmd, RankTiming};
