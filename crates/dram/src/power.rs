//! DRAM dynamic-energy accounting in the style of Micron TN-41-01.
//!
//! The paper estimates DRAM power "with the number of different DRAM
//! operations (activate, precharge, read, and write) performed and the
//! energy associated with each operation as detailed by Micron" (§4.2) and
//! reports *relative dynamic power* (Figure 16). We therefore keep simple
//! per-operation energies for a rank of DDR3-1600 devices; absolute values
//! are derived from the TN-41-01 method (IDD current deltas × VDD × time,
//! summed over the 18 devices of an ECC rank) and documented on each field.

/// Per-operation dynamic energy for one rank, in nanojoules.
///
/// # Examples
///
/// ```
/// use relaxfault_dram::{DramEnergy, OpCounts};
/// let e = DramEnergy::ddr3_1600_x4_rank();
/// let mut c = OpCounts::default();
/// c.reads = 1;
/// assert!(e.dynamic_energy_nj(&c) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergy {
    /// Energy of one ACTIVATE+PRECHARGE pair (row cycle). TN-41-01:
    /// `(IDD0 − IDD3N) × VDD × tRC` per device, ~18 devices per ECC rank.
    pub act_pre_nj: f64,
    /// Energy of one 64-byte READ burst including I/O and termination.
    pub read_nj: f64,
    /// Energy of one 64-byte WRITE burst including ODT.
    pub write_nj: f64,
    /// Energy of one auto-refresh command (all banks).
    pub refresh_nj: f64,
}

impl DramEnergy {
    /// DDR3-1600 ×4 ECC rank (18 devices, 1.5 V). Values follow the
    /// TN-41-01 worked method for 4 Gb parts; the paper's §3.3 figure of
    /// ~36 nJ to service a full miss from DRAM corresponds to an
    /// ACT+RD+PRE sequence plus controller overheads at this scale.
    pub fn ddr3_1600_x4_rank() -> Self {
        Self {
            act_pre_nj: 18.0,
            read_nj: 10.0,
            write_nj: 11.0,
            refresh_nj: 45.0,
        }
    }

    /// Total dynamic energy for a set of operation counts, in nanojoules.
    pub fn dynamic_energy_nj(&self, counts: &OpCounts) -> f64 {
        // ACT and PRE always pair over a window; attribute the pair energy
        // to activates and nothing to precharges to avoid double counting.
        counts.activates as f64 * self.act_pre_nj
            + counts.reads as f64 * self.read_nj
            + counts.writes as f64 * self.write_nj
            + counts.refreshes as f64 * self.refresh_nj
    }

    /// Average dynamic power in milliwatts over `elapsed_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_ns` is zero.
    pub fn dynamic_power_mw(&self, counts: &OpCounts, elapsed_ns: u64) -> f64 {
        assert!(elapsed_ns > 0, "elapsed time must be positive");
        // nJ / ns = W; scale to mW.
        self.dynamic_energy_nj(counts) / elapsed_ns as f64 * 1000.0
    }
}

/// Counters of DRAM operations, accumulated by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued.
    pub precharges: u64,
    /// READ bursts issued.
    pub reads: u64,
    /// WRITE bursts issued.
    pub writes: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
}

impl OpCounts {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
    }

    /// Total column accesses (reads + writes).
    pub fn column_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate implied by the counts: column accesses that did
    /// not need a new ACTIVATE. Returns 0 when there were no accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let cols = self.column_accesses();
        if cols == 0 {
            0.0
        } else {
            1.0 - (self.activates.min(cols) as f64 / cols as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly() {
        let e = DramEnergy::ddr3_1600_x4_rank();
        let one = OpCounts {
            activates: 1,
            precharges: 1,
            reads: 1,
            writes: 0,
            refreshes: 0,
        };
        let two = OpCounts {
            activates: 2,
            precharges: 2,
            reads: 2,
            writes: 0,
            refreshes: 0,
        };
        assert!((e.dynamic_energy_nj(&two) - 2.0 * e.dynamic_energy_nj(&one)).abs() < 1e-9);
    }

    #[test]
    fn power_is_energy_over_time() {
        let e = DramEnergy::ddr3_1600_x4_rank();
        let c = OpCounts {
            activates: 10,
            precharges: 10,
            reads: 100,
            writes: 50,
            refreshes: 0,
        };
        let energy = e.dynamic_energy_nj(&c);
        let p = e.dynamic_power_mw(&c, 1_000_000);
        assert!((p - energy / 1e6 * 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_elapsed_panics() {
        let e = DramEnergy::ddr3_1600_x4_rank();
        e.dynamic_power_mw(&OpCounts::default(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OpCounts {
            activates: 1,
            precharges: 2,
            reads: 3,
            writes: 4,
            refreshes: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.activates, 2);
        assert_eq!(a.refreshes, 10);
        assert_eq!(a.column_accesses(), 14);
    }

    #[test]
    fn row_hit_rate_bounds() {
        let mut c = OpCounts::default();
        assert_eq!(c.row_hit_rate(), 0.0);
        c.reads = 100;
        c.activates = 25;
        assert!((c.row_hit_rate() - 0.75).abs() < 1e-9);
        c.activates = 200; // pathological: more acts than columns
        assert_eq!(c.row_hit_rate(), 0.0);
    }
}
