//! Physical-address ⇄ DRAM-location mapping (paper Figure 7a).
//!
//! Memory controllers scatter the fields of a DRAM location across physical
//! address bits to balance row locality against bank parallelism, and often
//! XOR low row bits into the bank index (the permutation-based interleave of
//! Zhang et al.) to break pathological bank conflicts. Both are modelled
//! here as an explicit, invertible bit-field layout.
//!
//! The *structure* of this mapping is what RelaxFault exploits: a fault that
//! is contiguous in DRAM coordinates (one device row, one device column) is
//! scattered across many cache lines by this map, and the RelaxFault repair
//! mapping (in `relaxfault-core`) undoes the scatter.

use crate::config::{DramConfig, RankId};
use relaxfault_util::bits::{bits_for, deposit, extract, mask};

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#011x}", self.0)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A block-granularity DRAM location: which 64-byte rank access an address
/// names. `colblock` is the column address divided by the burst length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLoc {
    /// Channel index.
    pub channel: u32,
    /// DIMM index within the channel.
    pub dimm: u32,
    /// Rank index within the DIMM.
    pub rank: u32,
    /// Bank index within the rank (after bank hashing, the *physical* bank).
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Block-column index within the row (`col / burst_length`).
    pub colblock: u32,
}

impl DramLoc {
    /// The rank this block lives in.
    pub fn rank_id(&self) -> RankId {
        RankId {
            channel: self.channel,
            dimm: self.dimm,
            rank: self.rank,
        }
    }
}

/// One logical field of the address layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Byte offset within the 64-byte block.
    Offset,
    /// Channel select.
    Channel,
    /// DIMM select within a channel.
    Dimm,
    /// Rank select within a DIMM.
    Rank,
    /// Bank select (pre-hash logical bank).
    Bank,
    /// Row index.
    Row,
    /// Block-column index.
    ColBlock,
}

/// An invertible physical-address ⇄ DRAM-location mapping: an ordered list
/// of `(field, width)` segments from LSB to MSB, plus an optional XOR bank
/// hash folding the low `bank_xor_row_bits` row bits into the bank index.
///
/// Split fields are supported (and are the norm: the column field is
/// scattered around the bank/rank bits in Figure 7a); segments of one field
/// concatenate LSB-first.
///
/// # Examples
///
/// ```
/// use relaxfault_dram::{AddressMap, DramConfig, PhysAddr};
/// let cfg = DramConfig::isca16_reliability();
/// let map = AddressMap::nehalem_like(&cfg, true);
/// let (loc, off) = map.decode(PhysAddr(0x3FF));
/// assert_eq!(off, 0x3F);
/// assert_eq!(map.encode(loc, off), PhysAddr(0x3FF));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    layout: Vec<(Field, u32)>,
    bank_xor_row_bits: u32,
    bank_bits: u32,
}

impl AddressMap {
    /// Builds a mapping from an explicit layout.
    ///
    /// `bank_xor_row_bits` row bits (the low ones) are XORed into the bank
    /// index after extraction; pass `0` to disable bank hashing.
    ///
    /// # Panics
    ///
    /// Panics if `bank_xor_row_bits` exceeds the total bank width.
    pub fn new(layout: Vec<(Field, u32)>, bank_xor_row_bits: u32) -> Self {
        let bank_bits: u32 = layout
            .iter()
            .filter(|(f, _)| *f == Field::Bank)
            .map(|(_, w)| *w)
            .sum();
        assert!(
            bank_xor_row_bits <= bank_bits,
            "bank hash wider than bank field ({bank_xor_row_bits} > {bank_bits})"
        );
        Self {
            layout,
            bank_xor_row_bits,
            bank_bits,
        }
    }

    /// The conventional performance-oriented mapping used in the paper's
    /// examples (modelled on Intel Nehalem, Figure 7a): from LSB —
    /// block offset, low column bits (row-buffer locality for streams),
    /// channel, bank, the remaining column bits, DIMM/rank selects, and rows
    /// on top. With `bank_hash`, low row bits XOR-fold into the bank index
    /// (Zhang et al. permutation interleave).
    ///
    /// Two placement properties of this layout carry the paper's Figure 8
    /// result and are asserted by tests:
    ///
    /// * every column bit lies below the DIMM/row bits, i.e. inside the LLC
    ///   set-index window of an 8 MiB LLC (bits 6..19) — so a one-device
    ///   *row* fault spreads across sets even without set-index hashing;
    /// * all row bits lie above that window — so a one-device *column*
    ///   fault collapses into a single set unless the LLC hashes tag bits
    ///   into the index.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn nehalem_like(cfg: &DramConfig, bank_hash: bool) -> Self {
        cfg.validate().expect("invalid DramConfig");
        let off = bits_for(cfg.line_bytes() as u64);
        let ch = bits_for(cfg.channels as u64);
        let di = bits_for(cfg.dimms_per_channel as u64);
        let rk = bits_for(cfg.ranks_per_dimm as u64);
        let bk = bits_for(cfg.banks as u64);
        let rw = bits_for(cfg.rows as u64);
        let cb = bits_for(cfg.blocks_per_row() as u64);

        let cb_low = cb.min(2);
        let cb_high = cb - cb_low;

        let mut layout = vec![(Field::Offset, off)];
        if cb_low > 0 {
            layout.push((Field::ColBlock, cb_low));
        }
        if ch > 0 {
            layout.push((Field::Channel, ch));
        }
        if bk > 0 {
            layout.push((Field::Bank, bk));
        }
        if cb_high > 0 {
            layout.push((Field::ColBlock, cb_high));
        }
        if di > 0 {
            layout.push((Field::Dimm, di));
        }
        if rk > 0 {
            layout.push((Field::Rank, rk));
        }
        layout.push((Field::Row, rw));

        let hash_bits = if bank_hash { bk.min(rw) } else { 0 };
        Self::new(layout, hash_bits)
    }

    /// Total number of address bits the layout covers.
    pub fn total_bits(&self) -> u32 {
        self.layout.iter().map(|(_, w)| w).sum()
    }

    /// Whether bank hashing is enabled.
    pub fn has_bank_hash(&self) -> bool {
        self.bank_xor_row_bits > 0
    }

    /// The layout segments, LSB first.
    pub fn layout(&self) -> &[(Field, u32)] {
        &self.layout
    }

    /// Physical-address bit positions (LSB-first) occupied by `field`.
    pub fn field_bit_positions(&self, field: Field) -> Vec<u32> {
        let mut positions = Vec::new();
        let mut lsb = 0;
        for &(f, w) in &self.layout {
            if f == field {
                positions.extend(lsb..lsb + w);
            }
            lsb += w;
        }
        positions
    }

    /// Width of `field` in bits.
    pub fn field_width(&self, field: Field) -> u32 {
        self.layout
            .iter()
            .filter(|(f, _)| *f == field)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Decodes a physical address into a DRAM block location and the byte
    /// offset within the block.
    pub fn decode(&self, addr: PhysAddr) -> (DramLoc, u32) {
        let mut vals = [0u64; 7];
        let mut taken = [0u32; 7];
        let mut lsb = 0;
        for &(f, w) in &self.layout {
            let idx = f as usize;
            let seg = extract(addr.0, lsb, w);
            vals[idx] |= seg << taken[idx];
            taken[idx] += w;
            lsb += w;
        }
        let row = vals[Field::Row as usize] as u32;
        let mut bank = vals[Field::Bank as usize] as u32;
        bank ^= row & mask(self.bank_xor_row_bits) as u32;
        (
            DramLoc {
                channel: vals[Field::Channel as usize] as u32,
                dimm: vals[Field::Dimm as usize] as u32,
                rank: vals[Field::Rank as usize] as u32,
                bank,
                row,
                colblock: vals[Field::ColBlock as usize] as u32,
            },
            vals[Field::Offset as usize] as u32,
        )
    }

    /// Encodes a DRAM block location and byte offset back into a physical
    /// address. Exact inverse of [`AddressMap::decode`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds its field width.
    pub fn encode(&self, loc: DramLoc, offset: u32) -> PhysAddr {
        let logical_bank = loc.bank ^ (loc.row & mask(self.bank_xor_row_bits) as u32);
        let mut vals = [0u64; 7];
        vals[Field::Offset as usize] = offset as u64;
        vals[Field::Channel as usize] = loc.channel as u64;
        vals[Field::Dimm as usize] = loc.dimm as u64;
        vals[Field::Rank as usize] = loc.rank as u64;
        vals[Field::Bank as usize] = logical_bank as u64;
        vals[Field::Row as usize] = loc.row as u64;
        vals[Field::ColBlock as usize] = loc.colblock as u64;

        let mut addr = 0u64;
        let mut taken = [0u32; 7];
        let mut lsb = 0;
        for &(f, w) in &self.layout {
            let idx = f as usize;
            let seg = extract(vals[idx], taken[idx], w);
            addr = deposit(addr, lsb, w, seg);
            taken[idx] += w;
            lsb += w;
        }
        // Verify nothing overflowed its field.
        for (i, &v) in vals.iter().enumerate() {
            assert!(
                taken[i] == 64 || v < (1u64 << taken[i]) || (taken[i] == 0 && v == 0),
                "coordinate {i} value {v:#x} exceeds field width {}",
                taken[i]
            );
        }
        PhysAddr(addr)
    }

    /// Verifies that this layout covers exactly the geometry of `cfg`
    /// (every field as wide as the config requires, total bits equal to
    /// `log2(node_bytes)`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate_for(&self, cfg: &DramConfig) -> Result<(), String> {
        let expect = [
            (Field::Offset, bits_for(cfg.line_bytes() as u64)),
            (Field::Channel, bits_for(cfg.channels as u64)),
            (Field::Dimm, bits_for(cfg.dimms_per_channel as u64)),
            (Field::Rank, bits_for(cfg.ranks_per_dimm as u64)),
            (Field::Bank, bits_for(cfg.banks as u64)),
            (Field::Row, bits_for(cfg.rows as u64)),
            (Field::ColBlock, bits_for(cfg.blocks_per_row() as u64)),
        ];
        for (field, want) in expect {
            let got = self.field_width(field);
            if got != want {
                return Err(format!(
                    "field {field:?}: layout has {got} bits, config needs {want}"
                ));
            }
        }
        let want_total = bits_for(cfg.node_bytes());
        if self.total_bits() != want_total {
            return Err(format!(
                "layout covers {} bits, node needs {want_total}",
                self.total_bits()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::prop;
    use relaxfault_util::{prop_assert_eq, prop_assert_ne, prop_assume};

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn nehalem_layout_covers_config() {
        for hash in [false, true] {
            let map = AddressMap::nehalem_like(&cfg(), hash);
            map.validate_for(&cfg()).unwrap();
            assert_eq!(map.total_bits(), 36); // 64 GiB node
        }
    }

    #[test]
    fn decode_low_bits_are_offset() {
        let map = AddressMap::nehalem_like(&cfg(), true);
        let (_, off) = map.decode(PhysAddr(0x2A));
        assert_eq!(off, 0x2A);
    }

    #[test]
    fn consecutive_lines_change_channel_before_row() {
        // Stream locality: adjacent blocks should spread across channels
        // and low column bits, not rows.
        let map = AddressMap::nehalem_like(&cfg(), false);
        let (a, _) = map.decode(PhysAddr(0));
        let (b, _) = map.decode(PhysAddr(64 * 4)); // 4 lines on
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn bank_hash_xors_low_row_bits() {
        let cfg = cfg();
        let plain = AddressMap::nehalem_like(&cfg, false);
        let hashed = AddressMap::nehalem_like(&cfg, true);
        // Find an address with a nonzero low row field.
        let loc = DramLoc {
            channel: 0,
            dimm: 0,
            rank: 0,
            bank: 0,
            row: 0b101,
            colblock: 0,
        };
        let addr = plain.encode(loc, 0);
        let (hloc, _) = hashed.decode(addr);
        assert_eq!(hloc.row, 0b101);
        assert_eq!(hloc.bank, 0b101); // logical bank 0 ^ row low bits
    }

    #[test]
    fn field_positions_partition_address() {
        let map = AddressMap::nehalem_like(&cfg(), true);
        let mut all: Vec<u32> = Vec::new();
        for f in [
            Field::Offset,
            Field::Channel,
            Field::Dimm,
            Field::Rank,
            Field::Bank,
            Field::Row,
            Field::ColBlock,
        ] {
            all.extend(map.field_bit_positions(f));
        }
        all.sort_unstable();
        assert_eq!(all, (0..map.total_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn column_bits_are_split_around_bank() {
        let map = AddressMap::nehalem_like(&cfg(), false);
        let col = map.field_bit_positions(Field::ColBlock);
        assert_eq!(col.len(), 8);
        // Not contiguous: the scatter is the point.
        assert!(col.windows(2).any(|w| w[1] != w[0] + 1));
    }

    #[test]
    fn column_bits_below_row_bits() {
        // The placement properties that carry the paper's Figure 8 result:
        // column bits inside an 8 MiB LLC's set-index window, rows above it.
        let map = AddressMap::nehalem_like(&cfg(), true);
        let col_max = *map
            .field_bit_positions(Field::ColBlock)
            .iter()
            .max()
            .unwrap();
        let row_min = *map.field_bit_positions(Field::Row).iter().min().unwrap();
        assert!(
            col_max < 19,
            "column bits must stay in the set-index window"
        );
        assert!(
            row_min >= 19,
            "row bits must sit above the set-index window"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds field width")]
    fn encode_rejects_out_of_range_coordinates() {
        let map = AddressMap::nehalem_like(&cfg(), false);
        let loc = DramLoc {
            channel: 99, // only 4 channels
            dimm: 0,
            rank: 0,
            bank: 0,
            row: 0,
            colblock: 0,
        };
        map.encode(loc, 0);
    }

    #[test]
    fn roundtrip_decode_encode() {
        prop::check(256, |src| {
            let addr = src.u64(0, (1u64 << 36) - 1);
            let hash = src.bool();
            let map = AddressMap::nehalem_like(&cfg(), hash);
            let (loc, off) = map.decode(PhysAddr(addr));
            prop_assert_eq!(map.encode(loc, off), PhysAddr(addr));
            Ok(())
        });
    }

    #[test]
    fn roundtrip_encode_decode() {
        prop::check(256, |src| {
            let loc = DramLoc {
                channel: src.u32(0, 3),
                dimm: src.u32(0, 1),
                rank: 0,
                bank: src.u32(0, 7),
                row: src.u32(0, 65535),
                colblock: src.u32(0, 255),
            };
            let off = src.u32(0, 63);
            let hash = src.bool();
            let map = AddressMap::nehalem_like(&cfg(), hash);
            let addr = map.encode(loc, off);
            let (loc2, off2) = map.decode(addr);
            prop_assert_eq!(loc, loc2);
            prop_assert_eq!(off, off2);
            Ok(())
        });
    }

    #[test]
    fn distinct_addresses_distinct_locations() {
        prop::check(256, |src| {
            let a = src.u64(0, (1u64 << 36) - 1);
            let b = src.u64(0, (1u64 << 36) - 1);
            prop_assume!(a != b);
            let map = AddressMap::nehalem_like(&cfg(), true);
            let da = map.decode(PhysAddr(a));
            let db = map.decode(PhysAddr(b));
            prop_assert_ne!(da, db);
            Ok(())
        });
    }
}
