//! How device bits interleave into a cache line — and how to un-interleave
//! them.
//!
//! A 64-byte block read from a rank of 16 ×4 devices arrives as 8 burst
//! beats of 64 bits; within each beat, device `d` drives bits
//! `4d .. 4d+4`. Device `d`'s total contribution to the line — its
//! *sub-block* — is therefore 32 bits scattered one nibble per beat.
//!
//! The RelaxFault coalescer (paper Figure 6) gathers exactly these bits when
//! it strips a faulty device's data out of an incoming line and when it
//! reconstructs an outgoing line from the remapped LLC copy. This module is
//! that gather/scatter, plus the bitmask generator the hardware would keep
//! pre-computed (Table 1 lists "data coalescer: 128 bytes of pre-computed
//! bitmasks").

use crate::config::DramConfig;

/// Returns the bit positions (within the line, LSB-first per byte) driven by
/// `device` in one burst access.
///
/// # Panics
///
/// Panics if `device >= cfg.data_devices_per_rank`.
pub fn device_bit_positions(cfg: &DramConfig, device: u32) -> Vec<usize> {
    assert!(
        device < cfg.data_devices_per_rank,
        "device {device} out of range (only data devices appear in the line)"
    );
    let w = cfg.device_width as usize;
    let beat_bits = (cfg.data_devices_per_rank * cfg.device_width) as usize;
    let mut positions = Vec::with_capacity((cfg.burst_length as usize) * w);
    for beat in 0..cfg.burst_length as usize {
        let base = beat * beat_bits + device as usize * w;
        positions.extend(base..base + w);
    }
    positions
}

/// Builds the line-sized bitmask with 1s at `device`'s bit positions —
/// the pre-computed coalescer mask of Table 1.
pub fn device_mask(cfg: &DramConfig, device: u32) -> Vec<u8> {
    let mut mask = vec![0u8; cfg.line_bytes() as usize];
    for pos in device_bit_positions(cfg, device) {
        mask[pos / 8] |= 1 << (pos % 8);
    }
    mask
}

/// Extracts `device`'s sub-block (its `device_width × burst` bits, packed
/// beat-major) from a line.
///
/// # Panics
///
/// Panics if `line` is not exactly `cfg.line_bytes()` long or `device` is
/// out of range.
pub fn extract_subblock(cfg: &DramConfig, line: &[u8], device: u32) -> Vec<u8> {
    assert_eq!(line.len(), cfg.line_bytes() as usize, "line size mismatch");
    let positions = device_bit_positions(cfg, device);
    let mut out = vec![0u8; cfg.device_subblock_bytes() as usize];
    for (i, pos) in positions.into_iter().enumerate() {
        let bit = (line[pos / 8] >> (pos % 8)) & 1;
        out[i / 8] |= bit << (i % 8);
    }
    out
}

/// Writes `device`'s sub-block back into a line (inverse of
/// [`extract_subblock`]).
///
/// # Panics
///
/// Panics if `line` / `subblock` sizes don't match the config or `device`
/// is out of range.
pub fn insert_subblock(cfg: &DramConfig, line: &mut [u8], device: u32, subblock: &[u8]) {
    assert_eq!(line.len(), cfg.line_bytes() as usize, "line size mismatch");
    assert_eq!(
        subblock.len(),
        cfg.device_subblock_bytes() as usize,
        "sub-block size mismatch"
    );
    let positions = device_bit_positions(cfg, device);
    for (i, pos) in positions.into_iter().enumerate() {
        let bit = (subblock[i / 8] >> (i % 8)) & 1;
        line[pos / 8] = (line[pos / 8] & !(1 << (pos % 8))) | (bit << (pos % 8));
    }
}

/// Clears `device`'s bits in a line (the coalescer's "strip" step,
/// Figure 6a: `line AND NOT mask`).
pub fn clear_device_bits(cfg: &DramConfig, line: &mut [u8], device: u32) {
    let mask = device_mask(cfg, device);
    for (byte, m) in line.iter_mut().zip(mask) {
        *byte &= !m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn positions_partition_the_line() {
        let cfg = cfg();
        let mut seen = vec![false; cfg.line_bytes() as usize * 8];
        for d in 0..cfg.data_devices_per_rank {
            for pos in device_bit_positions(&cfg, d) {
                assert!(!seen[pos], "bit {pos} claimed twice");
                seen[pos] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every line bit belongs to a device"
        );
    }

    #[test]
    fn nibbles_interleave_per_beat() {
        let cfg = cfg();
        let p0 = device_bit_positions(&cfg, 0);
        let p1 = device_bit_positions(&cfg, 1);
        // Device 0 drives bits 0..4 of beat 0; device 1 drives 4..8.
        assert_eq!(&p0[..4], &[0, 1, 2, 3]);
        assert_eq!(&p1[..4], &[4, 5, 6, 7]);
        // Beat 1 starts 64 bits on.
        assert_eq!(p0[4], 64);
    }

    #[test]
    fn extract_insert_roundtrip_all_devices() {
        let cfg = cfg();
        let line: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        for d in 0..cfg.data_devices_per_rank {
            let sub = extract_subblock(&cfg, &line, d);
            assert_eq!(sub.len(), 4);
            let mut rebuilt = line.clone();
            insert_subblock(&cfg, &mut rebuilt, d, &sub);
            assert_eq!(rebuilt, line, "reinserting the same data is a no-op");
        }
    }

    #[test]
    fn line_reconstructs_from_all_subblocks() {
        let cfg = cfg();
        let line: Vec<u8> = (0..64u32).map(|i| (i * 211 + 3) as u8).collect();
        let mut rebuilt = vec![0u8; 64];
        for d in 0..cfg.data_devices_per_rank {
            let sub = extract_subblock(&cfg, &line, d);
            insert_subblock(&cfg, &mut rebuilt, d, &sub);
        }
        assert_eq!(rebuilt, line);
    }

    #[test]
    fn clear_then_insert_restores() {
        let cfg = cfg();
        let line: Vec<u8> = vec![0xFF; 64];
        let mut work = line.clone();
        clear_device_bits(&cfg, &mut work, 7);
        let cleared = extract_subblock(&cfg, &work, 7);
        assert!(cleared.iter().all(|&b| b == 0));
        // Other devices untouched.
        for d in (0..16).filter(|&d| d != 7) {
            assert!(extract_subblock(&cfg, &work, d).iter().all(|&b| b == 0xFF));
        }
        insert_subblock(&cfg, &mut work, 7, &[0xFF; 4]);
        assert_eq!(work, line);
    }

    #[test]
    fn masks_are_disjoint_and_cover() {
        let cfg = cfg();
        let mut acc = [0u8; 64];
        for d in 0..cfg.data_devices_per_rank {
            let m = device_mask(&cfg, d);
            for (a, b) in acc.iter_mut().zip(&m) {
                assert_eq!(*a & b, 0, "mask overlap");
                *a |= b;
            }
        }
        assert!(acc.iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_ecc_device_index() {
        // ECC devices (16, 17) carry check bits, not line payload.
        device_bit_positions(&cfg(), 16);
    }
}
