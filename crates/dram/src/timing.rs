//! DDR3 bank-level command timing for the performance simulator.
//!
//! Models the constraints an FR-FCFS memory controller must respect:
//! per-bank tRCD/tRP/tCL/tRAS/tWR/tRTP, per-rank tRRD and the four-activate
//! window tFAW, and the data-bus occupancy of each burst. Time is counted in
//! memory-controller clock cycles (one cycle = one DRAM command slot).

use std::collections::VecDeque;

/// DDR3 timing parameters in controller cycles.
///
/// Defaults follow a Micron DDR3-1600 (MT41J-class, 11-11-11) ×4 part, the
/// device family named in the paper's Table 3.
///
/// # Examples
///
/// ```
/// let t = relaxfault_dram::DdrTiming::ddr3_1600();
/// assert_eq!(t.t_cl, 11);
/// assert!(t.t_ras >= t.t_rcd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrTiming {
    /// Data-rate clock in MHz (DDR3-1600 → 800 MHz command clock).
    pub clock_mhz: u32,
    /// CAS latency: READ to first data.
    pub t_cl: u32,
    /// ACTIVATE to READ/WRITE.
    pub t_rcd: u32,
    /// PRECHARGE to ACTIVATE.
    pub t_rp: u32,
    /// ACTIVATE to PRECHARGE (minimum row-open time).
    pub t_ras: u32,
    /// ACTIVATE to ACTIVATE, same bank (tRAS + tRP).
    pub t_rc: u32,
    /// ACTIVATE to ACTIVATE, different banks of one rank.
    pub t_rrd: u32,
    /// Rolling window in which at most four ACTIVATEs may issue per rank.
    pub t_faw: u32,
    /// End of write data to PRECHARGE.
    pub t_wr: u32,
    /// READ to PRECHARGE.
    pub t_rtp: u32,
    /// Write data latency (WRITE to first data).
    pub t_cwl: u32,
    /// Write-to-read turnaround, same rank.
    pub t_wtr: u32,
    /// Cycles of data bus per burst (BL8 → 4 controller cycles).
    pub t_burst: u32,
    /// Column-to-column command spacing.
    pub t_ccd: u32,
    /// Average refresh interval (7.8 µs → 6240 cycles at 800 MHz).
    pub t_refi: u32,
    /// Refresh cycle time (260 ns for 4 Gb parts → 208 cycles).
    pub t_rfc: u32,
}

impl DdrTiming {
    /// DDR3-1600, CL-tRCD-tRP = 11-11-11 (Micron MT41J datasheet values).
    pub fn ddr3_1600() -> Self {
        Self {
            clock_mhz: 800,
            t_cl: 11,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_rrd: 5,
            t_faw: 24,
            t_wr: 12,
            t_rtp: 6,
            t_cwl: 8,
            t_wtr: 6,
            t_burst: 4,
            t_ccd: 4,
            t_refi: 6240,
            t_rfc: 208,
        }
    }

    /// Checks internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err("tRC must be at least tRAS + tRP".into());
        }
        if self.t_faw < self.t_rrd {
            return Err("tFAW must be at least tRRD".into());
        }
        if self.t_burst == 0 || self.clock_mhz == 0 {
            return Err("burst and clock must be nonzero".into());
        }
        if self.t_refi > 0 && self.t_refi <= self.t_rfc {
            return Err("tREFI must exceed tRFC".into());
        }
        Ok(())
    }

    /// Nanoseconds per controller cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }
}

/// DRAM commands the controller can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCmd {
    /// Open a row in a bank.
    Activate,
    /// Close a bank's open row.
    Precharge,
    /// Column read burst from the open row.
    Read,
    /// Column write burst to the open row.
    Write,
}

/// Per-bank timing state.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u32>,
    act_at: u64,
    ready_at: u64,    // earliest next column command (post-ACT tRCD etc.)
    pre_allowed: u64, // earliest PRECHARGE (tRAS / tWR / tRTP)
    act_allowed: u64, // earliest next ACTIVATE (tRP after PRE, tRC after ACT)
}

/// Timing state of one rank: all of its banks plus the rank-level ACT
/// constraints (tRRD, tFAW) and data-bus occupancy.
///
/// The controller asks [`RankTiming::earliest`] when a command *could*
/// issue, and commits it with [`RankTiming::issue`]. Both are monotone in
/// time; issuing at a cycle earlier than `earliest` reports is a logic error
/// and panics in debug builds.
///
/// # Examples
///
/// ```
/// use relaxfault_dram::{DdrTiming, DramCmd, RankTiming};
/// let t = DdrTiming::ddr3_1600();
/// let mut rank = RankTiming::new(8, t);
/// let at = rank.earliest(DramCmd::Activate, 0, 5, 0);
/// rank.issue(DramCmd::Activate, 0, 5, at);
/// let rd = rank.earliest(DramCmd::Read, 0, 5, at);
/// assert_eq!(rd, at + t.t_rcd as u64);
/// ```
#[derive(Debug, Clone)]
pub struct RankTiming {
    timing: DdrTiming,
    banks: Vec<BankState>,
    last_act: Option<u64>,
    act_window: VecDeque<u64>,
    bus_free_at: u64,
    last_wr_data_end: Option<u64>,
    last_col_cmd: Option<u64>,
}

impl RankTiming {
    /// Creates timing state for a rank with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `timing` fails validation.
    pub fn new(banks: u32, timing: DdrTiming) -> Self {
        assert!(banks > 0);
        timing.validate().expect("invalid DdrTiming");
        Self {
            timing,
            banks: vec![BankState::default(); banks as usize],
            last_act: None,
            act_window: VecDeque::new(),
            bus_free_at: 0,
            last_wr_data_end: None,
            last_col_cmd: None,
        }
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: u32) -> Option<u32> {
        self.banks[bank as usize].open_row
    }

    /// Earliest cycle (≥ `now`) at which `cmd` targeting `bank`/`row` can
    /// legally issue.
    ///
    /// # Panics
    ///
    /// Panics if the command is inconsistent with bank state (e.g. `Read`
    /// with a different row open — the controller must precharge first).
    pub fn earliest(&self, cmd: DramCmd, bank: u32, row: u32, now: u64) -> u64 {
        let b = &self.banks[bank as usize];
        let t = &self.timing;
        match cmd {
            DramCmd::Activate => {
                assert!(b.open_row.is_none(), "activate with a row already open");
                let mut at = now.max(b.act_allowed);
                if let Some(last) = self.last_act {
                    at = at.max(last + t.t_rrd as u64);
                }
                if self.act_window.len() >= 4 {
                    at = at.max(self.act_window[self.act_window.len() - 4] + t.t_faw as u64);
                }
                at
            }
            DramCmd::Precharge => at_least(now, b.pre_allowed),
            DramCmd::Read | DramCmd::Write => {
                assert_eq!(
                    b.open_row,
                    Some(row),
                    "column command to a row that is not open"
                );
                let mut at = now.max(b.ready_at);
                if let Some(last) = self.last_col_cmd {
                    at = at.max(last + t.t_ccd as u64);
                }
                if cmd == DramCmd::Read {
                    // Write-to-read turnaround.
                    if let Some(end) = self.last_wr_data_end {
                        at = at.max(end + t.t_wtr as u64);
                    }
                }
                // Data bus must be free when this burst's data flies.
                let data_lat = if cmd == DramCmd::Read {
                    t.t_cl
                } else {
                    t.t_cwl
                } as u64;
                if at + data_lat < self.bus_free_at {
                    at = self.bus_free_at - data_lat;
                }
                at
            }
        }
    }

    /// Commits `cmd` at cycle `at`, updating all window state. Returns the
    /// cycle at which the command's effect completes (data end for column
    /// commands, bank-ready for ACT/PRE).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `at` precedes what [`RankTiming::earliest`] allows,
    /// or (always) if the command is inconsistent with bank state.
    pub fn issue(&mut self, cmd: DramCmd, bank: u32, row: u32, at: u64) -> u64 {
        debug_assert!(
            at >= self.earliest(cmd, bank, row, 0),
            "command issued before its constraints allow"
        );
        let t = self.timing;
        let b = &mut self.banks[bank as usize];
        match cmd {
            DramCmd::Activate => {
                assert!(b.open_row.is_none(), "activate with a row already open");
                b.open_row = Some(row);
                b.act_at = at;
                b.ready_at = at + t.t_rcd as u64;
                b.pre_allowed = at + t.t_ras as u64;
                b.act_allowed = at + t.t_rc as u64;
                self.last_act = Some(at);
                self.act_window.push_back(at);
                while self.act_window.len() > 4 {
                    self.act_window.pop_front();
                }
                b.ready_at
            }
            DramCmd::Precharge => {
                assert!(b.open_row.is_some(), "precharge with no row open");
                b.open_row = None;
                b.act_allowed = b.act_allowed.max(at + t.t_rp as u64);
                at + t.t_rp as u64
            }
            DramCmd::Read => {
                assert_eq!(b.open_row, Some(row));
                let data_end = at + (t.t_cl + t.t_burst) as u64;
                self.bus_free_at = self.bus_free_at.max(data_end);
                self.last_col_cmd = Some(at);
                b.pre_allowed = b.pre_allowed.max(at + t.t_rtp as u64);
                data_end
            }
            DramCmd::Write => {
                assert_eq!(b.open_row, Some(row));
                let data_end = at + (t.t_cwl + t.t_burst) as u64;
                self.bus_free_at = self.bus_free_at.max(data_end);
                self.last_wr_data_end = Some(data_end);
                self.last_col_cmd = Some(at);
                b.pre_allowed = b.pre_allowed.max(data_end + t.t_wr as u64);
                data_end
            }
        }
    }
}

fn at_least(now: u64, bound: u64) -> u64 {
    now.max(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> RankTiming {
        RankTiming::new(8, DdrTiming::ddr3_1600())
    }

    #[test]
    fn ddr3_1600_is_valid() {
        DdrTiming::ddr3_1600().validate().unwrap();
        assert!((DdrTiming::ddr3_1600().ns_per_cycle() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn act_then_read_honours_trcd() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 100, 0);
        assert_eq!(r.open_row(0), Some(100));
        let rd = r.earliest(DramCmd::Read, 0, 100, 0);
        assert_eq!(rd, t.t_rcd as u64);
    }

    #[test]
    fn row_cycle_honours_trc() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 1, 0);
        let pre_at = r.earliest(DramCmd::Precharge, 0, 1, 0);
        assert_eq!(pre_at, t.t_ras as u64);
        r.issue(DramCmd::Precharge, 0, 1, pre_at);
        let act2 = r.earliest(DramCmd::Activate, 0, 2, 0);
        assert_eq!(act2, (t.t_ras + t.t_rp).max(t.t_rc) as u64);
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        let mut at = 0;
        for bank in 0..4 {
            at = r.earliest(DramCmd::Activate, bank, 0, at);
            r.issue(DramCmd::Activate, bank, 0, at);
        }
        // Fifth ACT must wait for the tFAW window anchored at the first.
        let fifth = r.earliest(DramCmd::Activate, 4, 0, at);
        assert!(
            fifth >= t.t_faw as u64,
            "fifth act at {fifth}, tFAW {}",
            t.t_faw
        );
        // And consecutive ACTs respected tRRD.
        assert!(at >= 3 * t.t_rrd as u64);
    }

    #[test]
    fn back_to_back_reads_pack_the_bus() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 0, 0);
        let rd1 = r.earliest(DramCmd::Read, 0, 0, 0);
        let end1 = r.issue(DramCmd::Read, 0, 0, rd1);
        let rd2 = r.earliest(DramCmd::Read, 0, 0, rd1);
        let end2 = r.issue(DramCmd::Read, 0, 0, rd2);
        // Streamed bursts: data back-to-back, tCCD apart.
        assert_eq!(rd2 - rd1, t.t_ccd as u64);
        assert_eq!(end2 - end1, t.t_burst as u64);
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 0, 0);
        let wr = r.earliest(DramCmd::Write, 0, 0, 0);
        let wr_data_end = r.issue(DramCmd::Write, 0, 0, wr);
        let rd = r.earliest(DramCmd::Read, 0, 0, wr);
        assert!(rd >= wr_data_end + t.t_wtr as u64);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 0, 0);
        let wr = r.earliest(DramCmd::Write, 0, 0, 0);
        let data_end = r.issue(DramCmd::Write, 0, 0, wr);
        let pre = r.earliest(DramCmd::Precharge, 0, 0, 0);
        assert_eq!(pre, data_end + t.t_wr as u64);
    }

    #[test]
    #[should_panic(expected = "row that is not open")]
    fn read_to_wrong_row_panics() {
        let mut r = rank();
        r.issue(DramCmd::Activate, 0, 7, 0);
        r.earliest(DramCmd::Read, 0, 8, 100);
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn double_activate_panics() {
        let mut r = rank();
        r.issue(DramCmd::Activate, 0, 7, 0);
        r.issue(DramCmd::Activate, 0, 9, 100);
    }

    #[test]
    fn banks_are_independent_for_rcd() {
        let mut r = rank();
        let t = DdrTiming::ddr3_1600();
        r.issue(DramCmd::Activate, 0, 0, 0);
        let a1 = r.earliest(DramCmd::Activate, 1, 0, 0);
        assert_eq!(a1, t.t_rrd as u64, "other bank waits only tRRD");
    }
}
