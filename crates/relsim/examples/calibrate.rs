//! Scratch calibration runner: prints the paper's coverage anchors.
//! Run: cargo run --release -p relaxfault-relsim --example calibrate

use relaxfault_relsim::engine::{run_scenarios, RunConfig};
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
    let arms = vec![
        base.clone().with_mechanism(Mechanism::Ppr),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 })
            .without_set_hashing(),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
            .without_set_hashing(),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
        base.clone()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 16 }),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 4 }),
        base.clone()
            .with_mechanism(Mechanism::FreeFault { max_ways: 16 }),
    ];
    let names = [
        "PPR            (paper 73)",
        "FF-1way nohash (paper 74)",
        "FF-1way hash   (paper 84)",
        "RF-1way nohash (paper 89)",
        "RF-1way hash   (paper 90.3)",
        "RF-4way        (paper ~97)",
        "RF-16way       (paper ~97)",
        "FF-4way        (paper ~90)",
        "FF-16way       (paper ~93)",
    ];
    let t0 = std::time::Instant::now();
    let mut results = run_scenarios(
        &arms,
        &RunConfig {
            trials,
            seed: 2016,
            threads: 16,
            chunk_size: 0,
        },
    );
    println!(
        "trials={} elapsed={:?} faulty={}",
        trials,
        t0.elapsed(),
        results[0].faulty_nodes
    );
    for (name, r) in names.iter().zip(results.iter_mut()) {
        let cov = r.coverage() * 100.0;
        let b90 = r
            .bytes_for_coverage(0.90)
            .map(|b| format!("{}KiB", b / 1024));
        let b84 = r
            .bytes_for_coverage(0.84)
            .map(|b| format!("{}KiB", b / 1024));
        println!(
            "{name}: coverage={cov:.1}%  bytes@90%={:?} bytes@84%={:?} maxways={}",
            b90, b84, r.max_ways_seen
        );
    }
}
