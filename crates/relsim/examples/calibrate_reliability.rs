//! Scratch calibration for Figures 12–14: DUEs, SDCs, DIMM replacements
//! per 16,384-node system over 6 years.
//! Run: cargo run --release -p relaxfault-relsim --example calibrate_reliability [trials]

use relaxfault_relsim::engine::{run_scenarios, RunConfig};
use relaxfault_relsim::scenario::{Mechanism, ReplacementPolicy, Scenario};

const NODES: u64 = 16_384;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    for (fit, label) in [(1.0, "1x FIT"), (10.0, "10x FIT")] {
        let base = Scenario::isca16_baseline().with_fit_scale(fit);
        let replb = ReplacementPolicy::AfterErrors {
            trigger_prob: Scenario::REPLB_TRIGGER,
        };
        let arms = vec![
            base.clone().with_mechanism(Mechanism::None),
            base.clone().with_mechanism(Mechanism::Ppr),
            base.clone()
                .with_mechanism(Mechanism::FreeFault { max_ways: 1 }),
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
            base.clone()
                .with_mechanism(Mechanism::None)
                .with_replacement(replb),
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
                .with_replacement(replb),
            base.clone()
                .with_mechanism(Mechanism::Ppr)
                .with_replacement(replb),
        ];
        let t0 = std::time::Instant::now();
        let results = run_scenarios(
            &arms,
            &RunConfig {
                trials,
                seed: 77,
                threads: 1,
                chunk_size: 0,
            },
        );
        println!("== {label} (trials={trials}, {:?}) ==", t0.elapsed());
        let names = [
            "None/ReplA",
            "PPR/ReplA",
            "FF1/ReplA",
            "RF1/ReplA",
            "RF4/ReplA",
            "None/ReplB",
            "RF4/ReplB",
            "PPR/ReplB",
        ];
        for (n, r) in names.iter().zip(&results) {
            println!(
                "{n:11} DUE={:7.2} SDC={:7.4} repl={:9.2} (trans-DUE={:5.2})",
                r.dues_per_system(NODES),
                r.sdcs_per_system(NODES),
                r.replacements_per_system(NODES),
                r.per_system(r.transient_dues, NODES),
            );
        }
    }
    println!("paper 1x: None DUE~8.3 SDC~0.023 ReplA~7, ReplB-none~2400;");
    println!(
        "  repair: DUE -52% (RF), SDC -41% (RF) PPR~no SDC change; RF4 repl ~10x down, PPR ~4x"
    );
    println!("paper 10x: None DUE~170 SDC~0.42; RF DUE -37%; ReplB-none~17000");
}
