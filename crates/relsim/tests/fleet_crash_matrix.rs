//! The crash-point test matrix: a reference fleet runs uninterrupted,
//! then the same fleet is killed and resumed at every epoch boundary and
//! mid-epoch, at several thread counts. Every variant must finish with
//! bit-identical arm metrics, population digests, and dirty-eval totals —
//! the checkpoint/resume contract the fleet module exists to honour.

use relaxfault_relsim::fleet::{CrashPoint, FleetConfig, FleetSim};
use relaxfault_relsim::scenario::{Mechanism, Scenario};
use relaxfault_relsim::FleetMetrics;
use std::path::PathBuf;
use std::sync::OnceLock;

const NODES: u64 = 500;
const EPOCHS: u32 = 4;
const SEED: u64 = 0xF1EE7;

fn arms() -> Vec<Scenario> {
    // Elevated FIT so a small debug-mode fleet still has a meaningful
    // faulty sub-population in every epoch.
    let base = Scenario::isca16_baseline().with_fit_scale(40.0);
    vec![
        base.clone().with_mechanism(Mechanism::None),
        base.with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ]
}

fn cfg(threads: usize, ckpt_dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        nodes: NODES,
        epochs: EPOCHS,
        shards: 8,
        seed: SEED,
        threads,
        ckpt_dir,
        crash_at: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rf_fleet_matrix_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct Reference {
    metrics: Vec<FleetMetrics>,
    digest: u64,
    dirty_evals: u64,
}

/// The uninterrupted single-threaded run every variant is compared
/// against, computed once and shared across the matrix tests.
fn reference() -> &'static Reference {
    static REFERENCE: OnceLock<Reference> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let mut sim = FleetSim::new(arms(), cfg(1, None));
        sim.run_to_end().expect("uninterrupted run");
        Reference {
            metrics: sim.metrics(),
            digest: sim.population_digest(),
            dirty_evals: sim.dirty_evals(),
        }
    })
}

fn assert_matches_reference(sim: &FleetSim, reference: &Reference, what: &str) {
    assert_eq!(sim.completed_epochs(), EPOCHS, "{what}: epochs");
    assert_eq!(sim.metrics(), reference.metrics, "{what}: metrics");
    assert_eq!(sim.population_digest(), reference.digest, "{what}: digest");
    assert_eq!(
        sim.dirty_evals(),
        reference.dirty_evals,
        "{what}: dirty evals"
    );
}

#[test]
fn results_are_thread_count_independent() {
    let reference = reference();
    for threads in [2, 4] {
        let mut sim = FleetSim::new(arms(), cfg(threads, None));
        sim.run_to_end().expect("uninterrupted run");
        assert_matches_reference(&sim, reference, &format!("threads={threads}"));
    }
}

#[test]
fn resume_from_every_epoch_boundary_is_bit_exact() {
    let reference = reference();
    // One checkpointed run leaves a snapshot at every boundary 0..=EPOCHS.
    let dir = scratch_dir("boundaries");
    let mut sim = FleetSim::new(arms(), cfg(1, Some(dir.clone())));
    sim.run_to_end().expect("checkpointed run");
    assert_matches_reference(&sim, reference, "checkpointed run");

    for k in 0..EPOCHS {
        for threads in [1, 2, 4] {
            let path = dir.join(format!("ckpt_epoch_{k:04}.json"));
            let mut resumed = FleetSim::resume_from(&path, threads, None)
                .unwrap_or_else(|e| panic!("resume from epoch {k}: {e}"));
            assert_eq!(resumed.completed_epochs(), k);
            resumed.run_to_end().expect("resumed run");
            assert_matches_reference(
                &resumed,
                reference,
                &format!("resume from epoch {k} with {threads} threads"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_and_resume_at_every_point_recovers_the_run() {
    let reference = reference();
    let mut crash_points = Vec::new();
    for k in 0..EPOCHS {
        crash_points.push(CrashPoint::Boundary(k));
        crash_points.push(CrashPoint::MidEpoch(k));
    }
    for crash in crash_points {
        let dir = scratch_dir(&format!("{crash:?}").replace(['(', ')'], "_"));
        let mut dying = FleetSim::new(
            arms(),
            FleetConfig {
                crash_at: Some(crash),
                ..cfg(2, Some(dir.clone()))
            },
        );
        let err = dying.run_to_end().expect_err("injected crash must fire");
        assert!(err.contains("simulated crash"), "{crash:?}: {err}");

        // The newest surviving checkpoint is the boundary before the
        // crash; a mid-epoch death persists nothing for its epoch.
        let expect_epoch = match crash {
            CrashPoint::Boundary(k) | CrashPoint::MidEpoch(k) => k,
        };
        let mut resumed =
            FleetSim::resume(&dir, 2).unwrap_or_else(|e| panic!("resume after {crash:?}: {e}"));
        assert_eq!(
            resumed.completed_epochs(),
            expect_epoch,
            "{crash:?}: resume boundary"
        );
        resumed.run_to_end().expect("resumed run");
        assert_matches_reference(&resumed, reference, &format!("{crash:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn per_epoch_work_is_proportional_to_dirty_nodes() {
    // Paper-rate (1x FIT) arms: faults are sparse, so the dirty set each
    // epoch is a small fraction of the fleet — the case incremental
    // re-evaluation exists for.
    let base = Scenario::isca16_baseline();
    let sparse_arms = vec![
        base.clone().with_mechanism(Mechanism::None),
        base.with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
    ];
    let mut sim = FleetSim::new(sparse_arms, cfg(1, None));
    sim.run_to_end().expect("uninterrupted run");
    // The incrementality witness: total evaluations equal the arrival
    // schedule mass (one evaluation per node per epoch with a new
    // arrival), which for a sparse fault process is far below the naive
    // nodes x epochs full-recompute cost — here bounded by the faulty
    // sub-population per epoch.
    let total: u64 = sim.epoch_dirty().iter().sum();
    assert_eq!(total, sim.dirty_evals(), "per-epoch log sums to the total");
    assert_eq!(sim.epoch_dirty().len(), EPOCHS as usize);
    assert!(sim.dirty_evals() >= sim.faulty_nodes());
    assert!(
        sim.dirty_evals() < NODES * EPOCHS as u64 / 4,
        "dirty evals {} must stay well below the {} full-recompute cost",
        sim.dirty_evals(),
        NODES * EPOCHS as u64
    );
    for (epoch, dirty) in sim.epoch_dirty().iter().enumerate() {
        assert!(
            *dirty <= sim.faulty_nodes(),
            "epoch {epoch}: dirty count {dirty} exceeds the faulty population"
        );
    }
}

#[test]
fn resume_rejects_a_drifted_configuration() {
    let dir = scratch_dir("drift");
    let mut sim = FleetSim::new(arms(), cfg(1, Some(dir.clone())));
    sim.step().expect("first epoch");

    // Tamper with the newest checkpoint: a different seed regenerates a
    // different population, which the digest check must catch.
    let path = dir.join("ckpt_epoch_0001.json");
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    let tampered = text.replace(&format!("{:#018x}", SEED), &format!("{:#018x}", SEED + 1));
    assert_ne!(text, tampered, "seed appears in the checkpoint");
    std::fs::write(&path, tampered).unwrap();
    let err = match FleetSim::resume(&dir, 1) {
        Err(e) => e,
        Ok(_) => panic!("tampered checkpoint must fail"),
    };
    assert!(
        err.contains("digest mismatch"),
        "digest verification caught the drift: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
