//! Property tests for the fleet-checkpoint persistence layer: any
//! well-formed checkpoint serializes to text that parses back and
//! re-serializes byte-identically, and corrupted or truncated snapshot
//! files are rejected with a clear error instead of a panic or a silently
//! wrong resume.

use relaxfault_relsim::fleet::{FleetCheckpoint, FleetMetrics};
use relaxfault_relsim::scenario::{Mechanism, Scenario};
use relaxfault_util::persist::Persist;
use relaxfault_util::prop::{self, Source};
use relaxfault_util::{prop_assert, prop_assert_eq};

fn arb_metrics(src: &mut Source) -> FleetMetrics {
    // Counter magnitudes up to the JSON layer's exact-integer ceiling.
    let mut m = FleetMetrics {
        faulty_nodes: src.u64(0, 1 << 52),
        fully_repaired_nodes: src.u64(0, 1 << 52),
        repair_bytes_total: src.u64(0, 1 << 52),
        dues: src.u64(0, 1 << 52),
        transient_dues: src.u64(0, 1 << 52),
        sdcs: src.u64(0, 1 << 52),
        replacements: src.u64(0, 1 << 52),
        unrepaired_faults: src.u64(0, 1 << 52),
        permanent_faults: src.u64(0, 1 << 52),
        max_ways_seen: src.u32(0, 64),
        unrepaired_by_mode: [0; 6],
    };
    for slot in &mut m.unrepaired_by_mode {
        *slot = src.u64(0, 1 << 52);
    }
    m
}

fn arb_checkpoint(src: &mut Source) -> FleetCheckpoint {
    let shards = src.u32(1, 6);
    let mechanisms = [
        Mechanism::None,
        Mechanism::RelaxFault { max_ways: 4 },
        Mechanism::Ppr,
    ];
    let arms: Vec<Scenario> = (0..src.usize(1, 3))
        .map(|_| {
            Scenario::isca16_baseline()
                .with_mechanism(mechanisms[src.usize(0, mechanisms.len() - 1)])
        })
        .collect();
    let epochs = src.u32(1, 40);
    FleetCheckpoint {
        // Full-domain hex fields, including values beyond 2^53 that would
        // silently round if stored as JSON numbers.
        seed: src.u64(0, u64::MAX),
        nodes: src.u64(1, 1 << 40),
        epochs,
        shards,
        completed_epochs: src.u32(0, epochs),
        config_digest: src.u64(0, u64::MAX),
        dirty_evals: src.u64(0, 1 << 52),
        shard_digests: (0..shards).map(|_| src.u64(0, u64::MAX)).collect(),
        shard_metrics: (0..shards)
            .map(|_| arms.iter().map(|_| arb_metrics(src)).collect())
            .collect(),
        scenarios: arms,
    }
}

#[test]
fn serialize_parse_serialize_is_byte_identical() {
    prop::check(64, |src| {
        let ckpt = arb_checkpoint(src);
        let text = ckpt.to_json().to_pretty();
        let parsed =
            FleetCheckpoint::parse_str(&text).map_err(relaxfault_util::prop::Failed::Assertion)?;
        prop_assert_eq!(parsed, ckpt, "value round trip");
        let text2 = parsed.to_json().to_pretty();
        prop_assert_eq!(text2, text, "byte-identical re-serialization");
        Ok(())
    });
}

#[test]
fn truncated_checkpoints_are_rejected_not_panicked() {
    prop::check(64, |src| {
        let ckpt = arb_checkpoint(src);
        let text = ckpt.to_json().to_pretty();
        let trimmed = text.trim_end();
        // Any strict prefix of the document is unparseable: pretty JSON
        // carries no redundant tail to survive truncation.
        let cut = src.usize(0, trimmed.len() - 1);
        let truncated: &str = match trimmed.get(..cut) {
            Some(t) => t,
            None => return Err(relaxfault_util::prop::Failed::Assumption), // UTF-8 boundary
        };
        prop_assert!(
            FleetCheckpoint::parse_str(truncated).is_err(),
            "truncation at byte {} of {} must not parse",
            cut,
            trimmed.len()
        );
        Ok(())
    });
}

#[test]
fn corrupted_checkpoints_are_rejected_with_context() {
    prop::check(48, |src| {
        let ckpt = arb_checkpoint(src);
        let keys = [
            "kind",
            "schema_version",
            "seed",
            "nodes",
            "shard_digests",
            "shard_metrics",
            "scenarios",
            "completed_epochs",
        ];
        let key = keys[src.usize(0, keys.len() - 1)];
        let mut pairs = match ckpt.to_json() {
            relaxfault_util::json::Value::Object(pairs) => pairs,
            _ => unreachable!("checkpoints serialize to objects"),
        };
        pairs.retain(|(k, _)| k != key);
        let err = FleetCheckpoint::from_json(&relaxfault_util::json::Value::Object(pairs));
        prop_assert!(err.is_err(), "dropping `{}` must be rejected", key);
        Ok(())
    });
}

#[test]
fn structurally_inconsistent_checkpoints_are_rejected() {
    prop::check(48, |src| {
        let mut ckpt = arb_checkpoint(src);
        match src.usize(0, 3) {
            0 => ckpt.shard_digests.push(src.u64(0, u64::MAX)),
            1 => {
                ckpt.shard_metrics.pop();
            }
            2 => ckpt.completed_epochs = ckpt.epochs + 1,
            _ => {
                // An arm-count mismatch inside one shard's metrics.
                ckpt.shard_metrics[0].push(FleetMetrics::default());
            }
        }
        let text = ckpt.to_json().to_pretty();
        prop_assert!(
            FleetCheckpoint::parse_str(&text).is_err(),
            "inconsistent checkpoint must be rejected"
        );
        Ok(())
    });
}
