//! Replays one node's fault timeline against a scenario.

use crate::scenario::{Mechanism, ReplacementPolicy, Scenario};
use relaxfault_core::plan::{FreeFault, PlanScratch, Ppr, RelaxFault, RepairMechanism};
use relaxfault_ecc::EccOutcome;
use relaxfault_faults::{FaultEvent, FaultRegion, NodeFaults};
use relaxfault_util::rng::Rng;

/// Everything one node-lifetime contributes to the system metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeOutcome {
    /// The node saw at least one permanent fault.
    pub faulty: bool,
    /// Every permanent fault was repaired by the mechanism.
    pub fully_repaired: bool,
    /// LLC bytes locked for repair at end of life.
    pub repair_bytes: u64,
    /// Worst per-set repair occupancy.
    pub max_ways: u32,
    /// Detected uncorrectable errors, total.
    pub dues: u32,
    /// DUEs whose triggering fault was transient (no replacement under
    /// ReplA).
    pub transient_dues: u32,
    /// Silent data corruptions.
    pub sdcs: u32,
    /// DIMMs replaced.
    pub replacements: u32,
    /// Permanent faults the mechanism could not repair.
    pub unrepaired_faults: u32,
    /// Permanent faults observed.
    pub permanent_faults: u32,
    /// Unrepaired permanent faults by [`relaxfault_faults::FaultMode`]
    /// index (the coverage-gap fingerprint).
    pub unrepaired_by_mode: [u32; 6],
}

enum Planner {
    None,
    Relax(RelaxFault),
    Free(FreeFault),
    Ppr(Ppr),
}

impl Planner {
    fn new(s: &Scenario) -> Self {
        match s.mechanism {
            Mechanism::None => Planner::None,
            Mechanism::RelaxFault { max_ways } => {
                Planner::Relax(RelaxFault::new(&s.dram, &s.llc, max_ways))
            }
            Mechanism::FreeFault { max_ways } => {
                Planner::Free(FreeFault::new(&s.dram, &s.llc, max_ways))
            }
            Mechanism::Ppr => Planner::Ppr(Ppr::new(&s.dram)),
            Mechanism::PprCustom {
                banks_per_group,
                spares_per_group,
            } => Planner::Ppr(Ppr::with_spares(&s.dram, banks_per_group, spares_per_group)),
        }
    }

    fn try_repair(&mut self, regions: &[FaultRegion], scratch: &mut PlanScratch) -> bool {
        match self {
            Planner::None => false,
            Planner::Relax(p) => p.try_repair_with(regions, scratch),
            Planner::Free(p) => p.try_repair_with(regions, scratch),
            Planner::Ppr(p) => p.try_repair_with(regions, scratch),
        }
    }

    fn reset(&mut self) {
        match self {
            Planner::None => {}
            Planner::Relax(p) => p.reset(),
            Planner::Free(p) => p.reset(),
            Planner::Ppr(p) => p.reset(),
        }
    }

    fn bytes_used(&self) -> u64 {
        match self {
            Planner::None => 0,
            Planner::Relax(p) => p.bytes_used(),
            Planner::Free(p) => p.bytes_used(),
            Planner::Ppr(p) => p.bytes_used(),
        }
    }

    fn max_ways_used(&self) -> u32 {
        match self {
            Planner::None => 0,
            Planner::Relax(p) => p.max_ways_used(),
            Planner::Free(p) => p.max_ways_used(),
            Planner::Ppr(p) => p.max_ways_used(),
        }
    }
}

/// Reusable per-(worker, scenario) evaluation state. Holding one of these
/// across trials removes every allocation from the replay loop *and* lets
/// the repair planner keep its warmed-up hash-table capacity: the engine
/// resets it between trials instead of rebuilding it.
///
/// A scratch is bound to the scenario of its first use (the planner it
/// caches is mechanism-specific); reuse across scenarios is rejected by a
/// debug assertion.
#[derive(Default)]
pub struct EvalScratch {
    /// Planner constructed lazily on the first permanent fault ever seen,
    /// then reset and reused across trials.
    planner: Option<Planner>,
    /// Mechanism the cached planner was built for.
    mech: Option<Mechanism>,
    /// DIMM plane of the live (unrepaired) permanent regions; index `i`
    /// tags `live_regions[i]`. Split struct-of-arrays so the region plane
    /// feeds ECC classification directly — no per-event repack.
    live_dimms: Vec<u32>,
    /// Region plane of the live permanent regions (parallel to
    /// `live_dimms`).
    live_regions: Vec<FaultRegion>,
    /// DIMM indices of the current event's regions.
    event_dimms: Vec<u32>,
    /// Scratch for the repair planners.
    plan: PlanScratch,
}

impl EvalScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies the cached planner's bookkeeping (occupancy sums, way
    /// limits, spare accounting) — the per-arm half of the `RF_CHECK=1`
    /// engine hook. A scratch with no planner yet trivially passes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.live_dimms.len() != self.live_regions.len() {
            return Err(format!(
                "live planes out of step: {} dimms vs {} regions",
                self.live_dimms.len(),
                self.live_regions.len()
            ));
        }
        match &self.planner {
            None | Some(Planner::None) => Ok(()),
            Some(Planner::Relax(p)) => p.check_invariants(),
            Some(Planner::Free(p)) => p.check_invariants(),
            Some(Planner::Ppr(p)) => p.check_invariants(),
        }
    }

    /// Removes every live fault on `dimm`, keeping both planes in
    /// lockstep and preserving arrival order.
    fn drop_dimm(&mut self, dimm: u32) {
        let mut keep = self.live_dimms.iter();
        self.live_regions.retain(|_| *keep.next().unwrap() != dimm);
        self.live_dimms.retain(|&d| d != dimm);
    }
}

/// Replays `node`'s timeline under `scenario` (see
/// [`evaluate_node_with`]), allocating fresh scratch. Hot loops should
/// hold an [`EvalScratch`] per scenario and call `evaluate_node_with`.
pub fn evaluate_node<R: Rng + ?Sized>(
    scenario: &Scenario,
    node: &NodeFaults,
    rng: &mut R,
) -> NodeOutcome {
    let mut scratch = EvalScratch::default();
    evaluate_node_with(scenario, node, rng, &mut scratch)
}

/// Replays `node`'s timeline under `scenario`.
///
/// For each fault arrival, in time order:
/// 1. classify the arrival against *live* (unrepaired, unreplaced)
///    permanent faults on sibling devices of the same rank — this is where
///    DUEs and SDCs happen, *before* any repair can react (the ordering
///    effect behind the paper's ~50% DUE reduction);
/// 2. under ReplA, a DUE triggered by a permanent fault replaces the DIMM
///    (clearing its live faults);
/// 3. a permanent fault is then offered to the repair mechanism; failures
///    leave it live;
/// 4. under ReplB, an unrepaired permanent fault trips the corrected-error
///    threshold with the policy's probability and replaces the DIMM.
pub fn evaluate_node_with<R: Rng + ?Sized>(
    scenario: &Scenario,
    node: &NodeFaults,
    rng: &mut R,
    scratch: &mut EvalScratch,
) -> NodeOutcome {
    evaluate_events_with(scenario, &node.events, rng, scratch)
}

/// Replays a time-sorted event slice under `scenario` — the slice form of
/// [`evaluate_node_with`]. The fleet simulator's incremental epochs call
/// this on growing prefixes of one lifetime: evaluating
/// `events[..new_len]` and subtracting the `events[..old_len]` outcome
/// telescopes to the full-lifetime result without re-evaluating clean
/// nodes. An empty slice returns the zero outcome without drawing from
/// `rng`, so prefix bookkeeping never perturbs the eval stream.
pub fn evaluate_events_with<R: Rng + ?Sized>(
    scenario: &Scenario,
    events: &[FaultEvent],
    rng: &mut R,
    scratch: &mut EvalScratch,
) -> NodeOutcome {
    let cfg = &scenario.dram;
    let mut out = NodeOutcome::default();
    if events.is_empty() {
        return out;
    }
    debug_assert!(
        scratch.mech.is_none() || scratch.mech == Some(scenario.mechanism),
        "EvalScratch reused across scenarios"
    );
    // Whether this trial touched the planner: ~86% of nodes never see a
    // permanent fault, so the planner is prepared lazily — constructed on
    // the first permanent fault ever, reset on the first of each trial.
    let mut planner_live = false;
    scratch.live_dimms.clear();
    scratch.live_regions.clear();

    for event in events {
        let permanent = event.is_permanent();
        if permanent {
            out.faulty = true;
            out.permanent_faults += 1;
        }

        // 1. ECC classification against live faults of the same ranks —
        //    the region plane is consumed in place.
        let mut outcome = scenario.ecc.classify_arrival(
            cfg,
            &event.regions,
            permanent,
            &scratch.live_regions,
            rng,
        );
        scratch.event_dimms.clear();
        scratch
            .event_dimms
            .extend(event.regions.iter().map(|r| r.rank.dimm_index(cfg)));

        // 2. Repair attempt (permanent faults only; transient faults leave
        //    nothing to repair).
        let repaired = permanent && {
            let planner = match &mut scratch.planner {
                Some(p) => {
                    if !planner_live {
                        p.reset();
                    }
                    p
                }
                slot @ None => {
                    scratch.mech = Some(scenario.mechanism);
                    slot.insert(Planner::new(scenario))
                }
            };
            planner_live = true;
            planner.try_repair(&event.regions, &mut scratch.plan)
        };

        // A fault that got repaired sometimes wins the race: detection via
        // corrected errors elsewhere in the fault triggers repair before
        // anything touches the doubly faulty codeword.
        if outcome == EccOutcome::Due
            && repaired
            && scenario.ecc.p_repair_preempts_due > 0.0
            && rng.gen_bool(scenario.ecc.p_repair_preempts_due)
        {
            outcome = EccOutcome::Corrected;
        }

        match outcome {
            EccOutcome::Corrected => {}
            EccOutcome::Due => {
                out.dues += 1;
                if permanent {
                    if scenario.replacement == ReplacementPolicy::AfterDue {
                        for i in 0..scratch.event_dimms.len() {
                            let dimm = scratch.event_dimms[i];
                            out.replacements += 1;
                            scratch.drop_dimm(dimm);
                        }
                        // The faulty DIMM is gone; nothing of this event
                        // survives (any repair lines it claimed are simply
                        // stale).
                        continue;
                    }
                } else {
                    out.transient_dues += 1;
                }
            }
            EccOutcome::Sdc => {
                out.sdcs += 1;
                // An SDC is silent: nothing reacts to it.
            }
        }

        if !permanent || repaired {
            continue;
        }
        out.unrepaired_faults += 1;
        out.unrepaired_by_mode[event.mode as usize] += 1;
        for r in &event.regions {
            scratch.live_dimms.push(r.rank.dimm_index(cfg));
            scratch.live_regions.push(*r);
        }

        // 3. ReplB: the unrepaired fault may trip the corrected-error
        //    threshold.
        if let ReplacementPolicy::AfterErrors { trigger_prob } = scenario.replacement {
            if rng.gen_bool(trigger_prob) {
                for i in 0..scratch.event_dimms.len() {
                    let dimm = scratch.event_dimms[i];
                    out.replacements += 1;
                    scratch.drop_dimm(dimm);
                }
            }
        }
    }

    out.fully_repaired = out.faulty && out.unrepaired_faults == 0;
    if planner_live {
        if let Some(p) = &scratch.planner {
            out.repair_bytes = p.bytes_used();
            out.max_ways = p.max_ways_used();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_dram::RankId;
    use relaxfault_ecc::EccModel;
    use relaxfault_faults::{BankSet, Extent, FaultEvent, FaultMode, Transience};
    use relaxfault_util::rng::Rng64;

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    fn event(time: f64, transience: Transience, device: u32, extent: Extent) -> FaultEvent {
        FaultEvent {
            time_hours: time,
            mode: FaultMode::SingleBitWord,
            transience,
            regions: relaxfault_faults::RegionList::one(FaultRegion {
                rank: rank0(),
                device,
                extent,
            }),
        }
    }

    fn deterministic_scenario(mechanism: Mechanism) -> Scenario {
        Scenario {
            ecc: EccModel::always_manifest(),
            ..Scenario::isca16_baseline()
        }
        .with_mechanism(mechanism)
    }

    #[test]
    fn clean_node_is_clean() {
        let s = deterministic_scenario(Mechanism::None);
        let node = NodeFaults::default();
        let mut rng = Rng64::seed_from_u64(1);
        let out = evaluate_node(&s, &node, &mut rng);
        assert!(!out.faulty);
        assert_eq!(out.dues, 0);
        assert_eq!(out.replacements, 0);
        assert!(
            !out.fully_repaired,
            "a clean node is not counted as repaired"
        );
    }

    #[test]
    fn repair_prevents_due_when_fine_fault_comes_first() {
        // Bit fault at t=1 (repaired), whole-bank fault at t=2 overlapping
        // it: with repair, no DUE; without repair, DUE.
        let node = NodeFaults {
            events: vec![
                event(
                    1.0,
                    Transience::Permanent,
                    3,
                    Extent::Bit {
                        bank: 0,
                        row: 5,
                        col: 9,
                    },
                ),
                event(
                    2.0,
                    Transience::Permanent,
                    7,
                    Extent::Banks {
                        banks: BankSet::one(0),
                    },
                ),
            ],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(2);
        let with = evaluate_node(
            &deterministic_scenario(Mechanism::RelaxFault { max_ways: 1 }),
            &node,
            &mut rng,
        );
        assert_eq!(
            with.dues, 0,
            "fine fault was repaired before the partner arrived"
        );
        let without = evaluate_node(&deterministic_scenario(Mechanism::None), &node, &mut rng);
        assert_eq!(without.dues, 1);
    }

    #[test]
    fn due_still_happens_when_coarse_fault_comes_first() {
        // Whole-bank fault first (unrepairable), bit fault second: the DUE
        // fires at the bit fault's arrival regardless of repair.
        let node = NodeFaults {
            events: vec![
                event(
                    1.0,
                    Transience::Permanent,
                    7,
                    Extent::Banks {
                        banks: BankSet::one(0),
                    },
                ),
                event(
                    2.0,
                    Transience::Permanent,
                    3,
                    Extent::Bit {
                        bank: 0,
                        row: 5,
                        col: 9,
                    },
                ),
            ],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(3);
        let s = deterministic_scenario(Mechanism::RelaxFault { max_ways: 4 })
            .with_replacement(ReplacementPolicy::None);
        let out = evaluate_node(&s, &node, &mut rng);
        assert_eq!(
            out.dues, 1,
            "ordering effect: repair cannot preempt this DUE"
        );
        assert_eq!(out.unrepaired_faults, 1, "the bank fault stays live");
    }

    #[test]
    fn transient_due_does_not_replace() {
        let node = NodeFaults {
            events: vec![
                event(
                    1.0,
                    Transience::Permanent,
                    7,
                    Extent::Banks {
                        banks: BankSet::one(0),
                    },
                ),
                event(
                    2.0,
                    Transience::Transient,
                    3,
                    Extent::Bit {
                        bank: 0,
                        row: 5,
                        col: 9,
                    },
                ),
            ],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(4);
        let s = deterministic_scenario(Mechanism::None); // ReplA default
        let out = evaluate_node(&s, &node, &mut rng);
        assert_eq!(out.dues, 1);
        assert_eq!(out.transient_dues, 1);
        assert_eq!(out.replacements, 0, "ReplA ignores transient DUEs");
    }

    #[test]
    fn repla_replaces_and_clears_live_faults() {
        let node = NodeFaults {
            events: vec![
                event(
                    1.0,
                    Transience::Permanent,
                    7,
                    Extent::Banks {
                        banks: BankSet::one(0),
                    },
                ),
                event(
                    2.0,
                    Transience::Permanent,
                    3,
                    Extent::Bit {
                        bank: 0,
                        row: 5,
                        col: 9,
                    },
                ),
                // After replacement the DIMM is fresh: this fault overlaps
                // nothing and produces no further DUE.
                event(
                    3.0,
                    Transience::Permanent,
                    4,
                    Extent::Bit {
                        bank: 0,
                        row: 6,
                        col: 9,
                    },
                ),
            ],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(5);
        let s = deterministic_scenario(Mechanism::None);
        let out = evaluate_node(&s, &node, &mut rng);
        assert_eq!(out.dues, 1);
        assert_eq!(out.replacements, 1);
    }

    #[test]
    fn replb_replaces_on_unrepaired_faults() {
        let node = NodeFaults {
            events: vec![event(
                1.0,
                Transience::Permanent,
                7,
                Extent::Banks {
                    banks: BankSet::one(0),
                },
            )],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(6);
        let s = deterministic_scenario(Mechanism::None)
            .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 1.0 });
        let out = evaluate_node(&s, &node, &mut rng);
        assert_eq!(
            out.replacements, 1,
            "ReplB replaces without waiting for a DUE"
        );
        // With working repair the same node keeps its DIMM.
        let mut rng = Rng64::seed_from_u64(6);
        let node2 = NodeFaults {
            events: vec![event(
                1.0,
                Transience::Permanent,
                7,
                Extent::Bit {
                    bank: 0,
                    row: 1,
                    col: 1,
                },
            )],
            ..Default::default()
        };
        let s2 = deterministic_scenario(Mechanism::RelaxFault { max_ways: 1 })
            .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 1.0 });
        let out2 = evaluate_node(&s2, &node2, &mut rng);
        assert_eq!(out2.replacements, 0);
        assert!(out2.fully_repaired);
    }

    #[test]
    fn coverage_accounting() {
        let node = NodeFaults {
            events: vec![
                event(
                    1.0,
                    Transience::Permanent,
                    3,
                    Extent::Row { bank: 0, row: 5 },
                ),
                event(
                    2.0,
                    Transience::Permanent,
                    4,
                    Extent::Bit {
                        bank: 1,
                        row: 6,
                        col: 0,
                    },
                ),
            ],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(7);
        let s = deterministic_scenario(Mechanism::RelaxFault { max_ways: 1 })
            .with_replacement(ReplacementPolicy::None);
        let out = evaluate_node(&s, &node, &mut rng);
        assert!(out.fully_repaired);
        assert_eq!(out.repair_bytes, 17 * 64);
        assert_eq!(out.max_ways, 1);
        assert_eq!(out.permanent_faults, 2);
    }

    #[test]
    fn ppr_node_uses_no_llc() {
        let node = NodeFaults {
            events: vec![event(
                1.0,
                Transience::Permanent,
                3,
                Extent::Row { bank: 0, row: 5 },
            )],
            ..Default::default()
        };
        let mut rng = Rng64::seed_from_u64(8);
        let out = evaluate_node(&deterministic_scenario(Mechanism::Ppr), &node, &mut rng);
        assert!(out.fully_repaired);
        assert_eq!(out.repair_bytes, 0);
    }
}
