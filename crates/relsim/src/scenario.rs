//! Experimental arms: geometry + fault model + ECC + mechanism + policy.

use relaxfault_cache::CacheConfig;
use relaxfault_dram::DramConfig;
use relaxfault_ecc::EccModel;
use relaxfault_faults::{FaultModel, FitRates};
use serde::{Deserialize, Serialize};

/// Which repair mechanism a scenario applies to each newly discovered
/// permanent fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// No fine-grained repair (the baseline policy).
    None,
    /// RelaxFault with a per-set way limit.
    RelaxFault {
        /// Maximum LLC ways any set may devote to repair.
        max_ways: u32,
    },
    /// FreeFault with a per-set way limit.
    FreeFault {
        /// Maximum LLC ways any set may devote to repair.
        max_ways: u32,
    },
    /// DDR4-style post-package repair.
    Ppr,
    /// PPR with non-standard sparing (ablations).
    PprCustom {
        /// Banks per bank group.
        banks_per_group: u32,
        /// Spare rows per bank group.
        spares_per_group: u32,
    },
}

impl Mechanism {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Mechanism::None => "No repair".to_string(),
            Mechanism::RelaxFault { max_ways } => format!("RelaxFault-{max_ways}way"),
            Mechanism::FreeFault { max_ways } => format!("FreeFault-{max_ways}way"),
            Mechanism::Ppr => "PPR".to_string(),
            Mechanism::PprCustom { banks_per_group, spares_per_group } => {
                format!("PPR-{spares_per_group}x{banks_per_group}b")
            }
        }
    }
}

/// When a DIMM gets replaced (paper §5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Never replace (used for pure coverage studies).
    None,
    /// ReplA: replace immediately after a non-transient DUE.
    AfterDue,
    /// ReplB: replace once an unrepaired permanent fault generates enough
    /// corrected errors (threshold crossing modelled as a per-fault trigger
    /// probability — faults in rarely touched regions never cross it).
    AfterErrors {
        /// Probability an unrepaired permanent fault trips the threshold.
        trigger_prob: f64,
    },
}

/// One experimental arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Node memory geometry.
    pub dram: DramConfig,
    /// LLC geometry and indexing.
    pub llc: CacheConfig,
    /// Fault injection model.
    pub fault_model: FaultModel,
    /// ECC outcome model.
    pub ecc: EccModel,
    /// Repair mechanism under test.
    pub mechanism: Mechanism,
    /// Maintenance policy.
    pub replacement: ReplacementPolicy,
}

impl Scenario {
    /// The paper's default evaluation arm: 8×8 GiB DIMM node, hashed
    /// 8 MiB LLC, Cielo rates with the refined variation model over
    /// 6 years, chipkill ECC, no repair, ReplA maintenance.
    pub fn isca16_baseline() -> Self {
        Self {
            dram: DramConfig::isca16_reliability(),
            llc: CacheConfig::isca16_llc(),
            fault_model: FaultModel::isca16(FitRates::cielo(), 6.0),
            ecc: EccModel::isca16(),
            mechanism: Mechanism::None,
            replacement: ReplacementPolicy::AfterDue,
        }
    }

    /// ReplB's default trigger probability: nearly every unrepaired
    /// permanent fault in active memory crosses an error threshold within
    /// the window.
    pub const REPLB_TRIGGER: f64 = 0.95;

    /// Returns the arm with a different mechanism.
    pub fn with_mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Returns the arm with a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Returns the arm with FIT rates scaled by `factor` (the 10× studies).
    pub fn with_fit_scale(mut self, factor: f64) -> Self {
        self.fault_model.rates = self.fault_model.rates.scaled(factor);
        self
    }

    /// Returns the arm with an unhashed LLC (Figure 8's comparison).
    pub fn without_set_hashing(mut self) -> Self {
        self.llc = CacheConfig::isca16_llc_no_hash();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_consistent() {
        let s = Scenario::isca16_baseline();
        s.dram.validate().unwrap();
        s.llc.validate().unwrap();
        assert_eq!(s.mechanism, Mechanism::None);
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
            .with_fit_scale(10.0)
            .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 0.9 });
        assert_eq!(s.mechanism, Mechanism::RelaxFault { max_ways: 4 });
        assert!((s.fault_model.rates.total_permanent() - 200.0).abs() < 1e-9);
        assert!(matches!(s.replacement, ReplacementPolicy::AfterErrors { .. }));
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(Mechanism::RelaxFault { max_ways: 1 }.label(), "RelaxFault-1way");
        assert_eq!(Mechanism::FreeFault { max_ways: 16 }.label(), "FreeFault-16way");
        assert_eq!(Mechanism::Ppr.label(), "PPR");
        assert_eq!(Mechanism::None.label(), "No repair");
    }
}
