//! Experimental arms: geometry + fault model + ECC + mechanism + policy.

use relaxfault_cache::CacheConfig;
use relaxfault_dram::DramConfig;
use relaxfault_ecc::EccModel;
use relaxfault_faults::{FaultModel, FitRates};
use relaxfault_util::json::Value;

/// Which repair mechanism a scenario applies to each newly discovered
/// permanent fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// No fine-grained repair (the baseline policy).
    None,
    /// RelaxFault with a per-set way limit.
    RelaxFault {
        /// Maximum LLC ways any set may devote to repair.
        max_ways: u32,
    },
    /// FreeFault with a per-set way limit.
    FreeFault {
        /// Maximum LLC ways any set may devote to repair.
        max_ways: u32,
    },
    /// DDR4-style post-package repair.
    Ppr,
    /// PPR with non-standard sparing (ablations).
    PprCustom {
        /// Banks per bank group.
        banks_per_group: u32,
        /// Spare rows per bank group.
        spares_per_group: u32,
    },
}

impl Mechanism {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Mechanism::None => "No repair".to_string(),
            Mechanism::RelaxFault { max_ways } => format!("RelaxFault-{max_ways}way"),
            Mechanism::FreeFault { max_ways } => format!("FreeFault-{max_ways}way"),
            Mechanism::Ppr => "PPR".to_string(),
            Mechanism::PprCustom {
                banks_per_group,
                spares_per_group,
            } => {
                format!("PPR-{spares_per_group}x{banks_per_group}b")
            }
        }
    }

    /// Serializes the mechanism as a tagged JSON object.
    pub fn to_json(&self) -> Value {
        match self {
            Mechanism::None => Value::object([("kind", "none".into())]),
            Mechanism::RelaxFault { max_ways } => Value::object([
                ("kind", "relaxfault".into()),
                ("max_ways", u64::from(*max_ways).into()),
            ]),
            Mechanism::FreeFault { max_ways } => Value::object([
                ("kind", "freefault".into()),
                ("max_ways", u64::from(*max_ways).into()),
            ]),
            Mechanism::Ppr => Value::object([("kind", "ppr".into())]),
            Mechanism::PprCustom {
                banks_per_group,
                spares_per_group,
            } => Value::object([
                ("kind", "ppr_custom".into()),
                ("banks_per_group", u64::from(*banks_per_group).into()),
                ("spares_per_group", u64::from(*spares_per_group).into()),
            ]),
        }
    }

    /// Parses a mechanism from the object form produced by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("mechanism needs a string \"kind\"")?;
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .map(|f| f as u32)
                .ok_or_else(|| format!("mechanism \"{kind}\" needs a numeric \"{key}\""))
        };
        match kind {
            "none" => Ok(Mechanism::None),
            "relaxfault" => Ok(Mechanism::RelaxFault {
                max_ways: field("max_ways")?,
            }),
            "freefault" => Ok(Mechanism::FreeFault {
                max_ways: field("max_ways")?,
            }),
            "ppr" => Ok(Mechanism::Ppr),
            "ppr_custom" => Ok(Mechanism::PprCustom {
                banks_per_group: field("banks_per_group")?,
                spares_per_group: field("spares_per_group")?,
            }),
            other => Err(format!("unknown mechanism kind {other:?}")),
        }
    }
}

/// When a DIMM gets replaced (paper §5.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplacementPolicy {
    /// Never replace (used for pure coverage studies).
    None,
    /// ReplA: replace immediately after a non-transient DUE.
    AfterDue,
    /// ReplB: replace once an unrepaired permanent fault generates enough
    /// corrected errors (threshold crossing modelled as a per-fault trigger
    /// probability — faults in rarely touched regions never cross it).
    AfterErrors {
        /// Probability an unrepaired permanent fault trips the threshold.
        trigger_prob: f64,
    },
}

impl ReplacementPolicy {
    /// Serializes the policy as a tagged JSON object.
    pub fn to_json(&self) -> Value {
        match self {
            ReplacementPolicy::None => Value::object([("kind", "none".into())]),
            ReplacementPolicy::AfterDue => Value::object([("kind", "after_due".into())]),
            ReplacementPolicy::AfterErrors { trigger_prob } => Value::object([
                ("kind", "after_errors".into()),
                ("trigger_prob", (*trigger_prob).into()),
            ]),
        }
    }

    /// Parses a policy from the object form produced by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("replacement policy needs a string \"kind\"")?;
        match kind {
            "none" => Ok(ReplacementPolicy::None),
            "after_due" => Ok(ReplacementPolicy::AfterDue),
            "after_errors" => Ok(ReplacementPolicy::AfterErrors {
                trigger_prob: v
                    .get("trigger_prob")
                    .and_then(Value::as_f64)
                    .ok_or("\"after_errors\" needs a numeric \"trigger_prob\"")?,
            }),
            other => Err(format!("unknown replacement policy kind {other:?}")),
        }
    }
}

/// One experimental arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Node memory geometry.
    pub dram: DramConfig,
    /// LLC geometry and indexing.
    pub llc: CacheConfig,
    /// Fault injection model.
    pub fault_model: FaultModel,
    /// ECC outcome model.
    pub ecc: EccModel,
    /// Repair mechanism under test.
    pub mechanism: Mechanism,
    /// Maintenance policy.
    pub replacement: ReplacementPolicy,
}

impl Scenario {
    /// The paper's default evaluation arm: 8×8 GiB DIMM node, hashed
    /// 8 MiB LLC, Cielo rates with the refined variation model over
    /// 6 years, chipkill ECC, no repair, ReplA maintenance.
    pub fn isca16_baseline() -> Self {
        Self {
            dram: DramConfig::isca16_reliability(),
            llc: CacheConfig::isca16_llc(),
            fault_model: FaultModel::isca16(FitRates::cielo(), 6.0),
            ecc: EccModel::isca16(),
            mechanism: Mechanism::None,
            replacement: ReplacementPolicy::AfterDue,
        }
    }

    /// ReplB's default trigger probability: nearly every unrepaired
    /// permanent fault in active memory crosses an error threshold within
    /// the window.
    pub const REPLB_TRIGGER: f64 = 0.95;

    /// Returns the arm with a different mechanism.
    pub fn with_mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Returns the arm with a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Returns the arm with FIT rates scaled by `factor` (the 10× studies).
    pub fn with_fit_scale(mut self, factor: f64) -> Self {
        self.fault_model.rates = self.fault_model.rates.scaled(factor);
        self
    }

    /// Returns the arm with an unhashed LLC (Figure 8's comparison).
    pub fn without_set_hashing(mut self) -> Self {
        self.llc = CacheConfig::isca16_llc_no_hash();
        self
    }

    /// Serializes the arm's knobs — everything the builder methods can
    /// change relative to [`Self::isca16_baseline`] — as a JSON object.
    pub fn to_json(&self) -> Value {
        let baseline_fit = FitRates::cielo().total_permanent();
        Value::object([
            ("mechanism", self.mechanism.to_json()),
            ("replacement", self.replacement.to_json()),
            (
                "fit_scale",
                (self.fault_model.rates.total_permanent() / baseline_fit).into(),
            ),
            (
                "set_hashing",
                (!matches!(self.llc.indexing, relaxfault_cache::Indexing::Canonical)).into(),
            ),
        ])
    }

    /// Builds an arm from a JSON config object: the paper baseline with
    /// the object's overrides applied. All keys are optional; unknown
    /// keys are rejected so config typos fail loudly.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let pairs = match v {
            Value::Object(pairs) => pairs,
            _ => return Err("scenario config must be a JSON object".into()),
        };
        let mut scenario = Scenario::isca16_baseline();
        for (key, val) in pairs {
            match key.as_str() {
                "mechanism" => scenario.mechanism = Mechanism::from_json(val)?,
                "replacement" => scenario.replacement = ReplacementPolicy::from_json(val)?,
                "fit_scale" => {
                    let f = val.as_f64().ok_or("\"fit_scale\" must be a number")?;
                    if f <= 0.0 {
                        return Err(format!("\"fit_scale\" must be positive, got {f}"));
                    }
                    scenario = scenario.with_fit_scale(f);
                }
                "set_hashing" => {
                    if !val.as_bool().ok_or("\"set_hashing\" must be a boolean")? {
                        scenario = scenario.without_set_hashing();
                    }
                }
                other => return Err(format!("unknown scenario config key {other:?}")),
            }
        }
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_consistent() {
        let s = Scenario::isca16_baseline();
        s.dram.validate().unwrap();
        s.llc.validate().unwrap();
        assert_eq!(s.mechanism, Mechanism::None);
    }

    #[test]
    fn builders_compose() {
        let s = Scenario::isca16_baseline()
            .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
            .with_fit_scale(10.0)
            .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 0.9 });
        assert_eq!(s.mechanism, Mechanism::RelaxFault { max_ways: 4 });
        assert!((s.fault_model.rates.total_permanent() - 200.0).abs() < 1e-9);
        assert!(matches!(
            s.replacement,
            ReplacementPolicy::AfterErrors { .. }
        ));
    }

    #[test]
    fn json_roundtrips_builder_combinations() {
        let arms = [
            Scenario::isca16_baseline(),
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
                .with_fit_scale(10.0)
                .without_set_hashing(),
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::PprCustom {
                    banks_per_group: 4,
                    spares_per_group: 2,
                })
                .with_replacement(ReplacementPolicy::AfterErrors { trigger_prob: 0.9 }),
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::FreeFault { max_ways: 16 })
                .with_replacement(ReplacementPolicy::None),
        ];
        for arm in &arms {
            // Through text, as a config file would go.
            let text = arm.to_json().to_pretty();
            let parsed = Value::parse(&text).unwrap();
            assert_eq!(&Scenario::from_json(&parsed).unwrap(), arm);
        }
    }

    #[test]
    fn json_config_rejects_typos() {
        let bad = Value::parse(r#"{"mechanisms": {"kind": "ppr"}}"#).unwrap();
        assert!(Scenario::from_json(&bad)
            .unwrap_err()
            .contains("mechanisms"));
        let bad = Value::parse(r#"{"mechanism": {"kind": "relaxfault"}}"#).unwrap();
        assert!(Scenario::from_json(&bad).unwrap_err().contains("max_ways"));
        let bad = Value::parse(r#"{"fit_scale": -1}"#).unwrap();
        assert!(Scenario::from_json(&bad).unwrap_err().contains("positive"));
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(
            Mechanism::RelaxFault { max_ways: 1 }.label(),
            "RelaxFault-1way"
        );
        assert_eq!(
            Mechanism::FreeFault { max_ways: 16 }.label(),
            "FreeFault-16way"
        );
        assert_eq!(Mechanism::Ppr.label(), "PPR");
        assert_eq!(Mechanism::None.label(), "No repair");
    }
}
