//! Sharded, epoch-based fleet simulation with bit-exact checkpoint/resume.
//!
//! The single-shot engine ([`crate::engine::run_scenarios`]) answers "what
//! does a population of N lifetimes look like at end of life". A fleet
//! operator asks a different question: "where is my fleet *now*, epoch by
//! epoch, and what happens if the forecasting service dies mid-run". This
//! module grows the engine into that service:
//!
//! * the node population is partitioned into [`FleetConfig::shards`]
//!   contiguous shards, scheduled on a work-stealing pool exactly like the
//!   engine's trial chunks — which worker processes a shard never affects
//!   its results;
//! * time advances in discrete *epochs* (equal slices of the observation
//!   window). Each epoch only re-evaluates nodes whose fault state grew,
//!   tracked by a dirty-set keyed on the fault sampler's arrival stream
//!   ([`ArrivalCursor`]): a node with no new arrival this epoch is
//!   untouched. Per-epoch work is therefore proportional to the dirty
//!   count (observable as the `fleet.dirty_evals` counter), not the fleet
//!   size;
//! * incremental evaluation telescopes: a dirty node contributes
//!   `eval(events[..new]) − eval(events[..old])` to the arm metrics, and
//!   both evaluations restart the same per-trial eval RNG stream
//!   ([`crate::engine::eval_rng_seed`]), so after the final epoch every
//!   arm's totals are bit-identical to the engine evaluating the full
//!   lifetimes — at any thread count;
//! * after every epoch a [`FleetCheckpoint`] is written atomically (via
//!   [`Persist`]): RNG-stream coordinates, per-shard population digests,
//!   per-shard arm metrics, and the scenario arms themselves. Resuming
//!   re-runs the deterministic init scan, verifies the digests, restores
//!   the metrics, and continues — producing the uninterrupted run's
//!   results bit-exactly from any epoch boundary.
//!
//! Crash injection for the test matrix and the CI gate is first-class:
//! [`CrashPoint`] (or the `RF_FLEET_CRASH_AT` env hook) kills a run at a
//! chosen epoch boundary or mid-epoch.

use crate::engine::{eval_rng_seed, sample_rng_seed};
use crate::node::{evaluate_events_with, EvalScratch, NodeOutcome};
use crate::repro::trial_digest;
use crate::scenario::Scenario;
use relaxfault_faults::arrivals::ArrivalCursor;
use relaxfault_faults::modes::HOURS_PER_YEAR;
use relaxfault_faults::{FaultSampler, NodeFaults};
use relaxfault_util::json::Value;
use relaxfault_util::obs::{self, Level};
use relaxfault_util::persist::{self, Persist};
use relaxfault_util::rng::Rng64;
use relaxfault_util::serve;
use relaxfault_util::trace_event;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Checkpoint file format version; bump on breaking layout changes.
pub const FLEET_SCHEMA_VERSION: u64 = 1;

/// The `kind` tag distinguishing fleet checkpoints from repro cases and
/// obs snapshots.
pub const FLEET_CHECKPOINT_KIND: &str = "fleet_checkpoint";

/// Default shard count when [`FleetConfig::shards`] is 0. Deliberately a
/// fixed constant, never derived from the thread count: shard boundaries
/// feed the per-shard digests, and those must be identical at any
/// `threads` setting for checkpoints to be comparable across machines.
pub const AUTO_SHARDS: u32 = 64;

/// Where to kill a run, for the crash-point test matrix and the CI gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash at the boundary entering epoch `k` — after the checkpoint
    /// with `completed_epochs == k` was written, before epoch `k` runs.
    /// `Boundary(0)` dies right after the init checkpoint.
    Boundary(u32),
    /// Crash midway through epoch `k`: some shards processed in memory,
    /// no checkpoint written for it. Resume must redo the whole epoch.
    MidEpoch(u32),
}

/// Parses an `RF_FLEET_CRASH_AT` value: `"N"` for [`CrashPoint::Boundary`],
/// `"mid:N"` for [`CrashPoint::MidEpoch`]. Pure so tests can cover it
/// without touching process environment.
pub fn parse_crash_at(s: &str) -> Option<CrashPoint> {
    if let Some(rest) = s.strip_prefix("mid:") {
        return rest.trim().parse().ok().map(CrashPoint::MidEpoch);
    }
    s.trim().parse().ok().map(CrashPoint::Boundary)
}

/// Reads the `RF_FLEET_CRASH_AT` crash hook from the environment.
pub fn crash_at_from_env() -> Option<CrashPoint> {
    std::env::var("RF_FLEET_CRASH_AT")
        .ok()
        .as_deref()
        .and_then(parse_crash_at)
}

/// Execution parameters for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size: node lifetimes simulated (trial indices `0..nodes`).
    pub nodes: u64,
    /// Lifetime epochs the observation window is divided into.
    pub epochs: u32,
    /// Population shards; 0 picks [`AUTO_SHARDS`].
    pub shards: u32,
    /// Base RNG seed — the same `(seed, trial, group)` stream keying as
    /// the engine, so fleets and engine runs share populations.
    pub seed: u64,
    /// Worker threads (0 or 1 = single-threaded). Never affects results.
    pub threads: usize,
    /// Where to write per-epoch checkpoints; `None` disables persistence.
    pub ckpt_dir: Option<PathBuf>,
    /// Injected crash point (tests/CI); `None` runs to completion.
    pub crash_at: Option<CrashPoint>,
}

impl FleetConfig {
    /// A small single-threaded configuration for tests, checkpointing
    /// disabled.
    pub fn quick(nodes: u64, epochs: u32, seed: u64) -> Self {
        Self {
            nodes,
            epochs,
            shards: 8,
            seed,
            threads: 1,
            ckpt_dir: None,
            crash_at: None,
        }
    }

    fn resolved_shards(&self) -> u32 {
        if self.shards == 0 {
            AUTO_SHARDS
        } else {
            self.shards
        }
    }
}

/// Integer arm totals accumulated incrementally across epochs. The same
/// quantities as [`crate::engine::ScenarioResult`]'s counters (the ECDF
/// is replaced by a byte total — a telescoping sum, unlike a
/// distribution), so a finished fleet can be cross-checked field by field
/// against an engine run over the same population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Nodes with at least one permanent fault.
    pub faulty_nodes: u64,
    /// Faulty nodes whose every permanent fault is currently repaired.
    pub fully_repaired_nodes: u64,
    /// Total LLC bytes locked for repair across the fleet.
    pub repair_bytes_total: u64,
    /// Total DUEs.
    pub dues: u64,
    /// DUEs triggered by transient faults.
    pub transient_dues: u64,
    /// Total SDCs.
    pub sdcs: u64,
    /// Total DIMM replacements.
    pub replacements: u64,
    /// Permanent faults that stayed unrepaired.
    pub unrepaired_faults: u64,
    /// Permanent faults observed.
    pub permanent_faults: u64,
    /// Worst per-set repair occupancy seen in any node.
    pub max_ways_seen: u32,
    /// Unrepaired permanent faults by `FaultMode` index.
    pub unrepaired_by_mode: [u64; 6],
}

impl FleetMetrics {
    /// Applies one dirty node's epoch delta: the outcome of its new event
    /// prefix minus the outcome of its old prefix. Every counter is
    /// monotone per node except `fully_repaired_nodes` (a later fault can
    /// un-repair a node), so deltas are applied add-then-subtract with
    /// checked arithmetic — a negative total would mean the telescoping
    /// invariant broke, which must be loud.
    fn absorb(&mut self, new: &NodeOutcome, old: &NodeOutcome) {
        fn shift(total: &mut u64, add: u64, sub: u64, what: &str) {
            *total += add;
            *total = total
                .checked_sub(sub)
                .unwrap_or_else(|| panic!("fleet metric {what} went negative"));
        }
        shift(
            &mut self.faulty_nodes,
            new.faulty as u64,
            old.faulty as u64,
            "faulty_nodes",
        );
        shift(
            &mut self.fully_repaired_nodes,
            new.fully_repaired as u64,
            old.fully_repaired as u64,
            "fully_repaired_nodes",
        );
        shift(
            &mut self.repair_bytes_total,
            new.repair_bytes,
            old.repair_bytes,
            "repair_bytes_total",
        );
        shift(&mut self.dues, new.dues as u64, old.dues as u64, "dues");
        shift(
            &mut self.transient_dues,
            new.transient_dues as u64,
            old.transient_dues as u64,
            "transient_dues",
        );
        shift(&mut self.sdcs, new.sdcs as u64, old.sdcs as u64, "sdcs");
        shift(
            &mut self.replacements,
            new.replacements as u64,
            old.replacements as u64,
            "replacements",
        );
        shift(
            &mut self.unrepaired_faults,
            new.unrepaired_faults as u64,
            old.unrepaired_faults as u64,
            "unrepaired_faults",
        );
        shift(
            &mut self.permanent_faults,
            new.permanent_faults as u64,
            old.permanent_faults as u64,
            "permanent_faults",
        );
        for (i, (total, sub)) in self
            .unrepaired_by_mode
            .iter_mut()
            .zip(old.unrepaired_by_mode)
            .enumerate()
        {
            *total += new.unrepaired_by_mode[i] as u64;
            *total = total
                .checked_sub(sub as u64)
                .expect("fleet metric unrepaired_by_mode went negative");
        }
        // A longer prefix replays the shorter one exactly (same fresh eval
        // stream), so per-node high-water marks only grow: max-of-max is
        // incremental.
        self.max_ways_seen = self.max_ways_seen.max(new.max_ways);
    }

    /// Sums another shard's totals into this one.
    pub fn merge(&mut self, other: &FleetMetrics) {
        self.faulty_nodes += other.faulty_nodes;
        self.fully_repaired_nodes += other.fully_repaired_nodes;
        self.repair_bytes_total += other.repair_bytes_total;
        self.dues += other.dues;
        self.transient_dues += other.transient_dues;
        self.sdcs += other.sdcs;
        self.replacements += other.replacements;
        self.unrepaired_faults += other.unrepaired_faults;
        self.permanent_faults += other.permanent_faults;
        self.max_ways_seen = self.max_ways_seen.max(other.max_ways_seen);
        for (a, b) in self
            .unrepaired_by_mode
            .iter_mut()
            .zip(other.unrepaired_by_mode)
        {
            *a += b;
        }
    }

    /// JSON form (plain numbers: every counter stays far below 2^53).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("faulty_nodes", Value::from(self.faulty_nodes)),
            (
                "fully_repaired_nodes",
                Value::from(self.fully_repaired_nodes),
            ),
            ("repair_bytes_total", Value::from(self.repair_bytes_total)),
            ("dues", Value::from(self.dues)),
            ("transient_dues", Value::from(self.transient_dues)),
            ("sdcs", Value::from(self.sdcs)),
            ("replacements", Value::from(self.replacements)),
            ("unrepaired_faults", Value::from(self.unrepaired_faults)),
            ("permanent_faults", Value::from(self.permanent_faults)),
            ("max_ways_seen", Value::from(self.max_ways_seen as u64)),
            (
                "unrepaired_by_mode",
                Value::Array(
                    self.unrepaired_by_mode
                        .iter()
                        .map(|&n| Value::from(n))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes [`FleetMetrics::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the first missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let modes = v
            .get("unrepaired_by_mode")
            .and_then(Value::as_array)
            .ok_or("unrepaired_by_mode must be an array")?;
        if modes.len() != 6 {
            return Err(format!(
                "unrepaired_by_mode must have 6 entries, found {}",
                modes.len()
            ));
        }
        let mut unrepaired_by_mode = [0u64; 6];
        for (slot, m) in unrepaired_by_mode.iter_mut().zip(modes) {
            *slot = m
                .as_f64()
                .filter(|n| *n >= 0.0 && *n == n.trunc() && *n < 9e15)
                .ok_or("unrepaired_by_mode entries must be integers")? as u64;
        }
        Ok(Self {
            faulty_nodes: persist::parse_u64_field(v, "faulty_nodes")?,
            fully_repaired_nodes: persist::parse_u64_field(v, "fully_repaired_nodes")?,
            repair_bytes_total: persist::parse_u64_field(v, "repair_bytes_total")?,
            dues: persist::parse_u64_field(v, "dues")?,
            transient_dues: persist::parse_u64_field(v, "transient_dues")?,
            sdcs: persist::parse_u64_field(v, "sdcs")?,
            replacements: persist::parse_u64_field(v, "replacements")?,
            unrepaired_faults: persist::parse_u64_field(v, "unrepaired_faults")?,
            permanent_faults: persist::parse_u64_field(v, "permanent_faults")?,
            max_ways_seen: persist::parse_u64_field(v, "max_ways_seen")? as u32,
            unrepaired_by_mode,
        })
    }
}

/// A deterministic snapshot of a fleet run at an epoch boundary: the
/// RNG-stream coordinates that regenerate the population, per-shard
/// digests that prove the regeneration was bit-exact, and the per-shard
/// arm totals accumulated so far. Everything needed to continue the run
/// as if the crash never happened.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Fleet size.
    pub nodes: u64,
    /// Total lifetime epochs of the run.
    pub epochs: u32,
    /// Shard count the population is partitioned into.
    pub shards: u32,
    /// Epochs fully processed (0 = init scan only).
    pub completed_epochs: u32,
    /// Digest of the run configuration (scenarios + shape + seed); a
    /// resume with drifted config fails loudly instead of continuing a
    /// different experiment.
    pub config_digest: u64,
    /// Total dirty-node evaluations so far (the incrementality counter).
    pub dirty_evals: u64,
    /// The scenario arms, embedded so a checkpoint is self-contained.
    pub scenarios: Vec<Scenario>,
    /// Per-shard population digests (fold of every faulty node's trial
    /// index and lifetime digest, in trial order).
    pub shard_digests: Vec<u64>,
    /// Per-shard, per-arm metric totals through `completed_epochs`.
    pub shard_metrics: Vec<Vec<FleetMetrics>>,
}

impl Persist for FleetCheckpoint {
    const KIND: &'static str = FLEET_CHECKPOINT_KIND;
    const SCHEMA_VERSION: u64 = FLEET_SCHEMA_VERSION;

    fn to_json(&self) -> Value {
        Value::object([
            ("schema_version", Value::from(FLEET_SCHEMA_VERSION)),
            ("kind", Value::from(FLEET_CHECKPOINT_KIND)),
            ("seed", persist::hex(self.seed)),
            ("nodes", Value::from(self.nodes)),
            ("epochs", Value::from(self.epochs as u64)),
            ("shards", Value::from(self.shards as u64)),
            (
                "completed_epochs",
                Value::from(self.completed_epochs as u64),
            ),
            ("config_digest", persist::hex(self.config_digest)),
            ("dirty_evals", Value::from(self.dirty_evals)),
            (
                "scenarios",
                Value::Array(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
            (
                "shard_digests",
                Value::Array(
                    self.shard_digests
                        .iter()
                        .map(|&d| persist::hex(d))
                        .collect(),
                ),
            ),
            (
                "shard_metrics",
                Value::Array(
                    self.shard_metrics
                        .iter()
                        .map(|arms| Value::Array(arms.iter().map(FleetMetrics::to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Self::check_header(v)?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing {k}"));
        let scenarios = field("scenarios")?
            .as_array()
            .ok_or("scenarios must be an array")?
            .iter()
            .map(Scenario::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let shard_digests = field("shard_digests")?
            .as_array()
            .ok_or("shard_digests must be an array")?
            .iter()
            .map(|d| {
                persist::parse_hex(d).ok_or_else(|| "shard_digests must be hex strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shard_metrics = field("shard_metrics")?
            .as_array()
            .ok_or("shard_metrics must be an array")?
            .iter()
            .map(|arms| {
                arms.as_array()
                    .ok_or_else(|| "shard_metrics entries must be arrays".to_string())?
                    .iter()
                    .map(FleetMetrics::from_json)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ckpt = Self {
            seed: persist::parse_hex_field(v, "seed")?,
            nodes: persist::parse_u64_field(v, "nodes")?,
            epochs: persist::parse_u64_field(v, "epochs")? as u32,
            shards: persist::parse_u64_field(v, "shards")? as u32,
            completed_epochs: persist::parse_u64_field(v, "completed_epochs")? as u32,
            config_digest: persist::parse_hex_field(v, "config_digest")?,
            dirty_evals: persist::parse_u64_field(v, "dirty_evals")?,
            scenarios,
            shard_digests,
            shard_metrics,
        };
        if ckpt.shard_digests.len() != ckpt.shards as usize {
            return Err(format!(
                "shard_digests has {} entries for {} shards",
                ckpt.shard_digests.len(),
                ckpt.shards
            ));
        }
        if ckpt.shard_metrics.len() != ckpt.shards as usize {
            return Err(format!(
                "shard_metrics has {} entries for {} shards",
                ckpt.shard_metrics.len(),
                ckpt.shards
            ));
        }
        if ckpt
            .shard_metrics
            .iter()
            .any(|arms| arms.len() != ckpt.scenarios.len())
        {
            return Err("shard_metrics arm count disagrees with scenarios".into());
        }
        if ckpt.completed_epochs > ckpt.epochs {
            return Err(format!(
                "completed_epochs {} exceeds epochs {}",
                ckpt.completed_epochs, ckpt.epochs
            ));
        }
        Ok(ckpt)
    }
}

impl FleetCheckpoint {
    /// The canonical file name for a checkpoint at this boundary.
    pub fn file_name(completed_epochs: u32) -> String {
        format!("ckpt_epoch_{completed_epochs:04}.json")
    }
}

/// Finds the newest checkpoint (highest completed epoch) in `dir`.
///
/// # Errors
///
/// Returns an error when the directory is unreadable or holds no
/// checkpoint files.
pub fn latest_checkpoint(dir: &Path) -> Result<PathBuf, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read: {e}", dir.display()))?;
    let mut best: Option<(u32, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: cannot read entry: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(epoch) = name
            .strip_prefix("ckpt_epoch_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
            best = Some((epoch, entry.path()));
        }
    }
    best.map(|(_, p)| p)
        .ok_or_else(|| format!("{}: no ckpt_epoch_*.json checkpoints found", dir.display()))
}

/// One faulty node held in memory for the whole run: its lifetime is
/// sampled exactly once (in the init scan), so resampling can never skew
/// the injection counters or the arrival schedule between a full and a
/// resumed run.
struct FaultyNode {
    trial: u64,
    node: NodeFaults,
    cursor: ArrivalCursor,
}

/// One contiguous slice of the fleet.
struct Shard {
    /// Owned trial range `lo..hi`.
    lo: u64,
    hi: u64,
    faulty: Vec<FaultyNode>,
    /// Fold of `(trial, lifetime digest)` over `faulty`, in trial order.
    digest: u64,
    /// Per-arm totals through the completed epochs.
    metrics: Vec<FleetMetrics>,
    /// Dirty-node evaluations charged to this shard.
    dirty_evals: u64,
}

/// A live fleet simulation. Construct with [`FleetSim::new`] (fresh run)
/// or [`FleetSim::resume`] (continue from the newest checkpoint), then
/// [`FleetSim::step`] through epochs or [`FleetSim::run_to_end`].
pub struct FleetSim {
    scenarios: Vec<Scenario>,
    nodes: u64,
    epochs: u32,
    seed: u64,
    threads: usize,
    hours: f64,
    ckpt_dir: Option<PathBuf>,
    crash_at: Option<CrashPoint>,
    config_digest: u64,
    shards: Vec<Mutex<Shard>>,
    completed_epochs: u32,
    /// Dirty-node count of each epoch processed *by this process* (a
    /// resumed run only logs the epochs it actually ran).
    epoch_dirty: Vec<u64>,
}

impl FleetSim {
    /// Builds a fleet and runs the init scan: every node's lifetime is
    /// sampled once from its `(seed, trial, 0)` stream, faulty nodes are
    /// retained with their arrival cursors, and per-shard digests are
    /// folded. If checkpointing is enabled, the epoch-0 checkpoint is
    /// written so even a crash before the first epoch is resumable.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid: no arms, arms disagreeing
    /// on DRAM geometry or fault model (the fleet shares one sample stream
    /// across arms, like one engine group), zero nodes or epochs, or an
    /// unwritable checkpoint directory.
    pub fn new(scenarios: Vec<Scenario>, cfg: FleetConfig) -> FleetSim {
        assert!(!scenarios.is_empty(), "no scenario arms given");
        assert!(cfg.nodes > 0, "fleet must have at least one node");
        assert!(cfg.epochs > 0, "fleet must run at least one epoch");
        let dram = scenarios[0].dram;
        assert!(
            scenarios.iter().all(|s| s.dram == dram),
            "all arms must share one DRAM geometry"
        );
        assert!(
            scenarios
                .iter()
                .all(|s| s.fault_model == scenarios[0].fault_model),
            "all arms must share one fault model (one sample-stream group)"
        );
        let sim = Self::init(scenarios, &cfg);
        if sim.ckpt_dir.is_some() {
            sim.write_checkpoint()
                .unwrap_or_else(|e| panic!("init checkpoint: {e}"));
        }
        sim
    }

    /// Resumes from the newest checkpoint in `dir`. The population is
    /// regenerated by re-running the init scan (it is a pure function of
    /// the checkpointed seed), then proven bit-identical against the
    /// checkpointed per-shard digests before any state is restored.
    ///
    /// # Errors
    ///
    /// Returns an error when no checkpoint exists, the file is corrupt,
    /// or the regenerated population disagrees with the recorded digests.
    pub fn resume(dir: &Path, threads: usize) -> Result<FleetSim, String> {
        let path = latest_checkpoint(dir)?;
        Self::resume_from(&path, threads, Some(dir.to_path_buf()))
    }

    /// Resumes from one specific checkpoint file. `ckpt_dir` is where the
    /// continued run writes its subsequent checkpoints (`None` stops
    /// persisting).
    ///
    /// # Errors
    ///
    /// See [`FleetSim::resume`].
    pub fn resume_from(
        path: &Path,
        threads: usize,
        ckpt_dir: Option<PathBuf>,
    ) -> Result<FleetSim, String> {
        let ckpt = FleetCheckpoint::load(path)?;
        let cfg = FleetConfig {
            nodes: ckpt.nodes,
            epochs: ckpt.epochs,
            shards: ckpt.shards,
            seed: ckpt.seed,
            threads,
            ckpt_dir,
            crash_at: None,
        };
        let mut sim = Self::init(ckpt.scenarios.clone(), &cfg);
        sim.restore(&ckpt)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(sim)
    }

    /// Shared construction: partitions the fleet and runs the init scan
    /// on the work-stealing pool.
    fn init(scenarios: Vec<Scenario>, cfg: &FleetConfig) -> FleetSim {
        let shard_count = cfg.resolved_shards();
        let per_shard = cfg.nodes.div_ceil(shard_count as u64);
        let hours = scenarios[0].fault_model.years * HOURS_PER_YEAR;
        let arms = scenarios.len();

        let mut config = String::new();
        for s in &scenarios {
            config.push_str(&s.to_json().to_string());
        }
        let mut config_digest = obs::fnv1a(config.as_bytes());
        for part in [cfg.nodes, cfg.epochs as u64, shard_count as u64, cfg.seed] {
            config_digest = persist::fold_digest(config_digest, part);
        }

        let shards: Vec<Mutex<Shard>> = (0..shard_count)
            .map(|s| {
                let lo = (s as u64 * per_shard).min(cfg.nodes);
                let hi = ((s as u64 + 1) * per_shard).min(cfg.nodes);
                Mutex::new(Shard {
                    lo,
                    hi,
                    faulty: Vec::new(),
                    digest: 0,
                    metrics: vec![FleetMetrics::default(); arms],
                    dirty_evals: 0,
                })
            })
            .collect();

        trace_event!(target: "relsim", Level::Info, "fleet_init",
            nodes = cfg.nodes, epochs = cfg.epochs, shards = shard_count,
            seed = cfg.seed);

        // Init scan: workers steal shards; results live in the shard, so
        // which worker scanned it never matters.
        let threads = cfg.threads.max(1);
        let next = AtomicUsize::new(0);
        let epochs = cfg.epochs;
        let seed = cfg.seed;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let shards = &shards;
                let scenarios = &scenarios;
                scope.spawn(move || {
                    let sampler = FaultSampler::new(&scenarios[0].fault_model, &scenarios[0].dram);
                    loop {
                        let si = next.fetch_add(1, Ordering::Relaxed);
                        if si >= shards.len() {
                            break;
                        }
                        let mut shard = shards[si].lock().expect("shard lock");
                        let (lo, hi) = (shard.lo, shard.hi);
                        for trial in lo..hi {
                            let mut rng = Rng64::seed_from_u64(sample_rng_seed(seed, trial, 0));
                            if sampler.trial_is_clean(&mut rng) {
                                continue;
                            }
                            let _scope = obs::scope(trial, 0);
                            let mut node = NodeFaults::default();
                            sampler.sample_faulty_into(&mut rng, &mut node);
                            let digest = trial_digest(&node);
                            shard.digest = persist::fold_digest(shard.digest, trial);
                            shard.digest = persist::fold_digest(shard.digest, digest);
                            let cursor = ArrivalCursor::new(&node.events, hours, epochs);
                            shard.faulty.push(FaultyNode {
                                trial,
                                node,
                                cursor,
                            });
                        }
                    }
                });
            }
        });

        FleetSim {
            scenarios,
            nodes: cfg.nodes,
            epochs: cfg.epochs,
            seed: cfg.seed,
            threads,
            hours,
            ckpt_dir: cfg.ckpt_dir.clone(),
            crash_at: cfg.crash_at,
            config_digest,
            shards,
            completed_epochs: 0,
            epoch_dirty: Vec::new(),
        }
    }

    /// Verifies a checkpoint against the regenerated population and
    /// restores the accumulated state.
    fn restore(&mut self, ckpt: &FleetCheckpoint) -> Result<(), String> {
        if ckpt.config_digest != self.config_digest {
            return Err(format!(
                "config digest mismatch: checkpoint {:#018x}, rebuilt {:#018x}",
                ckpt.config_digest, self.config_digest
            ));
        }
        let rebuilt = self.shard_digests();
        if rebuilt != ckpt.shard_digests {
            let bad = rebuilt
                .iter()
                .zip(&ckpt.shard_digests)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(format!(
                "population digest mismatch at shard {bad}: regenerated \
                 {:#018x}, checkpoint {:#018x} — seed or fault model drifted",
                rebuilt[bad], ckpt.shard_digests[bad]
            ));
        }
        let total_dirty: u64 = ckpt.dirty_evals;
        let mut distributed = 0u64;
        for (si, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard lock");
            shard.metrics = ckpt.shard_metrics[si].clone();
            if ckpt.completed_epochs > 0 {
                for f in &mut shard.faulty {
                    f.cursor.seek_past(ckpt.completed_epochs - 1);
                    // Dirty evaluations already performed for this node =
                    // the schedule entries its seek consumed.
                    let consumed_entries = f
                        .cursor
                        .schedule()
                        .iter()
                        .filter(|(e, _)| *e < ckpt.completed_epochs)
                        .count() as u64;
                    distributed += consumed_entries;
                }
            }
            shard.dirty_evals = 0;
        }
        // Re-derive per-shard dirty counts (they are a pure function of
        // the schedules); the checkpoint total must agree.
        if ckpt.completed_epochs > 0 {
            if distributed != total_dirty {
                return Err(format!(
                    "dirty_evals mismatch: checkpoint says {total_dirty}, \
                     schedules imply {distributed}"
                ));
            }
            for shard in &self.shards {
                let mut shard = shard.lock().expect("shard lock");
                shard.dirty_evals = shard
                    .faulty
                    .iter()
                    .map(|f| {
                        f.cursor
                            .schedule()
                            .iter()
                            .filter(|(e, _)| *e < ckpt.completed_epochs)
                            .count() as u64
                    })
                    .sum();
            }
        }
        self.completed_epochs = ckpt.completed_epochs;
        Ok(())
    }

    /// Processes the next epoch: every shard's dirty nodes are
    /// re-evaluated on their grown event prefixes and the arm totals
    /// updated by the telescoping delta. Writes a checkpoint at the new
    /// boundary (when persistence is on) and honours the injected crash
    /// point.
    ///
    /// # Errors
    ///
    /// Returns an error on a simulated crash or a failed checkpoint
    /// write. (A simulated crash intentionally leaves in-memory state
    /// half-updated — resume from disk, as a real crash would.)
    ///
    /// # Panics
    ///
    /// Panics when called after the final epoch completed.
    pub fn step(&mut self) -> Result<(), String> {
        let epoch = self.completed_epochs;
        assert!(
            epoch < self.epochs,
            "fleet already ran all {} epochs",
            self.epochs
        );
        if self.crash_at == Some(CrashPoint::Boundary(epoch)) {
            return Err(format!("simulated crash at boundary of epoch {epoch}"));
        }
        let mid_crash = self.crash_at == Some(CrashPoint::MidEpoch(epoch));
        // A mid-epoch crash processes a deterministic prefix of the
        // shards, then dies without checkpointing.
        let shard_limit = if mid_crash {
            (self.shards.len() / 2).max(1)
        } else {
            self.shards.len()
        };

        let dirty_before = self.dirty_evals();
        // Live-plane instrumentation: the span feeds the flight recorder
        // and profiler, the gauges make `/metrics` show within-epoch
        // progress while workers are still running.
        let _epoch_span = obs::span("relsim.fleet.epoch_ns");
        obs::gauge("fleet.current_epoch").set(epoch as f64);
        let shards_done_gauge = obs::gauge("fleet.epoch_shards_done");
        shards_done_gauge.set(0.0);
        let shards_done = AtomicUsize::new(0);
        let threads = self.threads.max(1);
        let next = AtomicUsize::new(0);
        let seed = self.seed;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let shards = &self.shards;
                let scenarios = &self.scenarios;
                let shards_done = &shards_done;
                let shards_done_gauge = shards_done_gauge.clone();
                scope.spawn(move || {
                    let mut scratches: Vec<EvalScratch> =
                        scenarios.iter().map(|_| EvalScratch::new()).collect();
                    loop {
                        let si = next.fetch_add(1, Ordering::Relaxed);
                        if si >= shard_limit {
                            break;
                        }
                        let mut shard = shards[si].lock().expect("shard lock");
                        let shard = &mut *shard;
                        for f in &mut shard.faulty {
                            let Some((old, new)) = f.cursor.advance_to(epoch) else {
                                continue;
                            };
                            shard.dirty_evals += 1;
                            for (ai, s) in scenarios.iter().enumerate() {
                                let mut rng = Rng64::seed_from_u64(eval_rng_seed(seed, f.trial));
                                let out_new = evaluate_events_with(
                                    s,
                                    &f.node.events[..new as usize],
                                    &mut rng,
                                    &mut scratches[ai],
                                );
                                let out_old = if old == 0 {
                                    NodeOutcome::default()
                                } else {
                                    let mut rng =
                                        Rng64::seed_from_u64(eval_rng_seed(seed, f.trial));
                                    evaluate_events_with(
                                        s,
                                        &f.node.events[..old as usize],
                                        &mut rng,
                                        &mut scratches[ai],
                                    )
                                };
                                shard.metrics[ai].absorb(&out_new, &out_old);
                            }
                        }
                        shards_done_gauge
                            .set(shards_done.fetch_add(1, Ordering::Relaxed) as f64 + 1.0);
                    }
                });
            }
        });

        if mid_crash {
            return Err(format!("simulated crash mid-epoch {epoch}"));
        }
        self.completed_epochs += 1;
        self.epoch_dirty.push(self.dirty_evals() - dirty_before);
        trace_event!(target: "relsim", Level::Debug, "fleet_epoch",
            epoch = epoch, dirty = *self.epoch_dirty.last().expect("just pushed"));
        if self.ckpt_dir.is_some() {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Steps through every remaining epoch.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FleetSim::step`] failure.
    pub fn run_to_end(&mut self) -> Result<(), String> {
        while self.completed_epochs < self.epochs {
            self.step()?;
        }
        Ok(())
    }

    /// Builds the checkpoint describing the current boundary.
    pub fn checkpoint(&self) -> FleetCheckpoint {
        let mut shard_digests = Vec::with_capacity(self.shards.len());
        let mut shard_metrics = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            shard_digests.push(shard.digest);
            shard_metrics.push(shard.metrics.clone());
        }
        FleetCheckpoint {
            seed: self.seed,
            nodes: self.nodes,
            epochs: self.epochs,
            shards: self.shards.len() as u32,
            completed_epochs: self.completed_epochs,
            config_digest: self.config_digest,
            dirty_evals: self.dirty_evals(),
            scenarios: self.scenarios.clone(),
            shard_digests,
            shard_metrics,
        }
    }

    /// Writes the current boundary's checkpoint into the configured
    /// directory.
    fn write_checkpoint(&self) -> Result<(), String> {
        let dir = self.ckpt_dir.as_ref().expect("checkpointing enabled");
        let path = dir.join(FleetCheckpoint::file_name(self.completed_epochs));
        self.checkpoint().save(&path)
    }

    /// Aggregated per-arm totals through the completed epochs.
    pub fn metrics(&self) -> Vec<FleetMetrics> {
        let mut totals = vec![FleetMetrics::default(); self.scenarios.len()];
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for (t, m) in totals.iter_mut().zip(&shard.metrics) {
                t.merge(m);
            }
        }
        totals
    }

    /// Per-shard population digests, in shard order.
    pub fn shard_digests(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").digest)
            .collect()
    }

    /// The whole-population digest: an order-sensitive fold of the shard
    /// digests.
    pub fn population_digest(&self) -> u64 {
        self.shard_digests()
            .into_iter()
            .fold(0, persist::fold_digest)
    }

    /// Total dirty-node evaluations so far — the incrementality witness:
    /// equals the number of `(node, epoch)` pairs with a new arrival,
    /// never the fleet size times the epoch count.
    pub fn dirty_evals(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").dirty_evals)
            .sum()
    }

    /// Faulty nodes retained in memory (the sampled sub-population).
    pub fn faulty_nodes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").faulty.len() as u64)
            .sum()
    }

    /// Dirty-node count of each epoch this process ran, oldest first.
    pub fn epoch_dirty(&self) -> &[u64] {
        &self.epoch_dirty
    }

    /// Epochs fully processed.
    pub fn completed_epochs(&self) -> u32 {
        self.completed_epochs
    }

    /// The scenario arms.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Total lifetime epochs configured.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Fleet size.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Observation-window hours (the whole lifetime).
    pub fn hours(&self) -> f64 {
        self.hours
    }

    /// Answers one batched forecast query: expected lifetime-to-date DUE,
    /// SDC, and replacement counts for a hypothetical fleet of
    /// `target_nodes`, scaled linearly from the simulated population (the
    /// paper's per-system scaling), plus the repair coverage per arm.
    pub fn forecast(&self, target_nodes: u64) -> Vec<ArmForecast> {
        let scale = target_nodes as f64 / self.nodes as f64;
        self.metrics()
            .iter()
            .zip(&self.scenarios)
            .map(|(m, s)| ArmForecast {
                label: s.mechanism.label(),
                dues: m.dues as f64 * scale,
                sdcs: m.sdcs as f64 * scale,
                replacements: m.replacements as f64 * scale,
                coverage: if m.faulty_nodes == 0 {
                    0.0
                } else {
                    m.fully_repaired_nodes as f64 / m.faulty_nodes as f64
                },
            })
            .collect()
    }

    /// The durable-checkpoint lineage as JSON: whether persistence is on,
    /// where checkpoints live, which epoch boundaries exist on disk, and
    /// the newest file — everything an operator needs to decide whether a
    /// dead run is resumable and from where.
    pub fn checkpoint_lineage(&self) -> Value {
        let Some(dir) = &self.ckpt_dir else {
            return Value::object([("enabled", Value::from(false))]);
        };
        let mut boundaries: Vec<u64> = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| {
                        e.ok()?
                            .file_name()
                            .to_str()?
                            .strip_prefix("ckpt_epoch_")?
                            .strip_suffix(".json")?
                            .parse::<u64>()
                            .ok()
                    })
                    .collect()
            })
            .unwrap_or_default();
        boundaries.sort_unstable();
        let latest = boundaries
            .last()
            .map(|&e| Value::from(FleetCheckpoint::file_name(e as u32)))
            .unwrap_or(Value::Null);
        Value::object([
            ("enabled", Value::from(true)),
            ("dir", Value::from(dir.display().to_string())),
            ("config_digest", persist::hex(self.config_digest)),
            (
                "boundaries",
                Value::Array(boundaries.into_iter().map(Value::from).collect()),
            ),
            ("latest", latest),
        ])
    }

    /// Builds the point-in-time progress document the live `/progress`
    /// route serves: epoch position, shard layout, dirty-node history,
    /// checkpoint lineage, and a forecast section answering each queried
    /// fleet size exactly like `fleet_forecast --query` does — so a second
    /// process can poll a forecast mid-run instead of waiting for exit.
    pub fn progress_json(&self, queries: &[u64]) -> Value {
        let complete = self.completed_epochs >= self.epochs;
        let forecasts: Vec<Value> = queries
            .iter()
            .map(|&q| {
                let arms: Vec<Value> = self
                    .forecast(q)
                    .iter()
                    .map(|a| {
                        Value::object([
                            ("label", Value::from(a.label.as_str())),
                            ("dues", Value::from(a.dues)),
                            ("sdcs", Value::from(a.sdcs)),
                            ("replacements", Value::from(a.replacements)),
                            ("coverage", Value::from(a.coverage)),
                        ])
                    })
                    .collect();
                Value::object([("fleet_size", Value::from(q)), ("arms", Value::Array(arms))])
            })
            .collect();
        Value::object([
            (
                "status",
                Value::from(if complete { "complete" } else { "running" }),
            ),
            ("epoch", Value::from(self.completed_epochs as u64)),
            ("epochs", Value::from(self.epochs as u64)),
            ("nodes", Value::from(self.nodes)),
            ("shards", Value::from(self.shards.len() as u64)),
            ("faulty_nodes", Value::from(self.faulty_nodes())),
            ("dirty_evals", Value::from(self.dirty_evals())),
            (
                "epoch_dirty",
                Value::Array(self.epoch_dirty.iter().map(|&d| Value::from(d)).collect()),
            ),
            ("population_digest", persist::hex(self.population_digest())),
            ("checkpoints", self.checkpoint_lineage()),
            ("forecast", Value::Array(forecasts)),
        ])
    }

    /// Publishes [`FleetSim::progress_json`] to the live endpoint's
    /// `/progress` route. The forecast binary calls this at every epoch
    /// boundary; without a server running the publish is a cheap store.
    pub fn publish_progress(&self, queries: &[u64]) {
        serve::publish_progress(self.progress_json(queries));
    }

    /// Publishes the fleet's logical state into the obs registry for
    /// snapshotting, *replacing* whatever process-lifetime counters
    /// accumulated so far. The published set is deliberately restricted
    /// to checkpoint-continuous quantities — totals a resumed run
    /// reconstructs exactly — so a full run and a crash/resume run emit
    /// bit-identical snapshots (the CI zero-delta gate). Process-path
    /// counters (planner internals, sampler injections of epochs the
    /// resumed process never ran) would differ and are dropped by the
    /// reset.
    pub fn publish_fleet_obs(&self) {
        obs::reset();
        obs::note_run_context(self.seed, self.threads as u64, self.config_digest);
        obs::note_fleet_context(self.completed_epochs as u64, self.shards.len() as u64);
        let add = |name: &str, v: u64| obs::counter(name).add(v);
        add("fleet.nodes", self.nodes);
        add("fleet.epochs_completed", self.completed_epochs as u64);
        add("fleet.faulty_population", self.faulty_nodes());
        add("fleet.dirty_evals", self.dirty_evals());
        // The 64-bit digest is split so each counter stays exactly
        // representable in the snapshot's f64 numbers.
        let digest = self.population_digest();
        add("fleet.digest_lo", digest & 0xFFFF_FFFF);
        add("fleet.digest_hi", digest >> 32);
        for (ai, m) in self.metrics().iter().enumerate() {
            let arm = |k: &str| format!("fleet.arm{ai}.{k}");
            add(&arm("faulty_nodes"), m.faulty_nodes);
            add(&arm("fully_repaired_nodes"), m.fully_repaired_nodes);
            add(&arm("repair_bytes_total"), m.repair_bytes_total);
            add(&arm("dues"), m.dues);
            add(&arm("transient_dues"), m.transient_dues);
            add(&arm("sdcs"), m.sdcs);
            add(&arm("replacements"), m.replacements);
            add(&arm("unrepaired_faults"), m.unrepaired_faults);
            add(&arm("permanent_faults"), m.permanent_faults);
            add(&arm("max_ways_seen"), m.max_ways_seen as u64);
        }
    }
}

/// One arm's answer to a forecast query — see [`FleetSim::forecast`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArmForecast {
    /// The arm's mechanism label.
    pub label: String,
    /// Expected DUEs so far at the queried fleet size.
    pub dues: f64,
    /// Expected SDCs so far at the queried fleet size.
    pub sdcs: f64,
    /// Expected DIMM replacements so far at the queried fleet size.
    pub replacements: f64,
    /// Fraction of faulty nodes fully repaired.
    pub coverage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_scenarios, RunConfig};
    use crate::scenario::Mechanism;

    fn arms() -> Vec<Scenario> {
        let base = Scenario::isca16_baseline().with_fit_scale(120.0);
        vec![
            base.clone().with_mechanism(Mechanism::None),
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 }),
            base.with_mechanism(Mechanism::Ppr),
        ]
    }

    #[test]
    fn crash_point_parsing() {
        assert_eq!(parse_crash_at("3"), Some(CrashPoint::Boundary(3)));
        assert_eq!(parse_crash_at("mid:5"), Some(CrashPoint::MidEpoch(5)));
        assert_eq!(parse_crash_at("mid: 2"), Some(CrashPoint::MidEpoch(2)));
        assert_eq!(parse_crash_at(""), None);
        assert_eq!(parse_crash_at("mid:"), None);
        assert_eq!(parse_crash_at("boundary"), None);
    }

    #[test]
    fn sharding_partitions_the_fleet_exactly() {
        let sim = FleetSim::new(arms(), FleetConfig::quick(1000, 4, 9));
        let mut covered = 0;
        for shard in &sim.shards {
            let s = shard.lock().unwrap();
            covered += s.hi - s.lo;
        }
        assert_eq!(covered, 1000);
        // Shards are contiguous and ordered.
        let mut prev_hi = 0;
        for shard in &sim.shards {
            let s = shard.lock().unwrap();
            assert_eq!(s.lo, prev_hi);
            prev_hi = s.hi;
        }
        assert_eq!(prev_hi, 1000);
    }

    #[test]
    fn fleet_matches_engine_bit_exactly() {
        // The fleet's incremental telescoping totals must equal the
        // engine's one-shot evaluation of the same population: same seed,
        // same (seed, trial, group=0) streams, integer field by field.
        let scenarios = arms();
        let nodes = 1500u64;
        let seed = 2016;
        let mut sim = FleetSim::new(
            scenarios.clone(),
            FleetConfig {
                threads: 2,
                ..FleetConfig::quick(nodes, 6, seed)
            },
        );
        sim.run_to_end().unwrap();
        let fleet = sim.metrics();
        let engine = run_scenarios(
            &scenarios,
            &RunConfig {
                trials: nodes,
                seed,
                threads: 2,
                chunk_size: 0,
            },
        );
        for (f, e) in fleet.iter().zip(&engine) {
            assert_eq!(f.faulty_nodes, e.faulty_nodes, "{}", e.label);
            assert_eq!(
                f.fully_repaired_nodes, e.fully_repaired_nodes,
                "{}",
                e.label
            );
            assert_eq!(f.dues, e.dues, "{}", e.label);
            assert_eq!(f.transient_dues, e.transient_dues, "{}", e.label);
            assert_eq!(f.sdcs, e.sdcs, "{}", e.label);
            assert_eq!(f.replacements, e.replacements, "{}", e.label);
            assert_eq!(f.unrepaired_faults, e.unrepaired_faults, "{}", e.label);
            assert_eq!(f.permanent_faults, e.permanent_faults, "{}", e.label);
            assert_eq!(f.max_ways_seen, e.max_ways_seen, "{}", e.label);
            assert_eq!(f.unrepaired_by_mode, e.unrepaired_by_mode, "{}", e.label);
        }
        // And the incrementality witness: total work is the schedule mass,
        // far below nodes × epochs.
        assert!(sim.dirty_evals() > 0);
        assert!(sim.dirty_evals() < nodes * 6);
    }

    #[test]
    fn metrics_json_round_trip() {
        let m = FleetMetrics {
            faulty_nodes: 5,
            fully_repaired_nodes: 4,
            repair_bytes_total: 1 << 40,
            dues: 3,
            transient_dues: 1,
            sdcs: 2,
            replacements: 1,
            unrepaired_faults: 1,
            permanent_faults: 9,
            max_ways_seen: 3,
            unrepaired_by_mode: [1, 0, 0, 2, 0, 0],
        };
        let parsed = FleetMetrics::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn checkpoint_round_trip_preserves_everything() {
        let mut sim = FleetSim::new(arms(), FleetConfig::quick(400, 3, 5));
        sim.step().unwrap();
        let ckpt = sim.checkpoint();
        let text = ckpt.to_json().to_pretty();
        let parsed = FleetCheckpoint::parse_str(&text).unwrap();
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn absorb_handles_unrepair_transitions() {
        let mut m = FleetMetrics::default();
        let repaired = NodeOutcome {
            faulty: true,
            fully_repaired: true,
            permanent_faults: 1,
            ..Default::default()
        };
        m.absorb(&repaired, &NodeOutcome::default());
        assert_eq!(m.fully_repaired_nodes, 1);
        // A later fault un-repairs the node: the delta must subtract.
        let unrepaired = NodeOutcome {
            faulty: true,
            fully_repaired: false,
            permanent_faults: 2,
            unrepaired_faults: 1,
            ..Default::default()
        };
        m.absorb(&unrepaired, &repaired);
        assert_eq!(m.fully_repaired_nodes, 0);
        assert_eq!(m.faulty_nodes, 1);
        assert_eq!(m.permanent_faults, 2);
    }
}
