//! Monte Carlo reliability and availability simulation (paper §4.1, §5.1).
//!
//! Drives everything the paper's Figures 8–14 report: repair coverage
//! versus LLC budget, expected DUEs and SDCs per 16,384-node system over a
//! 6-year lifetime, and DIMM replacements under two maintenance policies.
//!
//! * [`scenario`] — a [`scenario::Scenario`] bundles the memory geometry,
//!   fault model, ECC model, repair mechanism, and replacement policy of
//!   one experimental arm.
//! * [`node`] — replays one node's sampled fault timeline against a
//!   scenario: classify each arrival against live faults (DUE/SDC), apply
//!   repair, apply the replacement policy.
//! * [`engine`] — samples node lifetimes once and evaluates every scenario
//!   arm on the *same* fault population (the paper's methodology),
//!   in parallel across threads.
//! * [`fleet`] — scales the engine to operator fleets: sharded population,
//!   epoch-by-epoch incremental re-evaluation of dirty nodes, and
//!   bit-exact checkpoint/resume through schema-versioned
//!   [`fleet::FleetCheckpoint`] files.
//!
//! # Examples
//!
//! ```
//! use relaxfault_relsim::engine::{run_scenarios, RunConfig};
//! use relaxfault_relsim::scenario::{Mechanism, Scenario};
//!
//! let base = Scenario::isca16_baseline();
//! let arms = vec![
//!     base.clone().with_mechanism(Mechanism::None),
//!     base.with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
//! ];
//! let results = run_scenarios(&arms, &RunConfig { trials: 200, seed: 7, threads: 2 , chunk_size: 0});
//! assert_eq!(results.len(), 2);
//! ```

pub mod engine;
pub mod fleet;
pub mod node;
pub mod repro;
pub mod scenario;

pub use engine::{run_scenarios, RunConfig, ScenarioResult};
pub use fleet::{CrashPoint, FleetCheckpoint, FleetConfig, FleetMetrics, FleetSim};
pub use node::{evaluate_events_with, evaluate_node, evaluate_node_with, EvalScratch, NodeOutcome};
pub use repro::ReproCase;
pub use scenario::{Mechanism, ReplacementPolicy, Scenario};
