//! Parallel Monte Carlo runner.
//!
//! Samples node lifetimes once per trial and evaluates every scenario arm
//! that shares the same fault model on the *same* fault population — the
//! paper compares mechanisms this way, and it slashes comparison variance.
//! Trials are deterministic in `(seed, trial index)` regardless of thread
//! count.

use crate::node::{evaluate_node_with, EvalScratch};
use crate::repro::{trial_digest, ReproCase};
use crate::scenario::Scenario;
use relaxfault_dram::DramConfig;
use relaxfault_faults::{FaultMode, FaultModel, FaultSampler, NodeFaults};
use relaxfault_util::lanes::{self, Lane, LaneMode};
use relaxfault_util::obs::{self, Counter, Histogram, Level};
use relaxfault_util::rng::{first_u64_from_seed, mix64, Rng64};
use relaxfault_util::stats::{wilson_interval, Ecdf};
use relaxfault_util::trace_event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Execution parameters for a Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Node lifetimes to simulate per arm.
    pub trials: u64,
    /// Base RNG seed (trials are derived deterministically).
    pub seed: u64,
    /// Worker threads (0 or 1 = single-threaded).
    pub threads: usize,
    /// Trials per work-stealing chunk. `0` (the default) picks
    /// automatically: `max(trials / (64 × threads), 256)` — small enough
    /// that a run splits into ~64 chunks per worker for load balancing,
    /// large enough that the atomic claim is noise. Any positive value is
    /// honoured as-is; results are bit-identical at every setting.
    pub chunk_size: u64,
}

impl RunConfig {
    /// A quick configuration for tests.
    pub fn quick(trials: u64) -> Self {
        Self {
            trials,
            seed: 0x5EED,
            threads: 4,
            chunk_size: 0,
        }
    }

    /// The effective work-stealing chunk size for `threads` workers,
    /// resolving the `0` = auto default.
    pub fn resolved_chunk_size(&self, threads: usize) -> u64 {
        if self.chunk_size > 0 {
            self.chunk_size
        } else {
            (self.trials / (64 * threads.max(1) as u64)).max(256)
        }
    }
}

/// Accumulated metrics of one scenario arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The arm's mechanism label.
    pub label: String,
    /// Node lifetimes simulated.
    pub trials: u64,
    /// Nodes with at least one permanent fault.
    pub faulty_nodes: u64,
    /// Faulty nodes whose every permanent fault was repaired.
    pub fully_repaired_nodes: u64,
    /// Repair bytes of each fully repaired faulty node.
    pub repair_bytes: Ecdf,
    /// Total DUEs across trials.
    pub dues: u64,
    /// DUEs triggered by transient faults.
    pub transient_dues: u64,
    /// Total SDCs across trials.
    pub sdcs: u64,
    /// Total DIMM replacements across trials.
    pub replacements: u64,
    /// Permanent faults that stayed unrepaired.
    pub unrepaired_faults: u64,
    /// Permanent faults observed.
    pub permanent_faults: u64,
    /// Worst per-set repair occupancy seen in any node.
    pub max_ways_seen: u32,
    /// Unrepaired permanent faults by `FaultMode` index.
    pub unrepaired_by_mode: [u64; 6],
}

impl ScenarioResult {
    fn new(label: String) -> Self {
        Self {
            label,
            trials: 0,
            faulty_nodes: 0,
            fully_repaired_nodes: 0,
            repair_bytes: Ecdf::new(),
            dues: 0,
            transient_dues: 0,
            sdcs: 0,
            replacements: 0,
            unrepaired_faults: 0,
            permanent_faults: 0,
            max_ways_seen: 0,
            unrepaired_by_mode: [0; 6],
        }
    }

    fn merge(&mut self, other: &ScenarioResult) {
        self.trials += other.trials;
        self.faulty_nodes += other.faulty_nodes;
        self.fully_repaired_nodes += other.fully_repaired_nodes;
        self.repair_bytes.merge(&other.repair_bytes);
        self.dues += other.dues;
        self.transient_dues += other.transient_dues;
        self.sdcs += other.sdcs;
        self.replacements += other.replacements;
        self.unrepaired_faults += other.unrepaired_faults;
        self.permanent_faults += other.permanent_faults;
        self.max_ways_seen = self.max_ways_seen.max(other.max_ways_seen);
        for (a, b) in self
            .unrepaired_by_mode
            .iter_mut()
            .zip(other.unrepaired_by_mode)
        {
            *a += b;
        }
    }

    /// Repair coverage: fraction of faulty nodes fully repaired
    /// (unbounded LLC budget beyond the way limit).
    pub fn coverage(&self) -> f64 {
        if self.faulty_nodes == 0 {
            0.0
        } else {
            self.fully_repaired_nodes as f64 / self.faulty_nodes as f64
        }
    }

    /// 95% confidence interval on [`ScenarioResult::coverage`].
    pub fn coverage_interval(&self) -> (f64, f64) {
        wilson_interval(self.fully_repaired_nodes, self.faulty_nodes)
    }

    /// Coverage if the LLC budget is additionally capped at `bytes`
    /// (the y-value of Figures 10/11 at one x).
    pub fn coverage_at_bytes(&mut self, bytes: u64) -> f64 {
        if self.faulty_nodes == 0 {
            return 0.0;
        }
        let within =
            self.repair_bytes.fraction_at_most(bytes as f64) * self.repair_bytes.len() as f64;
        within / self.faulty_nodes as f64
    }

    /// The LLC budget needed to reach a given fraction of the faulty nodes
    /// (e.g. the paper's "90% of nodes with at most 82 KiB").
    pub fn bytes_for_coverage(&mut self, target: f64) -> Option<u64> {
        if self.coverage() < target || self.repair_bytes.is_empty() {
            return None;
        }
        let p = (target * self.faulty_nodes as f64) / self.repair_bytes.len() as f64;
        if p > 1.0 {
            return None;
        }
        Some(self.repair_bytes.percentile(p * 100.0) as u64)
    }

    /// Scales a per-trial expectation to a system of `nodes` nodes.
    pub fn per_system(&self, count: u64, nodes: u64) -> f64 {
        count as f64 / self.trials as f64 * nodes as f64
    }

    /// Expected DUEs in a system of `nodes` nodes.
    pub fn dues_per_system(&self, nodes: u64) -> f64 {
        self.per_system(self.dues, nodes)
    }

    /// Expected SDCs in a system of `nodes` nodes.
    pub fn sdcs_per_system(&self, nodes: u64) -> f64 {
        self.per_system(self.sdcs, nodes)
    }

    /// Expected DIMM replacements in a system of `nodes` nodes.
    pub fn replacements_per_system(&self, nodes: u64) -> f64 {
        self.per_system(self.replacements, nodes)
    }
}

/// Observability handles for the Monte Carlo hot loop, resolved once so
/// per-trial updates are a relaxed load and a branch when disabled.
struct EngineMetrics {
    trial_evals: Counter,
    fast_path_skips: Counter,
    faulty_nodes: Counter,
    fully_repaired_nodes: Counter,
    repair_fallback_nodes: Counter,
    dues: Counter,
    transient_dues: Counter,
    sdcs: Counter,
    replacements: Counter,
    permanent_faults: Counter,
    unrepaired_faults: Counter,
    unrepaired_by_mode: [Counter; 6],
    trial_ns: Histogram,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        trial_evals: obs::counter("relsim.trial_evals"),
        fast_path_skips: obs::counter("relsim.fast_path_skips"),
        faulty_nodes: obs::counter("relsim.faulty_nodes"),
        fully_repaired_nodes: obs::counter("relsim.fully_repaired_nodes"),
        repair_fallback_nodes: obs::counter("relsim.repair_fallback_nodes"),
        dues: obs::counter("relsim.dues"),
        transient_dues: obs::counter("relsim.transient_dues"),
        sdcs: obs::counter("relsim.sdcs"),
        replacements: obs::counter("relsim.replacements"),
        permanent_faults: obs::counter("relsim.permanent_faults"),
        unrepaired_faults: obs::counter("relsim.unrepaired_faults"),
        unrepaired_by_mode: FaultMode::ALL
            .map(|m| obs::counter(&format!("relsim.unrepaired.{}", m.key()))),
        trial_ns: obs::histogram("relsim.trial_ns"),
    })
}

/// Whether the `RF_CHECK=1` in-loop invariant checks are on, resolved
/// once per process. The hot loop pays one register-held bool test per
/// trial when off.
fn rf_check_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("RF_CHECK")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("on"))
            .unwrap_or(false)
    })
}

/// Trial index forced to fail under `RF_CHECK` (`RF_CHECK_FAIL_TRIAL=n`),
/// for exercising the repro-emission path end to end in CI.
fn rf_check_fail_trial() -> Option<u64> {
    static TRIAL: OnceLock<Option<u64>> = OnceLock::new();
    *TRIAL.get_or_init(|| {
        std::env::var("RF_CHECK_FAIL_TRIAL")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Persists a replayable repro for a failed in-loop check, then panics.
/// Cold and out-of-line: the hot loop only carries the call.
#[cold]
#[inline(never)]
fn rf_check_failure(
    scenarios: &[Scenario],
    members: &[usize],
    seed: u64,
    trial: u64,
    group: u64,
    digest: Option<u64>,
    reason: &str,
) -> ! {
    let case = ReproCase {
        case: "engine_check".into(),
        reason: reason.into(),
        seed,
        trial,
        group,
        epoch: None,
        scenarios: members.iter().map(|&si| scenarios[si].clone()).collect(),
        digest,
        prop_choices: Vec::new(),
    };
    let path = case.write();
    panic!(
        "RF_CHECK failure at trial {trial} group {group}: {reason}\n\
         repro written to {} — rerun with `relcheck replay <path>`",
        path.display()
    );
}

/// The RNG-stream seed for one trial's fault *sampling*: the stream is
/// keyed on `(seed, trial, group)` so results never depend on which
/// worker thread ran the trial. The engine, the relcheck replayer, and
/// the fleet simulator all derive the stream from this one function —
/// sharing it is what makes their populations bit-identical.
pub fn sample_rng_seed(seed: u64, trial: u64, group: u64) -> u64 {
    mix64(seed, trial, group)
}

/// The RNG-stream seed for one trial's scenario *evaluation*. Each arm
/// restarts from this seed so arms see identical draw sequences; the
/// `^ 0xECC` domain separation keeps it disjoint from the sample stream.
pub fn eval_rng_seed(seed: u64, trial: u64) -> u64 {
    mix64(seed ^ 0xECC, trial, 0)
}

/// One engine worker's reusable state: per-arm accumulators, per-group
/// samplers, the sampled lifetime buffer, and one evaluation scratch
/// (planner included) per arm. Both the scalar per-trial path and the
/// bit-sliced block path drive the same faulty-trial pipeline here, so
/// their results are identical by construction everywhere except the
/// zero-fault gate — and the gate decision itself is pinned equal by
/// `FaultSampler::trial_is_clean_from_first`.
struct Worker<'a> {
    scenarios: &'a [Scenario],
    cfg: DramConfig,
    groups: &'a [(FaultModel, Vec<usize>)],
    samplers: Vec<FaultSampler>,
    seed: u64,
    local: Vec<ScenarioResult>,
    node: NodeFaults,
    scratches: Vec<EvalScratch>,
    metrics: &'static EngineMetrics,
    // One enabled-check per worker instead of ~20 per trial: obs state is
    // fixed before the run starts, so the gated no-op loads inside every
    // Counter::add would be pure overhead on the (common) disabled path.
    metrics_on: bool,
    // Same treatment for the RF_CHECK invariant hook: resolved once, so
    // the off path is a single branch per trial.
    check_on: bool,
    forced_fail: Option<u64>,
}

impl<'a> Worker<'a> {
    fn new(
        scenarios: &'a [Scenario],
        cfg: DramConfig,
        groups: &'a [(FaultModel, Vec<usize>)],
        seed: u64,
    ) -> Self {
        Self {
            scenarios,
            cfg,
            groups,
            samplers: groups
                .iter()
                .map(|(model, _)| FaultSampler::new(model, &cfg))
                .collect(),
            seed,
            local: scenarios
                .iter()
                .map(|s| ScenarioResult::new(s.mechanism.label()))
                .collect(),
            node: NodeFaults::default(),
            scratches: scenarios.iter().map(|_| EvalScratch::new()).collect(),
            metrics: engine_metrics(),
            metrics_on: obs::metrics_enabled(),
            check_on: rf_check_enabled(),
            forced_fail: rf_check_fail_trial(),
        }
    }

    /// Retires `count` clean trials of `groups[gi]` in bulk: a clean trial
    /// contributes nothing but its trial count, so this is the *entire*
    /// cost of the zero-fault fast path.
    fn retire_clean(&mut self, gi: usize, count: u64) {
        let members = &self.groups[gi].1;
        if self.metrics_on {
            self.metrics.fast_path_skips.add(count);
            self.metrics.trial_evals.add(count * members.len() as u64);
        }
        for &si in members {
            self.local[si].trials += count;
        }
    }

    /// One trial of every group through the scalar path: one
    /// precomputed-probability draw (the first of this trial's stream)
    /// decides whether the lifetime is empty. A clean trial skips sampling
    /// and evaluation entirely; a full `sample_node` call would return the
    /// empty lifetime from this same stream, and `evaluate_node` never
    /// touches its RNG on empty lifetimes — bit-for-bit identical results
    /// either way.
    fn run_trial(&mut self, trial: u64) {
        for gi in 0..self.groups.len() {
            let mut sample_rng = Rng64::seed_from_u64(sample_rng_seed(self.seed, trial, gi as u64));
            if self.samplers[gi].trial_is_clean(&mut sample_rng) {
                self.retire_clean(gi, 1);
                // The forced-failure hook fires on clean trials too
                // (digest-less: there is no sampled population to pin), so
                // CI can exercise the repro loop on any trial index
                // without knowing the seed's fault layout.
                if self.check_on && self.forced_fail == Some(trial) {
                    rf_check_failure(
                        self.scenarios,
                        &self.groups[gi].1,
                        self.seed,
                        trial,
                        gi as u64,
                        None,
                        "forced failure (RF_CHECK_FAIL_TRIAL)",
                    );
                }
                continue;
            }
            self.run_faulty(trial, gi, &mut sample_rng);
        }
    }

    /// The trial range `[lo, hi)` through the bit-sliced gate: full
    /// `L::BITS`-trial blocks pack their gate verdicts into one lane mask
    /// (bit `i` ⇔ trial `block + i` is faulty) computed straight from each
    /// stream's first raw draw — no generator construction, no floats.
    /// Clean trials retire in one popcount; the surviving bits walk the
    /// scalar faulty pipeline in ascending trial order. The sub-block
    /// remainder tail falls back to the scalar per-trial path.
    fn run_range_sliced<L: Lane>(&mut self, lo: u64, hi: u64) {
        let bits = L::BITS as u64;
        let mut block = lo;
        while block + bits <= hi {
            for gi in 0..self.groups.len() {
                let sampler = &self.samplers[gi];
                let seed = self.seed;
                let faulty: L = lanes::pack(L::BITS, |i| {
                    let first =
                        first_u64_from_seed(sample_rng_seed(seed, block + i as u64, gi as u64));
                    !sampler.trial_is_clean_from_first(first)
                });
                let clean = (L::BITS - faulty.popcount()) as u64;
                if clean != 0 {
                    self.retire_clean(gi, clean);
                }
                let mut m = faulty;
                while m != L::ZERO {
                    let trial = block + m.trailing_zeros() as u64;
                    m = m.clear_lowest();
                    let mut sample_rng =
                        Rng64::seed_from_u64(sample_rng_seed(self.seed, trial, gi as u64));
                    // Consume the gate draw so the stream position matches
                    // the scalar path exactly.
                    let gate = self.samplers[gi].trial_is_clean(&mut sample_rng);
                    debug_assert!(!gate, "lane gate disagreed with the scalar gate");
                    let _ = gate;
                    self.run_faulty(trial, gi, &mut sample_rng);
                }
            }
            block += bits;
        }
        for trial in block..hi {
            self.run_trial(trial);
        }
    }

    /// The faulty-trial pipeline, shared verbatim by both paths:
    /// sample the conditional lifetime, then evaluate every member arm on
    /// it. `sample_rng` must be positioned immediately after the failed
    /// gate draw.
    fn run_faulty(&mut self, trial: u64, gi: usize, sample_rng: &mut Rng64) {
        let scenarios = self.scenarios;
        let groups = self.groups;
        let members = &groups[gi].1;
        let metrics = self.metrics;
        // Deterministic merge key for every event this trial/group emits,
        // on any worker thread.
        let _obs_scope = obs::scope(trial, gi as u64);
        let _trial_span = metrics.trial_ns.start_span();
        self.samplers[gi].sample_faulty_into(sample_rng, &mut self.node);
        if self.check_on {
            let digest = Some(trial_digest(&self.node));
            if let Err(e) = self.node.check_invariants(&self.cfg) {
                rf_check_failure(
                    scenarios,
                    members,
                    self.seed,
                    trial,
                    gi as u64,
                    digest,
                    &format!("sampled population: {e}"),
                );
            }
            if self.forced_fail == Some(trial) {
                rf_check_failure(
                    scenarios,
                    members,
                    self.seed,
                    trial,
                    gi as u64,
                    digest,
                    "forced failure (RF_CHECK_FAIL_TRIAL)",
                );
            }
        }
        for &si in members {
            let mut eval_rng = Rng64::seed_from_u64(eval_rng_seed(self.seed, trial));
            let out = evaluate_node_with(
                &scenarios[si],
                &self.node,
                &mut eval_rng,
                &mut self.scratches[si],
            );
            if self.check_on {
                if let Err(e) = self.scratches[si].check_invariants() {
                    rf_check_failure(
                        scenarios,
                        members,
                        self.seed,
                        trial,
                        gi as u64,
                        Some(trial_digest(&self.node)),
                        &format!("arm {si} planner: {e}"),
                    );
                }
            }
            if self.metrics_on {
                metrics.trial_evals.inc();
                if out.faulty {
                    metrics.faulty_nodes.inc();
                    if out.fully_repaired {
                        metrics.fully_repaired_nodes.inc();
                    } else {
                        metrics.repair_fallback_nodes.inc();
                    }
                }
                metrics.dues.add(out.dues as u64);
                metrics.transient_dues.add(out.transient_dues as u64);
                metrics.sdcs.add(out.sdcs as u64);
                metrics.replacements.add(out.replacements as u64);
                metrics.permanent_faults.add(out.permanent_faults as u64);
                metrics.unrepaired_faults.add(out.unrepaired_faults as u64);
                for (c, n) in metrics
                    .unrepaired_by_mode
                    .iter()
                    .zip(out.unrepaired_by_mode)
                {
                    c.add(n as u64);
                }
            }
            if out.faulty {
                trace_event!(target: "relsim", Level::Debug, "trial_eval",
                arm = si,
                repaired = out.fully_repaired,
                permanent_faults = out.permanent_faults,
                unrepaired = out.unrepaired_faults,
                dues = out.dues,
                sdcs = out.sdcs,
                replacements = out.replacements);
            }
            let r = &mut self.local[si];
            r.trials += 1;
            r.faulty_nodes += out.faulty as u64;
            r.fully_repaired_nodes += out.fully_repaired as u64;
            if out.fully_repaired {
                r.repair_bytes.add(out.repair_bytes as f64);
            }
            r.dues += out.dues as u64;
            r.transient_dues += out.transient_dues as u64;
            r.sdcs += out.sdcs as u64;
            r.replacements += out.replacements as u64;
            r.unrepaired_faults += out.unrepaired_faults as u64;
            r.permanent_faults += out.permanent_faults as u64;
            r.max_ways_seen = r.max_ways_seen.max(out.max_ways);
            for (a, b) in r.unrepaired_by_mode.iter_mut().zip(out.unrepaired_by_mode) {
                *a += b as u64;
            }
        }
    }
}

/// Runs every scenario arm over `run.trials` node lifetimes with the
/// process-global lane mode ([`lanes::mode`], settable via `RF_LANES` or
/// `--lanes`). See [`run_scenarios_with_lanes`].
///
/// # Panics
///
/// Panics if `scenarios` is empty or arms disagree on the DRAM config.
pub fn run_scenarios(scenarios: &[Scenario], run: &RunConfig) -> Vec<ScenarioResult> {
    run_scenarios_with_lanes(scenarios, run, lanes::mode())
}

/// Runs every scenario arm over `run.trials` node lifetimes with an
/// explicit trial-lane mode.
///
/// Arms with identical fault models see identical fault populations, and
/// every trial's RNG streams are keyed on `(seed, trial, group)` — never on
/// which worker thread ran the trial — so results are bit-identical for a
/// given seed at any `threads` setting.
///
/// Under [`LaneMode::U64`]/[`LaneMode::U128`] the zero-fault gate is
/// evaluated bit-sliced, `L::BITS` trials per lane word: the gate verdicts
/// pack into a fault mask, clean trials retire in bulk via popcount, and
/// only the set bits walk the full sample/evaluate pipeline. Chunk-tail
/// remainders shorter than a lane word fall back to the scalar path, and
/// `RF_CHECK=1` forces the scalar path entirely (the in-loop invariant
/// hooks are per-trial). Every mode is bit-identical to
/// [`LaneMode::Scalar`] — pinned by the `relcheck` `lanes` oracle and the
/// unit tests here.
///
/// # Panics
///
/// Panics if `scenarios` is empty or arms disagree on the DRAM config.
pub fn run_scenarios_with_lanes(
    scenarios: &[Scenario],
    run: &RunConfig,
    lane_mode: LaneMode,
) -> Vec<ScenarioResult> {
    assert!(!scenarios.is_empty(), "no scenarios given");
    let cfg = scenarios[0].dram;
    assert!(
        scenarios.iter().all(|s| s.dram == cfg),
        "all arms must share one DRAM geometry"
    );
    // RF_CHECK's in-loop invariant hooks are per-trial (digests, repro
    // emission), so checking runs always take the scalar path.
    let mode = if rf_check_enabled() {
        LaneMode::Scalar
    } else {
        lane_mode
    };
    trace_event!(target: "relsim", Level::Info, "run_start",
        arms = scenarios.len(), trials = run.trials, seed = run.seed,
        lanes = mode.label());
    if obs::metrics_enabled() || obs::enabled("relsim", Level::Info) {
        // Fold the full scenario configuration (and trial count, and the
        // effective lane mode) into one hash so the run manifest records
        // *what* was simulated — history series stay comparable per lane
        // config. Gated so the disabled path stays free of JSON
        // serialization.
        let mut config = String::new();
        for s in scenarios {
            config.push_str(&s.to_json().to_pretty());
        }
        config.push_str(&run.trials.to_string());
        config.push_str(mode.label());
        obs::note_run_context(
            run.seed,
            run.threads.max(1) as u64,
            obs::fnv1a(config.as_bytes()),
        );
    }
    // Group arms by fault model so each group shares samples.
    let mut groups: Vec<(FaultModel, Vec<usize>)> = Vec::with_capacity(scenarios.len());
    for (i, s) in scenarios.iter().enumerate() {
        if let Some((_, idxs)) = groups.iter_mut().find(|(m, _)| *m == s.fault_model) {
            idxs.push(i);
        } else {
            groups.push((s.fault_model, vec![i]));
        }
    }

    let threads = run.threads.max(1);
    let chunk = run.resolved_chunk_size(threads);
    // Work-stealing chunk queue: workers claim contiguous trial ranges
    // from one atomic cursor. Which worker runs a trial never affects its
    // result (RNG streams are keyed on the trial index and every local
    // accumulation merges commutatively), so dynamic scheduling keeps
    // determinism while absorbing the skew between all-clean chunks and
    // chunks dense in faulty nodes.
    let next_chunk = AtomicU64::new(0);
    let mut partials: Vec<Vec<ScenarioResult>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let groups = &groups;
            let next_chunk = &next_chunk;
            let seed = run.seed;
            let trials = run.trials;
            handles.push(scope.spawn(move || {
                let mut worker = Worker::new(scenarios, cfg, groups, seed);
                loop {
                    let lo = next_chunk.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= trials {
                        break;
                    }
                    let hi = (lo + chunk).min(trials);
                    match mode {
                        LaneMode::Scalar => {
                            for trial in lo..hi {
                                worker.run_trial(trial);
                            }
                        }
                        LaneMode::U64 => worker.run_range_sliced::<u64>(lo, hi),
                        LaneMode::U128 => worker.run_range_sliced::<u128>(lo, hi),
                    }
                }
                worker.local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut results: Vec<ScenarioResult> = scenarios
        .iter()
        .map(|s| ScenarioResult::new(s.mechanism.label()))
        .collect();
    for partial in &partials {
        for (r, p) in results.iter_mut().zip(partial) {
            r.merge(p);
        }
    }
    for r in &results {
        trace_event!(target: "relsim", Level::Info, "arm_result",
            label = r.label.as_str(),
            faulty = r.faulty_nodes,
            repaired = r.fully_repaired_nodes,
            dues = r.dues,
            sdcs = r.sdcs,
            replacements = r.replacements);
    }
    results
}

/// Raw fault-population statistics (no mechanism), for the paper's
/// Figure 9 sensitivity study.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PopulationStats {
    /// Node lifetimes sampled.
    pub trials: u64,
    /// Nodes with ≥ 1 permanent fault.
    pub faulty_nodes: u64,
    /// DIMMs with ≥ 1 permanent fault.
    pub faulty_dimms: u64,
    /// DIMMs with permanent faults on ≥ 2 devices (the DUE/SDC-capable
    /// population).
    pub multi_device_dimms: u64,
}

impl PopulationStats {
    /// Scales a count to a system of `nodes` nodes.
    pub fn per_system(&self, count: u64, nodes: u64) -> f64 {
        count as f64 / self.trials as f64 * nodes as f64
    }
}

/// Samples `trials` node lifetimes and reports population statistics.
pub fn fault_population(
    model: &FaultModel,
    cfg: &DramConfig,
    trials: u64,
    seed: u64,
    threads: usize,
) -> PopulationStats {
    let threads = threads.max(1);
    let chunk = (trials / (64 * threads as u64)).max(256);
    let next_chunk = AtomicU64::new(0);
    let mut totals = PopulationStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next_chunk = &next_chunk;
            handles.push(scope.spawn(move || {
                let mut stats = PopulationStats::default();
                let sampler = FaultSampler::new(model, cfg);
                let mut node = NodeFaults::default();
                // Sorted (dimm, device) scratch replacing a per-trial
                // HashMap<dimm, HashSet<device>>.
                let mut devs: Vec<(u32, u32)> = Vec::new();
                let population_trials = obs::counter("relsim.population_trials");
                let population_faulty = obs::counter("relsim.population_faulty");
                loop {
                    let lo = next_chunk.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= trials {
                        break;
                    }
                    let hi = (lo + chunk).min(trials);
                    for trial in lo..hi {
                        let mut rng = Rng64::seed_from_u64(mix64(seed, trial, 0));
                        stats.trials += 1;
                        population_trials.inc();
                        // Zero-fault fast path (see run_scenarios).
                        if sampler.trial_is_clean(&mut rng) {
                            continue;
                        }
                        let _obs_scope = obs::scope(trial, 0);
                        sampler.sample_faulty_into(&mut rng, &mut node);
                        if !node.is_faulty() {
                            continue;
                        }
                        stats.faulty_nodes += 1;
                        population_faulty.inc();
                        devs.clear();
                        for e in node.permanent() {
                            for r in &e.regions {
                                devs.push((r.rank.dimm_index(cfg), r.device));
                            }
                        }
                        devs.sort_unstable();
                        devs.dedup();
                        // Each DIMM is now a contiguous run of distinct
                        // devices.
                        let mut i = 0;
                        while i < devs.len() {
                            let dimm = devs[i].0;
                            let mut j = i;
                            while j < devs.len() && devs[j].0 == dimm {
                                j += 1;
                            }
                            stats.faulty_dimms += 1;
                            stats.multi_device_dimms += (j - i >= 2) as u64;
                            i = j;
                        }
                    }
                }
                stats
            }));
        }
        for h in handles {
            let s = h.join().expect("worker thread panicked");
            totals.trials += s.trials;
            totals.faulty_nodes += s.faulty_nodes;
            totals.faulty_dimms += s.faulty_dimms;
            totals.multi_device_dimms += s.multi_device_dimms;
        }
    });
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mechanism, ReplacementPolicy};

    #[test]
    fn deterministic_across_thread_counts() {
        // Bit-identical results at every threads setting: RNG streams are
        // keyed on (seed, trial, group), never on the worker thread. The
        // companion contract — the merged *trace stream* is byte-identical
        // across thread counts — is asserted in the workspace-level
        // `tests/obs_determinism.rs`, which owns a whole process (the
        // trace filter is process-global and would leak into the unit
        // tests running in parallel here).
        let arms = vec![
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
                .with_replacement(ReplacementPolicy::None),
            Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr),
        ];
        let reference = run_scenarios(
            &arms,
            &RunConfig {
                trials: 300,
                seed: 42,
                threads: 1,
                chunk_size: 0,
            },
        );
        for threads in [2, 4, 7] {
            let r = run_scenarios(
                &arms,
                &RunConfig {
                    trials: 300,
                    seed: 42,
                    threads,
                    chunk_size: 0,
                },
            );
            assert_eq!(r, reference, "threads={threads} diverged from threads=1");
        }
        // And a different seed gives a different population.
        let other = run_scenarios(
            &arms,
            &RunConfig {
                trials: 300,
                seed: 43,
                threads: 1,
                chunk_size: 0,
            },
        );
        assert_ne!(other, reference);
    }

    #[test]
    fn deterministic_across_chunk_sizes() {
        // The work-stealing chunk queue changes only *which worker* runs a
        // trial, never its RNG stream, so any (threads, chunk_size) pair
        // must reproduce the single-threaded result bit for bit — including
        // a pathological chunk of 1 (maximal stealing) and a chunk larger
        // than the whole run (one worker does everything).
        let arms = vec![
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 1 })
                .with_replacement(ReplacementPolicy::None),
            Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr),
        ];
        let reference = run_scenarios(
            &arms,
            &RunConfig {
                trials: 300,
                seed: 42,
                threads: 1,
                chunk_size: 0,
            },
        );
        for threads in [1usize, 2, 4] {
            for chunk_size in [1u64, 257, 8192] {
                let r = run_scenarios(
                    &arms,
                    &RunConfig {
                        trials: 300,
                        seed: 42,
                        threads,
                        chunk_size,
                    },
                );
                assert_eq!(
                    r, reference,
                    "threads={threads} chunk_size={chunk_size} diverged"
                );
            }
        }
    }

    #[test]
    fn lane_modes_are_bit_identical() {
        // The bit-sliced gate must reproduce the scalar engine exactly:
        // every lane mode, thread count, and chunk size — including chunks
        // that are never a multiple of the lane width, so every chunk ends
        // in a scalar remainder tail — yields the same results. 300 trials
        // also leaves a sub-block tail at the end of the run itself.
        let arms = vec![
            Scenario::isca16_baseline()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 4 })
                .with_replacement(ReplacementPolicy::None),
            Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr),
        ];
        let cfg = |threads, chunk_size| RunConfig {
            trials: 300,
            seed: 42,
            threads,
            chunk_size,
        };
        let reference = run_scenarios_with_lanes(&arms, &cfg(1, 0), LaneMode::Scalar);
        for mode in [LaneMode::U64, LaneMode::U128] {
            for threads in [1usize, 2, 4] {
                for chunk_size in [0u64, 1, 77, 131] {
                    let r = run_scenarios_with_lanes(&arms, &cfg(threads, chunk_size), mode);
                    assert_eq!(
                        r,
                        reference,
                        "{} threads={threads} chunk_size={chunk_size} diverged",
                        mode.label()
                    );
                }
            }
        }
    }

    #[test]
    fn lane_tail_shorter_than_a_block_matches_scalar() {
        // Runs smaller than one lane word exercise the pure-tail path.
        let arms = vec![Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr)];
        for trials in [1u64, 63, 64, 65, 127, 128, 129] {
            let run = RunConfig {
                trials,
                seed: 7,
                threads: 2,
                chunk_size: 0,
            };
            let reference = run_scenarios_with_lanes(&arms, &run, LaneMode::Scalar);
            for mode in [LaneMode::U64, LaneMode::U128] {
                let r = run_scenarios_with_lanes(&arms, &run, mode);
                assert_eq!(r, reference, "{} trials={trials}", mode.label());
            }
        }
    }

    #[test]
    fn chunk_size_resolution() {
        // 0 = auto: trials/(64*threads), floored at 256. Explicit values
        // pass through untouched.
        let cfg = |trials, chunk_size| RunConfig {
            trials,
            seed: 0,
            threads: 1,
            chunk_size,
        };
        assert_eq!(cfg(1_000_000, 0).resolved_chunk_size(4), 3906);
        assert_eq!(cfg(1_000, 0).resolved_chunk_size(4), 256);
        assert_eq!(cfg(1_000, 0).resolved_chunk_size(0), 256);
        assert_eq!(cfg(1_000, 7).resolved_chunk_size(4), 7);
    }

    #[test]
    fn shared_population_between_arms() {
        let base = Scenario::isca16_baseline().with_replacement(ReplacementPolicy::None);
        let arms = vec![
            base.clone().with_mechanism(Mechanism::None),
            base.clone()
                .with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
            base.with_mechanism(Mechanism::Ppr),
        ];
        let r = run_scenarios(&arms, &RunConfig::quick(400));
        // Same fault model ⇒ identical fault populations.
        assert_eq!(r[0].faulty_nodes, r[1].faulty_nodes);
        assert_eq!(r[0].permanent_faults, r[2].permanent_faults);
        // And repair orders as the paper's Figure 10: RF ≥ PPR ≥ none.
        assert!(r[1].fully_repaired_nodes >= r[2].fully_repaired_nodes);
        assert_eq!(r[0].fully_repaired_nodes, 0);
    }

    #[test]
    fn coverage_math() {
        let mut r = ScenarioResult::new("x".into());
        r.trials = 10;
        r.faulty_nodes = 4;
        r.fully_repaired_nodes = 3;
        for b in [64.0, 128.0, 4096.0] {
            r.repair_bytes.add(b);
        }
        assert!((r.coverage() - 0.75).abs() < 1e-12);
        assert!((r.coverage_at_bytes(128) - 0.5).abs() < 1e-12);
        assert_eq!(r.bytes_for_coverage(0.5), Some(128));
        assert_eq!(r.bytes_for_coverage(0.9), None);
        assert!((r.per_system(2, 100) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn population_stats_reasonable() {
        use relaxfault_faults::{FaultModel, FitRates};
        let cfg = relaxfault_dram::DramConfig::isca16_reliability();
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let p = fault_population(&model, &cfg, 4000, 99, 4);
        assert_eq!(p.trials, 4000);
        let frac = p.faulty_nodes as f64 / p.trials as f64;
        assert!((0.08..0.17).contains(&frac), "faulty fraction {frac}");
        assert!(p.faulty_dimms >= p.faulty_nodes);
        assert!(p.multi_device_dimms < p.faulty_dimms);
    }
}
