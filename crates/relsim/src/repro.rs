//! Deterministic failing-trial repro cases.
//!
//! When an `RF_CHECK=1` invariant check or a relcheck oracle disagrees
//! with the production path, the failing input is written here as a small
//! JSON file under `results/relcheck/`. A case pins everything needed to
//! re-execute the exact trial: the run seed, the trial index, the
//! fault-model group, and the full scenario configurations of that group's
//! arms (via the existing [`Scenario`] JSON layer). Property-based cases
//! additionally carry the shrunk `util::prop` choice stream that decodes
//! back to the generated input; fleet-mode cases record the lifetime
//! epoch the failure surfaced in.
//!
//! The `relcheck replay` binary (in `crates/relcheck`) loads a case,
//! forces tracing on, replays the `(seed, trial, group)` RNG streams, and
//! compares a digest of the resampled fault population against the one
//! recorded at failure time — equality proves the reproduction is
//! bit-exact.
//!
//! Repro cases share their persistence contract (schema-versioned kind
//! header, atomic writes, path-contextualized loads) with fleet
//! checkpoints through [`relaxfault_util::persist::Persist`]. Schema v2
//! added the optional `epoch` field; v1 files (PR 5) remain readable and
//! decode with `epoch: None`.

use crate::scenario::Scenario;
use relaxfault_faults::NodeFaults;
use relaxfault_util::json::Value;
use relaxfault_util::persist::{self, Persist};
use std::path::PathBuf;

/// Repro file format version; bump on breaking layout changes.
pub const REPRO_SCHEMA_VERSION: u64 = 2;

/// The `kind` tag distinguishing repro files from obs snapshots.
pub const REPRO_KIND: &str = "relcheck_repro";

/// One replayable failing case.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// Short case name (`engine_check`, an oracle property name, …);
    /// doubles as the replay dispatch key for property cases.
    pub case: String,
    /// Human-readable failure description.
    pub reason: String,
    /// Run seed the trial streams derive from.
    pub seed: u64,
    /// Failing trial index.
    pub trial: u64,
    /// Fault-model group index (the third RNG-stream key).
    pub group: u64,
    /// Lifetime epoch the failure surfaced in (fleet-mode cases only;
    /// `None` for whole-lifetime engine and property cases). Since v2.
    pub epoch: Option<u64>,
    /// The scenario arms of the failing group, first one owning the fault
    /// model. Empty for property cases that regenerate their own input.
    pub scenarios: Vec<Scenario>,
    /// FNV-1a digest of the sampled fault population at failure time
    /// (`None` when the failure precedes sampling).
    pub digest: Option<u64>,
    /// Shrunk `util::prop` choice stream for property-based cases.
    pub prop_choices: Vec<u64>,
}

/// Digest of one sampled fault population, used to prove a replay
/// resampled the identical lifetime. The debug representation covers every
/// field of every event, so any divergence changes the hash.
pub fn trial_digest(node: &NodeFaults) -> u64 {
    persist::digest_debug(node)
}

impl Persist for ReproCase {
    const KIND: &'static str = REPRO_KIND;
    const SCHEMA_VERSION: u64 = REPRO_SCHEMA_VERSION;

    /// v1 (PR 5, before the `epoch` field) is still accepted.
    fn accepts_version(version: u64) -> bool {
        (1..=REPRO_SCHEMA_VERSION).contains(&version)
    }

    /// Serializes the case. u64 fields that may exceed 2^53 (seed, digest,
    /// choices) are stored as hex strings — the in-repo JSON layer keeps
    /// numbers as f64.
    fn to_json(&self) -> Value {
        Value::object([
            ("schema_version", Value::from(REPRO_SCHEMA_VERSION)),
            ("kind", Value::from(REPRO_KIND)),
            ("case", Value::from(self.case.as_str())),
            ("reason", Value::from(self.reason.as_str())),
            ("seed", persist::hex(self.seed)),
            ("trial", Value::from(self.trial)),
            ("group", Value::from(self.group)),
            (
                "epoch",
                match self.epoch {
                    Some(e) => Value::from(e),
                    None => Value::Null,
                },
            ),
            (
                "scenarios",
                Value::Array(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
            (
                "digest",
                match self.digest {
                    Some(d) => persist::hex(d),
                    None => Value::Null,
                },
            ),
            (
                "prop_choices",
                Value::Array(self.prop_choices.iter().map(|&c| persist::hex(c)).collect()),
            ),
        ])
    }

    /// Deserializes a case written by [`Persist::to_json`] at any
    /// accepted schema version (v1 files decode with `epoch: None`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    fn from_json(v: &Value) -> Result<Self, String> {
        let version = Self::check_header(v)?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing {k}"));
        let scenarios = field("scenarios")?
            .as_array()
            .ok_or("scenarios must be an array")?
            .iter()
            .map(Scenario::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let digest = match field("digest")? {
            Value::Null => None,
            other => Some(persist::parse_hex(other).ok_or("digest must be a hex string")?),
        };
        // `epoch` arrived in v2; v1 files simply lack it.
        let epoch = match v.get("epoch") {
            None if version < 2 => None,
            None => return Err("missing epoch".into()),
            Some(Value::Null) => None,
            Some(_) => Some(persist::parse_u64_field(v, "epoch")?),
        };
        let prop_choices = field("prop_choices")?
            .as_array()
            .ok_or("prop_choices must be an array")?
            .iter()
            .map(|c| persist::parse_hex(c).ok_or_else(|| "choices must be hex strings".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            case: field("case")?
                .as_str()
                .ok_or("case must be a string")?
                .into(),
            reason: field("reason")?
                .as_str()
                .ok_or("reason must be a string")?
                .into(),
            seed: persist::parse_hex_field(v, "seed")?,
            trial: persist::parse_u64_field(v, "trial")?,
            group: persist::parse_u64_field(v, "group")?,
            epoch,
            scenarios,
            digest,
            prop_choices,
        })
    }
}

impl ReproCase {
    /// Serializes the case — see [`Persist::to_json`].
    pub fn to_json(&self) -> Value {
        Persist::to_json(self)
    }

    /// Deserializes a case — see [`Persist::from_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Persist::from_json(v)
    }

    /// Writes the case under `<results>/relcheck/` (honouring
    /// `RF_RESULTS_DIR`) with a filename derived from the case name and
    /// trial coordinates, and returns the path. The write is atomic (via
    /// [`Persist::save`]), so a crash mid-write cannot leave a truncated
    /// case behind.
    ///
    /// # Panics
    ///
    /// Panics if the directory or file cannot be written — a repro that
    /// silently fails to persist defeats its purpose.
    pub fn write(&self) -> PathBuf {
        let base = std::env::var("RF_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let path = PathBuf::from(base).join("relcheck").join(format!(
            "{}_s{:x}_t{}_g{}.json",
            self.case, self.seed, self.trial, self.group
        ));
        self.save(&path).expect("write repro case");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Mechanism;

    fn sample_case() -> ReproCase {
        ReproCase {
            case: "engine_check".into(),
            reason: "forced failure".into(),
            seed: 0xDEAD_BEEF_0000_0001,
            trial: 42,
            group: 1,
            epoch: Some(17),
            scenarios: vec![
                Scenario::isca16_baseline().with_mechanism(Mechanism::RelaxFault { max_ways: 1 }),
                Scenario::isca16_baseline().with_mechanism(Mechanism::Ppr),
            ],
            digest: Some(0x1234_5678_9ABC_DEF0),
            prop_choices: vec![0, 7, u64::MAX],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let case = sample_case();
        let text = case.to_json().to_pretty();
        let parsed = Value::parse(&text).expect("self-produced JSON parses");
        assert_eq!(ReproCase::from_json(&parsed).unwrap(), case);
        // Digest-less (pre-sampling), epoch-less cases round-trip too.
        let case = ReproCase {
            digest: None,
            epoch: None,
            prop_choices: vec![],
            ..case
        };
        let parsed = Value::parse(&case.to_json().to_pretty()).unwrap();
        assert_eq!(ReproCase::from_json(&parsed).unwrap(), case);
    }

    #[test]
    fn v1_files_without_epoch_still_decode() {
        // A v1 writer never emitted `epoch`; the v2 reader must accept the
        // old layout and default the field.
        let case = sample_case();
        let mut pairs = match case.to_json() {
            Value::Object(pairs) => pairs,
            _ => unreachable!("cases serialize to objects"),
        };
        pairs.retain(|(k, _)| k != "epoch");
        for (k, v) in pairs.iter_mut() {
            if k == "schema_version" {
                *v = Value::from(1u64);
            }
        }
        let decoded = ReproCase::from_json(&Value::Object(pairs)).unwrap();
        assert_eq!(
            decoded,
            ReproCase {
                epoch: None,
                ..case
            }
        );
    }

    #[test]
    fn v2_files_must_carry_epoch() {
        let mut pairs = match sample_case().to_json() {
            Value::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        pairs.retain(|(k, _)| k != "epoch");
        let err = ReproCase::from_json(&Value::Object(pairs)).unwrap_err();
        assert!(err.contains("epoch"), "{err}");
    }

    #[test]
    fn from_json_rejects_foreign_files() {
        let snapshot = Value::object([("schema_version", Value::from(2.0))]);
        assert!(ReproCase::from_json(&snapshot).is_err());
        let wrong_kind = Value::object([
            ("schema_version", Value::from(2.0)),
            ("kind", Value::from("metrics_snapshot")),
        ]);
        assert!(ReproCase::from_json(&wrong_kind).is_err());
        let future = Value::object([
            ("schema_version", Value::from(3.0)),
            ("kind", Value::from(REPRO_KIND)),
        ]);
        assert!(ReproCase::from_json(&future)
            .unwrap_err()
            .contains("schema version 3"));
    }

    #[test]
    fn digest_tracks_population_content() {
        use relaxfault_faults::NodeFaults;
        let empty = NodeFaults::default();
        let other = NodeFaults {
            node_accelerated: true,
            ..Default::default()
        };
        assert_ne!(trial_digest(&empty), trial_digest(&other));
        assert_eq!(trial_digest(&empty), trial_digest(&NodeFaults::default()));
    }
}
