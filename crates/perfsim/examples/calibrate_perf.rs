//! Scratch: weighted speedup sensitivity to LLC capacity loss.
//! Run: cargo run --release -p relaxfault-perfsim --example calibrate_perf [instr]

use relaxfault_perfsim::workload::catalog;
use relaxfault_perfsim::{CapacityLoss, SimConfig, Simulation, WeightedSpeedup};

fn main() {
    let instr: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let cfg = SimConfig {
        instructions_per_core: instr,
        ..SimConfig::isca16()
    };
    let t0 = std::time::Instant::now();
    for w in catalog::all() {
        // Solo IPCs: each distinct spec alone on the machine.
        let mut solo = Vec::new();
        for spec in &w.cores {
            let alone = relaxfault_perfsim::Workload {
                name: format!("{}-solo", spec.name),
                cores: vec![spec.clone()],
            };
            let r = Simulation::run(&cfg, &alone, CapacityLoss::None, 11);
            solo.push(r.per_core[0].ipc);
        }
        let mut line = format!("{:8}", w.name);
        let full = Simulation::run(&cfg, &w, CapacityLoss::None, 11);
        let base_power = full.dram_dynamic_power_mw(&cfg.energy);
        for loss in [
            CapacityLoss::None,
            CapacityLoss::RandomLines { bytes: 100 << 10 },
            CapacityLoss::Ways(1),
            CapacityLoss::Ways(4),
        ] {
            let r = Simulation::run(&cfg, &w, loss, 11);
            let ws = WeightedSpeedup::compute(&solo, &r);
            let p = r.dram_dynamic_power_mw(&cfg.energy) / base_power * 100.0;
            line += &format!("  {}={:.2}/p{:.0}%", loss.label(), ws.0, p);
        }
        println!("{line}");
    }
    println!("elapsed {:?}", t0.elapsed());
}
