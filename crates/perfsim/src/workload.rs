//! Synthetic workload models standing in for the paper's Table 4
//! benchmarks.
//!
//! Each core runs a [`CoreSpec`]: a memory intensity (memory operations per
//! instruction) plus a mixture of access *regions*. Three region kinds
//! cover the locality behaviours that matter for LLC-capacity studies:
//!
//! * a **hot** set reused heavily (lives in the LLC if it fits — this is
//!   the knob that makes a workload capacity-sensitive),
//! * **streaming** scans (sequential, no reuse, DRAM-bandwidth bound),
//! * **random** pointer chasing over a large footprint (latency bound,
//!   misses regardless of LLC size).
//!
//! Multi-threaded benchmarks share their regions across cores;
//! multi-programmed mixes give each core private regions.

use relaxfault_util::rng::Rng;

/// One component of a core's access mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Probability an access goes to this region (mixture weights must sum
    /// to 1).
    pub weight: f64,
    /// Footprint in bytes.
    pub bytes: u64,
    /// Access pattern within the region.
    pub pattern: Pattern,
    /// Whether all cores address one copy (multi-threaded sharing) or each
    /// core gets a private copy.
    pub shared: bool,
}

/// Address pattern within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential 64-byte-stride scan, wrapping at the footprint.
    Stream,
    /// Uniform random lines.
    Random,
}

/// Per-core workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Display name (the benchmark this stands in for).
    pub name: String,
    /// Memory operations per instruction.
    pub mem_ratio: f64,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// The access mixture.
    pub regions: Vec<Region>,
}

impl CoreSpec {
    /// Checks mixture weights.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let sum: f64 = self.regions.iter().map(|r| r.weight).sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("{}: region weights sum to {sum}", self.name));
        }
        if !(0.0..=1.0).contains(&self.mem_ratio) || !(0.0..=1.0).contains(&self.write_frac) {
            return Err(format!("{}: ratios out of range", self.name));
        }
        if self.regions.iter().any(|r| r.bytes < 64) {
            return Err(format!("{}: region smaller than one line", self.name));
        }
        Ok(())
    }
}

/// A full 8-core workload (one of the paper's Figure 15 bars).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// One spec per core.
    pub cores: Vec<CoreSpec>,
}

impl Workload {
    /// A multi-threaded workload: every core runs `spec`.
    pub fn threaded(name: &str, spec: CoreSpec, cores: u32) -> Self {
        Self {
            name: name.to_string(),
            cores: (0..cores).map(|_| spec.clone()).collect(),
        }
    }

    /// A multi-programmed mix cycling through `specs`.
    pub fn mix(name: &str, specs: &[CoreSpec], cores: u32) -> Self {
        Self {
            name: name.to_string(),
            cores: (0..cores as usize)
                .map(|i| specs[i % specs.len()].clone())
                .collect(),
        }
    }

    /// Checks every core spec.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for c in &self.cores {
            c.validate()?;
        }
        Ok(())
    }
}

/// Runtime address generator for one core.
#[derive(Debug, Clone)]
pub struct AddressStream {
    regions: Vec<StreamRegion>,
    write_frac: f64,
    mem_ratio: f64,
}

#[derive(Debug, Clone)]
struct StreamRegion {
    weight: f64,
    base: u64,
    lines: u64,
    pattern: Pattern,
    cursor: u64,
}

impl AddressStream {
    /// Lays out a spec's regions for `core`. Shared regions get one copy at
    /// a workload-global base; private regions are replicated per core.
    /// `addr_space` bounds the physical footprint (addresses wrap).
    pub fn new(spec: &CoreSpec, core: u32, addr_space: u64) -> Self {
        spec.validate().expect("invalid CoreSpec");
        let mut regions = Vec::new();
        // Simple deterministic layout: shared regions first at fixed bases,
        // then private regions at per-core offsets in the upper half.
        let mut shared_base = 0u64;
        let mut private_base = addr_space / 2 + core as u64 * (addr_space / 64);
        for r in &spec.regions {
            let lines = (r.bytes / 64).max(1);
            let base = if r.shared {
                let b = shared_base;
                shared_base += r.bytes.next_multiple_of(1 << 20);
                b
            } else {
                let b = private_base;
                private_base += r.bytes.next_multiple_of(1 << 20);
                b
            };
            // Shared streams start staggered a cache-resident distance
            // apart: the cores' sweeps convoy through the LLC (threads of
            // one NPB loop touching the same arrays within an iteration).
            regions.push(StreamRegion {
                weight: r.weight,
                base: base % addr_space,
                lines,
                pattern: r.pattern,
                cursor: (core as u64 * 97) % lines,
            });
        }
        Self {
            regions,
            write_frac: spec.write_frac,
            mem_ratio: spec.mem_ratio,
        }
    }

    /// Instructions between memory operations, on average.
    pub fn gap_instructions(&self) -> f64 {
        if self.mem_ratio <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.mem_ratio
        }
    }

    /// Draws the next memory access: `(byte address, is_write)`.
    pub fn next_access<R: Rng + ?Sized>(&mut self, rng: &mut R, addr_space: u64) -> (u64, bool) {
        let mut pick: f64 = rng.gen();
        let mut idx = self.regions.len() - 1;
        for (i, r) in self.regions.iter().enumerate() {
            if pick < r.weight {
                idx = i;
                break;
            }
            pick -= r.weight;
        }
        let r = &mut self.regions[idx];
        let line = match r.pattern {
            Pattern::Stream => {
                r.cursor = (r.cursor + 1) % r.lines;
                r.cursor
            }
            Pattern::Random => rng.gen_range(0..r.lines),
        };
        let addr = (r.base + line * 64) % addr_space;
        (addr, rng.gen_bool(self.write_frac))
    }
}

/// The Table 4 catalogue.
pub mod catalog {
    use super::*;

    fn hot(weight: f64, bytes: u64, shared: bool) -> Region {
        // A hot set is reused heavily; random access within it keeps every
        // line warm without streaming eviction.
        Region {
            weight,
            bytes,
            pattern: Pattern::Random,
            shared,
        }
    }

    fn stream(weight: f64, bytes: u64, shared: bool) -> Region {
        Region {
            weight,
            bytes,
            pattern: Pattern::Stream,
            shared,
        }
    }

    fn rand(weight: f64, bytes: u64, shared: bool) -> Region {
        Region {
            weight,
            bytes,
            pattern: Pattern::Random,
            shared,
        }
    }

    /// NPB CG (class C): sparse matrix-vector — irregular gathers over a
    /// large matrix with a hot multiplicand vector.
    pub fn cg() -> Workload {
        Workload::threaded(
            "CG",
            CoreSpec {
                name: "CG".into(),
                mem_ratio: 0.35,
                write_frac: 0.15,
                regions: vec![
                    hot(0.45, 3 << 19, true),
                    rand(0.40, 512 << 20, true),
                    stream(0.15, 256 << 20, true),
                ],
            },
            8,
        )
    }

    /// NPB DC (class A): data cube — huge streaming aggregations, memory
    /// intensive with a borderline-LLC hot index.
    pub fn dc() -> Workload {
        Workload::threaded(
            "DC",
            CoreSpec {
                name: "DC".into(),
                mem_ratio: 0.45,
                write_frac: 0.30,
                regions: vec![
                    hot(0.30, 3 << 19, true),
                    stream(0.45, 1 << 30, true),
                    rand(0.25, 1 << 30, true),
                ],
            },
            8,
        )
    }

    /// NPB LU (class C): structured stencil sweeps with strong reuse.
    pub fn lu() -> Workload {
        Workload::threaded(
            "LU",
            CoreSpec {
                name: "LU".into(),
                mem_ratio: 0.30,
                write_frac: 0.25,
                regions: vec![
                    hot(0.40, 3 << 19, true),
                    stream(0.55, 512 << 20, true),
                    rand(0.05, 64 << 20, true),
                ],
            },
            8,
        )
    }

    /// NPB SP (class C): penta-diagonal solver, similar structure to LU.
    pub fn sp() -> Workload {
        Workload::threaded(
            "SP",
            CoreSpec {
                name: "SP".into(),
                mem_ratio: 0.32,
                write_frac: 0.28,
                regions: vec![
                    hot(0.35, 1 << 20, true),
                    stream(0.60, 768 << 20, true),
                    rand(0.05, 64 << 20, true),
                ],
            },
            8,
        )
    }

    /// NPB UA (class C): unstructured adaptive mesh — pointer-heavy.
    pub fn ua() -> Workload {
        Workload::threaded(
            "UA",
            CoreSpec {
                name: "UA".into(),
                mem_ratio: 0.35,
                write_frac: 0.20,
                regions: vec![
                    hot(0.35, 3 << 19, true),
                    rand(0.45, 96 << 20, true),
                    stream(0.20, 128 << 20, true),
                ],
            },
            8,
        )
    }

    /// LULESH (size 303): shock hydrodynamics whose shared working set
    /// barely exceeds the LLC once repair locks several ways — the one
    /// benchmark the paper shows degrading (~7% at 4 locked ways).
    pub fn lulesh() -> Workload {
        Workload::threaded(
            "LULESH",
            CoreSpec {
                name: "LULESH".into(),
                mem_ratio: 0.40,
                write_frac: 0.30,
                regions: vec![
                    hot(0.70, 7 << 19, true),
                    stream(0.20, 256 << 20, true),
                    rand(0.10, 128 << 20, true),
                ],
            },
            8,
        )
    }

    /// SPEC CPU2006 memory-intensive mix (mcf, milc, soplex, libquantum,
    /// lbm, leslie3d, omnetpp stand-ins).
    pub fn spec_mem() -> Workload {
        let mcf = CoreSpec {
            name: "429.mcf".into(),
            mem_ratio: 0.40,
            write_frac: 0.15,
            regions: vec![rand(0.55, 1 << 30, false), hot(0.45, 1 << 18, false)],
        };
        let milc = CoreSpec {
            name: "433.milc".into(),
            mem_ratio: 0.35,
            write_frac: 0.25,
            regions: vec![stream(0.80, 512 << 20, false), hot(0.20, 1 << 19, false)],
        };
        let soplex = CoreSpec {
            name: "450.soplex".into(),
            mem_ratio: 0.30,
            write_frac: 0.20,
            regions: vec![
                rand(0.40, 256 << 20, false),
                stream(0.35, 256 << 20, false),
                hot(0.25, 1 << 19, false),
            ],
        };
        let libquantum = CoreSpec {
            name: "462.libquantum".into(),
            mem_ratio: 0.30,
            write_frac: 0.30,
            regions: vec![stream(0.95, 64 << 20, false), hot(0.05, 1 << 20, false)],
        };
        let lbm = CoreSpec {
            name: "470.lbm".into(),
            mem_ratio: 0.38,
            write_frac: 0.45,
            regions: vec![stream(0.90, 384 << 20, false), hot(0.10, 1 << 19, false)],
        };
        Workload::mix("MEM", &[mcf, milc, soplex, libquantum, lbm], 8)
    }

    /// SPEC CPU2006 mixed compute/memory workload (bzip2, sjeng join the
    /// memory-intensive apps).
    pub fn spec_comp() -> Workload {
        let bzip2 = CoreSpec {
            name: "401.bzip2".into(),
            mem_ratio: 0.12,
            write_frac: 0.30,
            regions: vec![hot(0.80, 1 << 19, false), stream(0.20, 64 << 20, false)],
        };
        let sjeng = CoreSpec {
            name: "458.sjeng".into(),
            mem_ratio: 0.08,
            write_frac: 0.20,
            regions: vec![hot(0.70, 1 << 18, false), rand(0.30, 96 << 20, false)],
        };
        let mem = spec_mem();
        Workload::mix(
            "COMP",
            &[
                mem.cores[0].clone(),
                bzip2.clone(),
                mem.cores[1].clone(),
                sjeng.clone(),
                mem.cores[2].clone(),
                bzip2,
                mem.cores[4].clone(),
                sjeng,
            ],
            8,
        )
    }

    /// Every Figure 15 workload, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            cg(),
            dc(),
            lu(),
            sp(),
            ua(),
            lulesh(),
            spec_mem(),
            spec_comp(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::rng::Rng64;

    #[test]
    fn catalogue_validates() {
        for w in catalog::all() {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(w.cores.len(), 8);
        }
    }

    #[test]
    fn stream_region_is_sequential() {
        let spec = CoreSpec {
            name: "s".into(),
            mem_ratio: 1.0,
            write_frac: 0.0,
            regions: vec![Region {
                weight: 1.0,
                bytes: 4096,
                pattern: Pattern::Stream,
                shared: true,
            }],
        };
        let mut s = AddressStream::new(&spec, 0, 1 << 30);
        let mut rng = Rng64::seed_from_u64(1);
        let (a1, _) = s.next_access(&mut rng, 1 << 30);
        let (a2, _) = s.next_access(&mut rng, 1 << 30);
        assert_eq!(a2, a1 + 64);
    }

    #[test]
    fn random_region_stays_in_footprint() {
        let spec = CoreSpec {
            name: "r".into(),
            mem_ratio: 0.5,
            write_frac: 0.5,
            regions: vec![Region {
                weight: 1.0,
                bytes: 1 << 20,
                pattern: Pattern::Random,
                shared: false,
            }],
        };
        let mut s = AddressStream::new(&spec, 3, 1 << 30);
        let mut rng = Rng64::seed_from_u64(2);
        let base = {
            let (a, _) = s.next_access(&mut rng, 1 << 30);
            a & !((1u64 << 20) - 1)
        };
        for _ in 0..1000 {
            let (a, _) = s.next_access(&mut rng, 1 << 30);
            assert!(
                a >= base && a < base + (2 << 20),
                "addr {a:#x} vs base {base:#x}"
            );
        }
    }

    #[test]
    fn shared_regions_coincide_across_cores() {
        let w = catalog::lulesh();
        let mut s0 = AddressStream::new(&w.cores[0], 0, 32 << 30);
        let mut s1 = AddressStream::new(&w.cores[1], 1, 32 << 30);
        let mut rng = Rng64::seed_from_u64(3);
        let mut a0: Vec<u64> = (0..2000)
            .map(|_| s0.next_access(&mut rng, 32 << 30).0)
            .collect();
        let mut a1: Vec<u64> = (0..2000)
            .map(|_| s1.next_access(&mut rng, 32 << 30).0)
            .collect();
        a0.sort_unstable();
        a1.sort_unstable();
        // Shared hot set: substantial overlap in the address ranges hit.
        let overlap = a0.iter().filter(|a| a1.binary_search(a).is_ok()).count();
        assert!(overlap > 0, "threaded workloads must share addresses");
    }

    #[test]
    fn private_regions_differ_across_cores() {
        let w = catalog::spec_mem();
        let s0 = AddressStream::new(&w.cores[0], 0, 32 << 30);
        let s1 = AddressStream::new(&w.cores[1], 1, 32 << 30);
        // Private bases must differ (different cores, different layout).
        assert_ne!(s0.regions[0].base, s1.regions[0].base);
    }

    #[test]
    fn write_fraction_is_respected() {
        let w = catalog::dc();
        let mut s = AddressStream::new(&w.cores[0], 0, 32 << 30);
        let mut rng = Rng64::seed_from_u64(4);
        let writes = (0..20_000)
            .filter(|_| s.next_access(&mut rng, 32 << 30).1)
            .count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.30).abs() < 0.02, "write frac {frac}");
    }

    #[test]
    fn gap_matches_mem_ratio() {
        let w = catalog::cg();
        let s = AddressStream::new(&w.cores[0], 0, 32 << 30);
        assert!((s.gap_instructions() - 1.0 / 0.35).abs() < 1e-9);
    }
}
