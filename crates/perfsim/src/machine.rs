//! The machine model: limited-MLP cores, private L1/L2, shared lockable
//! LLC, open-page DDR3 memory controllers.
//!
//! Simplifications, relative to the cycle-accurate simulator the paper
//! uses, and why they are safe for Figures 15/16:
//!
//! * Cores are interval-modelled: instructions retire at `base_ipc` until
//!   a long-latency access either fills the MLP window or slides past the
//!   ROB span; pipeline details below L1 are abstracted. Capacity studies
//!   live and die by miss *counts* and DRAM occupancy, both of which are
//!   modelled exactly.
//! * The memory controller is FCFS with an open-page policy per bank
//!   (row-hit requests naturally complete faster through bank state); the
//!   FR-FCFS reordering window is not modelled. Relative throughput across
//!   LLC capacities is insensitive to this (every configuration sees the
//!   same scheduler).
//! * Writes never block the core: stores retire into the write-back
//!   hierarchy; only dirty evictions reach DRAM, where they occupy banks
//!   and burn energy.

use crate::config::{CapacityLoss, SimConfig};
use crate::metrics::{CoreStats, SimResult};
use crate::workload::{AddressStream, Workload};
use relaxfault_cache::Cache;
use relaxfault_dram::{AddressMap, DramCmd, OpCounts, PhysAddr, RankTiming};
use relaxfault_util::obs::{self, Level};
use relaxfault_util::rng::Rng;
use relaxfault_util::rng::Rng64;
use relaxfault_util::trace_event;
use std::collections::VecDeque;

/// One channel's banks and counters.
struct Channel {
    ranks: Vec<RankTiming>,
    counts: OpCounts,
    /// DRAM cycle at which each rank's next refresh is due.
    next_refresh: Vec<u64>,
}

/// The DRAM back end: per-channel, per-rank bank timing.
struct MemoryBackend {
    map: AddressMap,
    channels: Vec<Channel>,
    core_per_dram: u64,
    t_refi: u64,
}

impl MemoryBackend {
    fn new(cfg: &SimConfig) -> Self {
        let ranks_per_channel = (cfg.dram.dimms_per_channel * cfg.dram.ranks_per_dimm) as usize;
        let channels = (0..cfg.dram.channels)
            .map(|_| Channel {
                ranks: (0..ranks_per_channel)
                    .map(|_| RankTiming::new(cfg.dram.banks, cfg.timing))
                    .collect(),
                counts: OpCounts::default(),
                next_refresh: vec![cfg.timing.t_refi as u64; ranks_per_channel],
            })
            .collect();
        Self {
            map: AddressMap::nehalem_like(&cfg.dram, true),
            channels,
            core_per_dram: cfg.core_cycles_per_dram_cycle(),
            t_refi: cfg.timing.t_refi as u64,
        }
    }

    /// Performs one DRAM burst; returns the core cycle at which read data
    /// is available (for writes the value is the bus completion, which the
    /// caller ignores).
    fn access(&mut self, addr: u64, is_write: bool, now_core: u64) -> u64 {
        let (loc, _) = self.map.decode(PhysAddr(addr));
        let ch = &mut self.channels[loc.channel as usize];
        let rank_idx = (loc.dimm + loc.rank) as usize % ch.ranks.len();
        let now = now_core / self.core_per_dram;
        // Account elapsed auto-refreshes for this rank (energy and bank
        // occupancy are folded into the refresh count; the coarse model is
        // enough for Figure 16's dynamic-power comparison).
        if self.t_refi > 0 {
            let due = &mut ch.next_refresh[rank_idx];
            while *due <= now {
                ch.counts.refreshes += 1;
                *due += self.t_refi;
            }
        }
        let rank = &mut ch.ranks[rank_idx];
        // Open-page policy: row hit proceeds; conflict precharges first.
        match rank.open_row(loc.bank) {
            Some(r) if r == loc.row => {}
            Some(_) => {
                let at = rank.earliest(DramCmd::Precharge, loc.bank, loc.row, now);
                rank.issue(DramCmd::Precharge, loc.bank, loc.row, at);
                ch.counts.precharges += 1;
                let at = rank.earliest(DramCmd::Activate, loc.bank, loc.row, now);
                rank.issue(DramCmd::Activate, loc.bank, loc.row, at);
                ch.counts.activates += 1;
            }
            None => {
                let at = rank.earliest(DramCmd::Activate, loc.bank, loc.row, now);
                rank.issue(DramCmd::Activate, loc.bank, loc.row, at);
                ch.counts.activates += 1;
            }
        }
        let cmd = if is_write {
            DramCmd::Write
        } else {
            DramCmd::Read
        };
        let at = rank.earliest(cmd, loc.bank, loc.row, now);
        let done = rank.issue(cmd, loc.bank, loc.row, at);
        if is_write {
            ch.counts.writes += 1;
        } else {
            ch.counts.reads += 1;
        }
        done * self.core_per_dram
    }

    fn total_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for ch in &self.channels {
            c.merge(&ch.counts);
        }
        c
    }
}

/// One simulated core.
struct CoreSim {
    name: String,
    stream: AddressStream,
    rng: Rng64,
    l1: Cache,
    l2: Cache,
    cycle: f64,
    instructions: f64,
    target: u64,
    cycle_at_target: Option<f64>,
    /// In-flight long-latency accesses: (instruction number, completion
    /// cycle).
    window: VecDeque<(f64, f64)>,
}

/// A complete 8-core simulation (paper Table 3 machine).
pub struct Simulation;

impl Simulation {
    /// Runs `workload` to `cfg.instructions_per_core` per core under the
    /// given LLC capacity loss. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics on invalid configs or workloads.
    pub fn run(cfg: &SimConfig, workload: &Workload, loss: CapacityLoss, seed: u64) -> SimResult {
        cfg.validate().expect("invalid SimConfig");
        workload.validate().expect("invalid Workload");
        let _run_span = obs::span("perfsim.run_ns");
        let addr_space = cfg.dram.node_bytes();

        let mut llc = Cache::new(cfg.llc);
        let locked_lines = match loss {
            CapacityLoss::None => 0,
            CapacityLoss::Ways(n) => {
                llc.lock_ways_per_set(n);
                n as u64 * cfg.llc.sets()
            }
            CapacityLoss::RandomLines { bytes } => {
                let mut rng = Rng64::seed_from_u64(seed ^ 0x10C);
                let lines = bytes / cfg.llc.line_bytes as u64;
                let sets: Vec<u64> = (0..lines)
                    .map(|_| rng.gen_range(0..cfg.llc.sets()))
                    .collect();
                llc.lock_lines_in_sets(sets)
            }
        };

        let mut backend = MemoryBackend::new(cfg);
        let mut cores: Vec<CoreSim> = workload
            .cores
            .iter()
            .enumerate()
            .map(|(i, spec)| CoreSim {
                name: spec.name.clone(),
                stream: AddressStream::new(spec, i as u32, addr_space),
                rng: Rng64::seed_from_u64(seed.wrapping_add(i as u64 * 0x9E37)),
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
                cycle: 0.0,
                instructions: 0.0,
                target: cfg.instructions_per_core,
                cycle_at_target: None,
                window: VecDeque::new(),
            })
            .collect();

        while cores.iter().any(|c| c.cycle_at_target.is_none()) {
            // Advance the core that is furthest behind in time, keeping the
            // memory controller's arrival order roughly chronological.
            let idx = cores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cycle.partial_cmp(&b.1.cycle).expect("finite cycles"))
                .map(|(i, _)| i)
                .expect("at least one core");
            step_core(cfg, &mut cores[idx], &mut llc, &mut backend);
        }

        let per_core: Vec<CoreStats> = cores
            .iter()
            .map(|c| {
                let cycles = c.cycle_at_target.expect("core finished");
                CoreStats {
                    name: c.name.clone(),
                    instructions: c.target,
                    cycles,
                    ipc: c.target as f64 / cycles,
                }
            })
            .collect();
        let elapsed = per_core.iter().map(|c| c.cycles).fold(0.0f64, f64::max);
        let result = SimResult {
            per_core,
            op_counts: backend.total_counts(),
            elapsed_cycles: elapsed,
            core_mhz: cfg.core_mhz,
            llc_stats: *llc.stats(),
        };
        record_run(cfg, workload, locked_lines, seed, &result);
        result
    }
}

/// Publishes one finished simulation's LLC and DRAM telemetry.
fn record_run(cfg: &SimConfig, workload: &Workload, locked_lines: u64, seed: u64, r: &SimResult) {
    if !obs::metrics_enabled() && !obs::enabled("perfsim", Level::Info) {
        return;
    }
    // Fold the machine config and workload into the run manifest so a
    // snapshot records what produced it. perfsim is single-threaded.
    obs::note_run_context(
        seed,
        1,
        obs::fnv1a(format!("{cfg:?}|{workload:?}").as_bytes()),
    );
    obs::counter("perfsim.runs").inc();
    obs::counter("perfsim.llc.hits").add(r.llc_stats.hits);
    obs::counter("perfsim.llc.misses").add(r.llc_stats.misses);
    obs::counter("perfsim.llc.bypasses").add(r.llc_stats.bypasses);
    obs::counter("perfsim.llc.writebacks").add(r.llc_stats.writebacks);
    obs::gauge("perfsim.llc.locked_lines").set(locked_lines as f64);
    obs::counter("perfsim.dram.reads").add(r.op_counts.reads);
    obs::counter("perfsim.dram.writes").add(r.op_counts.writes);
    obs::counter("perfsim.dram.activates").add(r.op_counts.activates);
    obs::counter("perfsim.dram.precharges").add(r.op_counts.precharges);
    obs::counter("perfsim.dram.refreshes").add(r.op_counts.refreshes);
    trace_event!(target: "perfsim", Level::Info, "sim_run",
        workload = workload.name.as_str(),
        cores = workload.cores.len(),
        locked_lines = locked_lines,
        elapsed_cycles = r.elapsed_cycles,
        llc_hits = r.llc_stats.hits,
        llc_misses = r.llc_stats.misses,
        dram_reads = r.op_counts.reads,
        dram_writes = r.op_counts.writes);
}

/// Advances one core past its next memory operation.
fn step_core(cfg: &SimConfig, core: &mut CoreSim, llc: &mut Cache, backend: &mut MemoryBackend) {
    let addr_space = cfg.dram.node_bytes();
    // Compute phase: instructions until the next memory op (exponential
    // gap around the spec's memory ratio).
    let gap = if core.stream.gap_instructions().is_finite() {
        let u: f64 = core.rng.gen::<f64>().max(1e-12);
        -u.ln() * core.stream.gap_instructions()
    } else {
        1e9
    };
    core.instructions += gap + 1.0;
    core.cycle += (gap + 1.0) / cfg.base_ipc;

    // Retire completed accesses.
    while let Some(&(_, done)) = core.window.front() {
        if done <= core.cycle {
            core.window.pop_front();
        } else {
            break;
        }
    }

    // The memory operation.
    let (addr, is_write) = core.stream.next_access(&mut core.rng, addr_space);
    let completion = hierarchy_access(cfg, core, llc, backend, addr, is_write);
    if let Some(done) = completion {
        // ROB span: stall if the oldest outstanding access is too far back.
        while let Some(&(inst, old_done)) = core.window.front() {
            let over_span = core.instructions - inst > cfg.rob_span as f64;
            let over_mlp = core.window.len() >= cfg.mlp as usize;
            if over_span || over_mlp {
                core.cycle = core.cycle.max(old_done);
                core.window.pop_front();
            } else {
                break;
            }
        }
        core.window.push_back((core.instructions, done));
    }

    if core.cycle_at_target.is_none() && core.instructions >= core.target as f64 {
        // Account for draining the window: the core is done when its last
        // access completes.
        let drain = core
            .window
            .iter()
            .map(|&(_, d)| d)
            .fold(core.cycle, f64::max);
        core.cycle_at_target = Some(drain);
    }
}

/// Walks the cache hierarchy; returns the completion cycle of a
/// long-latency access (`None` for L1 hits and stores, which never block).
fn hierarchy_access(
    cfg: &SimConfig,
    core: &mut CoreSim,
    llc: &mut Cache,
    backend: &mut MemoryBackend,
    addr: u64,
    is_write: bool,
) -> Option<f64> {
    let now = core.cycle;
    let l1 = core.l1.access(addr, is_write);
    if l1.hit {
        return None;
    }
    // L1 dirty victim is absorbed by L2 (write-back, no core latency).
    if let Some(v) = l1.evicted {
        let r = core.l2.access(v.addr, true);
        if let Some(v2) = r.evicted {
            spill_llc(cfg, llc, backend, v2.addr, now);
        }
    }
    let l2 = core.l2.access(addr, is_write);
    if l2.hit {
        return if is_write {
            None
        } else {
            Some(now + cfg.l2_latency as f64)
        };
    }
    if let Some(v2) = l2.evicted {
        spill_llc(cfg, llc, backend, v2.addr, now);
    }
    let l3 = llc.access(addr, is_write);
    if l3.hit {
        return if is_write {
            None
        } else {
            Some(now + cfg.llc_latency as f64)
        };
    }
    if let Some(v3) = l3.evicted {
        backend.access(v3.addr, true, now as u64);
    }
    // Miss (or bypass of a fully locked set): fetch from DRAM.
    let done = backend.access(addr, false, now as u64) as f64 + cfg.llc_latency as f64;
    if is_write {
        // Store misses are absorbed by the write buffer; the line is now
        // allocated, and the core does not wait.
        None
    } else {
        Some(done)
    }
}

/// Writes a dirty LLC-bound victim into the LLC (and onwards to DRAM).
fn spill_llc(_cfg: &SimConfig, llc: &mut Cache, backend: &mut MemoryBackend, addr: u64, now: f64) {
    let r = llc.access(addr, true);
    if let Some(v) = r.evicted {
        backend.access(v.addr, true, now as u64);
    }
    if r.bypassed {
        backend.access(addr, true, now as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::catalog;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            instructions_per_core: 30_000,
            ..SimConfig::isca16()
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = quick_cfg();
        let w = catalog::lu();
        let a = Simulation::run(&cfg, &w, CapacityLoss::None, 7);
        let b = Simulation::run(&cfg, &w, CapacityLoss::None, 7);
        assert_eq!(a.per_core[0].cycles, b.per_core[0].cycles);
        assert_eq!(a.op_counts, b.op_counts);
    }

    #[test]
    fn all_cores_reach_target() {
        let cfg = quick_cfg();
        let r = Simulation::run(&cfg, &catalog::ua(), CapacityLoss::None, 1);
        assert_eq!(r.per_core.len(), 8);
        for c in &r.per_core {
            assert_eq!(c.instructions, 30_000);
            assert!(c.ipc > 0.0 && c.ipc <= cfg.base_ipc);
        }
    }

    #[test]
    fn memory_bound_runs_slower_than_compute_bound() {
        let cfg = quick_cfg();
        let mem = Simulation::run(&cfg, &catalog::dc(), CapacityLoss::None, 1);
        let comp = Simulation::run(&cfg, &catalog::spec_comp(), CapacityLoss::None, 1);
        assert!(
            comp.throughput_ipc() > mem.throughput_ipc(),
            "comp {} vs mem {}",
            comp.throughput_ipc(),
            mem.throughput_ipc()
        );
    }

    /// A scaled-down machine whose LLC-capacity effects show up within a
    /// unit-test-sized run: 512 KiB LLC, a shared hot set filling 7/8 of
    /// it, enough instructions for ~20 reuses per hot line.
    fn capacity_probe() -> (SimConfig, crate::workload::Workload) {
        use crate::workload::{CoreSpec, Pattern, Region, Workload};
        use relaxfault_cache::{CacheConfig, Indexing};
        let cfg = SimConfig {
            llc: CacheConfig {
                size_bytes: 512 << 10,
                ways: 16,
                line_bytes: 64,
                indexing: Indexing::XorFold { rotation: 5 },
            },
            instructions_per_core: 120_000,
            ..SimConfig::isca16()
        };
        let spec = CoreSpec {
            name: "probe".into(),
            mem_ratio: 0.4,
            write_frac: 0.3,
            regions: vec![
                Region {
                    weight: 0.8,
                    bytes: 448 << 10,
                    pattern: Pattern::Random,
                    shared: true,
                },
                Region {
                    weight: 0.2,
                    bytes: 64 << 20,
                    pattern: Pattern::Stream,
                    shared: true,
                },
            ],
        };
        (cfg, Workload::threaded("probe", spec, 8))
    }

    #[test]
    fn losing_ways_never_helps() {
        let (cfg, w) = capacity_probe();
        let full = Simulation::run(&cfg, &w, CapacityLoss::None, 3);
        let cut = Simulation::run(&cfg, &w, CapacityLoss::Ways(8), 3);
        assert!(
            cut.throughput_ipc() < full.throughput_ipc(),
            "halving a saturated LLC must hurt: {} vs {}",
            cut.throughput_ipc(),
            full.throughput_ipc()
        );
        // And DRAM traffic grows when capacity shrinks.
        assert!(cut.op_counts.reads > full.op_counts.reads);
    }

    #[test]
    fn random_lines_cost_less_than_whole_ways() {
        let (cfg, w) = capacity_probe();
        let ways = Simulation::run(&cfg, &w, CapacityLoss::Ways(8), 3);
        let lines = Simulation::run(&cfg, &w, CapacityLoss::RandomLines { bytes: 32 << 10 }, 3);
        assert!(
            lines.throughput_ipc() > ways.throughput_ipc(),
            "32 KiB of scattered lines must cost less than 8 whole ways"
        );
    }

    #[test]
    fn dram_ops_are_counted() {
        let (cfg, w) = capacity_probe();
        let r = Simulation::run(&cfg, &w, CapacityLoss::None, 1);
        assert!(r.op_counts.reads > 0);
        assert!(r.op_counts.writes > 0, "write-backs must reach DRAM");
        assert!(r.op_counts.activates > 0);
        let hit_rate = r.op_counts.row_hit_rate();
        assert!(hit_rate > 0.0 && hit_rate < 1.0, "row hit rate {hit_rate}");
    }
}
