//! Simulation results: IPC, weighted speedup (Equation 2), DRAM power.

use relaxfault_cache::CacheStats;
use relaxfault_dram::{DramEnergy, OpCounts};

/// Per-core outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreStats {
    /// Benchmark name the core ran.
    pub name: String,
    /// Instructions measured.
    pub instructions: u64,
    /// Core cycles to retire them (including drain).
    pub cycles: f64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-core statistics.
    pub per_core: Vec<CoreStats>,
    /// DRAM operations across all channels.
    pub op_counts: OpCounts,
    /// Core cycles until the slowest core finished.
    pub elapsed_cycles: f64,
    /// Core clock, for time conversion.
    pub core_mhz: u32,
    /// Shared-LLC statistics.
    pub llc_stats: CacheStats,
}

impl SimResult {
    /// Total system IPC.
    pub fn throughput_ipc(&self) -> f64 {
        self.per_core.iter().map(|c| c.ipc).sum()
    }

    /// Wall-clock nanoseconds of the run.
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_cycles * 1000.0 / self.core_mhz as f64
    }

    /// DRAM dynamic power in milliwatts under an energy model.
    pub fn dram_dynamic_power_mw(&self, energy: &DramEnergy) -> f64 {
        let ns = self.elapsed_ns().max(1.0);
        energy.dynamic_energy_nj(&self.op_counts) / ns * 1000.0
    }
}

/// Equation 2: weighted speedup against solo IPCs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSpeedup(pub f64);

impl WeightedSpeedup {
    /// Computes `Σ IPC_shared / IPC_alone`, pairing cores positionally.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any solo IPC is non-positive.
    pub fn compute(solo_ipc: &[f64], shared: &SimResult) -> Self {
        assert_eq!(solo_ipc.len(), shared.per_core.len(), "core count mismatch");
        let ws = shared
            .per_core
            .iter()
            .zip(solo_ipc)
            .map(|(c, &alone)| {
                assert!(alone > 0.0, "solo IPC must be positive");
                c.ipc / alone
            })
            .sum();
        WeightedSpeedup(ws)
    }
}

impl std::fmt::Display for WeightedSpeedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// DRAM dynamic power of one configuration relative to a baseline run
/// (the paper's Figure 16 y-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Absolute dynamic power of this run, mW.
    pub power_mw: f64,
    /// Power relative to the baseline, in percent.
    pub relative_pct: f64,
}

impl PowerReport {
    /// Builds the report for `run` against `baseline`.
    pub fn relative(run: &SimResult, baseline: &SimResult, energy: &DramEnergy) -> Self {
        let p = run.dram_dynamic_power_mw(energy);
        let b = baseline.dram_dynamic_power_mw(energy).max(1e-9);
        Self {
            power_mw: p,
            relative_pct: p / b * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipcs: &[f64]) -> SimResult {
        SimResult {
            per_core: ipcs
                .iter()
                .enumerate()
                .map(|(i, &ipc)| CoreStats {
                    name: format!("c{i}"),
                    instructions: 1000,
                    cycles: 1000.0 / ipc,
                    ipc,
                })
                .collect(),
            op_counts: OpCounts {
                activates: 10,
                precharges: 10,
                reads: 100,
                writes: 20,
                refreshes: 0,
            },
            elapsed_cycles: 4000.0,
            core_mhz: 4000,
            llc_stats: CacheStats::default(),
        }
    }

    #[test]
    fn weighted_speedup_identity() {
        let r = result(&[1.0, 0.5]);
        let ws = WeightedSpeedup::compute(&[1.0, 0.5], &r);
        assert!((ws.0 - 2.0).abs() < 1e-12, "each core at its solo speed");
    }

    #[test]
    fn weighted_speedup_degradation() {
        let r = result(&[0.5, 0.25]);
        let ws = WeightedSpeedup::compute(&[1.0, 0.5], &r);
        assert!((ws.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn weighted_speedup_length_check() {
        WeightedSpeedup::compute(&[1.0], &result(&[1.0, 1.0]));
    }

    #[test]
    fn power_report_relative() {
        let a = result(&[1.0]);
        let mut b = result(&[1.0]);
        b.op_counts.reads *= 2;
        let e = DramEnergy::ddr3_1600_x4_rank();
        let rep = PowerReport::relative(&b, &a, &e);
        assert!(rep.relative_pct > 100.0);
        let same = PowerReport::relative(&a, &a, &e);
        assert!((same.relative_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_time_conversion() {
        let r = result(&[1.0]);
        assert!(
            (r.elapsed_ns() - 1000.0).abs() < 1e-9,
            "4000 cycles @ 4 GHz = 1 µs"
        );
    }
}
