//! The simulated system of the paper's Table 3.

use relaxfault_cache::CacheConfig;
use relaxfault_dram::{DdrTiming, DramConfig, DramEnergy};

/// How much LLC capacity repair has taken (the paper's Figure 15 sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityLoss {
    /// Full LLC (no repair).
    None,
    /// `n` ways locked in every set (the paper's pessimistic methodology).
    Ways(u32),
    /// `bytes` of randomly placed locked lines, at most one way per set
    /// (the paper's 100 KiB LULESH Monte Carlo experiment).
    RandomLines {
        /// Total locked bytes.
        bytes: u64,
    },
}

impl CapacityLoss {
    /// Label used in the figure output.
    pub fn label(&self) -> String {
        match self {
            CapacityLoss::None => "No repair".into(),
            CapacityLoss::Ways(n) => format!("{n}-way"),
            CapacityLoss::RandomLines { bytes } => format!("{}KiB(1-way)", bytes / 1024),
        }
    }
}

/// Table 3: simulated system parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Core count.
    pub cores: u32,
    /// Core clock in MHz (4 GHz).
    pub core_mhz: u32,
    /// Retired instructions per cycle when nothing stalls (4-way OOO).
    pub base_ipc: f64,
    /// Maximum in-flight long-latency accesses per core (MSHRs / MLP).
    pub mlp: u32,
    /// Instructions the OOO window can slide past a blocked oldest miss.
    pub rob_span: u64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L1 hit latency in core cycles.
    pub l1_latency: u32,
    /// Private L2.
    pub l2: CacheConfig,
    /// L2 hit latency in core cycles.
    pub l2_latency: u32,
    /// Shared LLC.
    pub llc: CacheConfig,
    /// LLC hit latency in core cycles.
    pub llc_latency: u32,
    /// DRAM organization (2 channels × 2 ranks × 8 banks).
    pub dram: DramConfig,
    /// DDR3 timing.
    pub timing: DdrTiming,
    /// Per-operation DRAM energy.
    pub energy: DramEnergy,
    /// Instructions each core must retire.
    pub instructions_per_core: u64,
}

impl SimConfig {
    /// The paper's Table 3 system.
    pub fn isca16() -> Self {
        Self {
            cores: 8,
            core_mhz: 4000,
            base_ipc: 2.0,
            mlp: 8,
            rob_span: 192,
            l1: CacheConfig::isca16_l1(),
            l1_latency: 3,
            l2: CacheConfig::isca16_l2(),
            l2_latency: 8,
            llc: CacheConfig::isca16_llc(),
            llc_latency: 30,
            dram: DramConfig::isca16_performance(),
            timing: DdrTiming::ddr3_1600(),
            energy: DramEnergy::ddr3_1600_x4_rank(),
            instructions_per_core: 1_000_000,
        }
    }

    /// Core cycles per DRAM command cycle (4 GHz / 800 MHz = 5).
    pub fn core_cycles_per_dram_cycle(&self) -> u64 {
        (self.core_mhz / self.timing.clock_mhz) as u64
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate()?;
        self.l2.validate()?;
        self.llc.validate()?;
        self.dram.validate()?;
        self.timing.validate()?;
        if self.cores == 0 || self.mlp == 0 || self.base_ipc <= 0.0 {
            return Err("cores, mlp, and base_ipc must be positive".into());
        }
        if !self.core_mhz.is_multiple_of(self.timing.clock_mhz) {
            return Err("core clock must be an integer multiple of the DRAM clock".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_system_is_valid() {
        let c = SimConfig::isca16();
        c.validate().unwrap();
        assert_eq!(c.cores, 8);
        assert_eq!(c.core_cycles_per_dram_cycle(), 5);
        assert_eq!(c.llc.size_bytes, 8 << 20);
        assert_eq!(c.dram.channels, 2);
    }

    #[test]
    fn validate_catches_clock_mismatch() {
        let mut c = SimConfig::isca16();
        c.core_mhz = 3900;
        assert!(c.validate().is_err());
    }

    #[test]
    fn loss_labels() {
        assert_eq!(CapacityLoss::None.label(), "No repair");
        assert_eq!(CapacityLoss::Ways(4).label(), "4-way");
        assert_eq!(
            CapacityLoss::RandomLines { bytes: 102_400 }.label(),
            "100KiB(1-way)"
        );
    }
}
