//! Cycle-approximate multicore performance and DRAM-power simulation
//! (paper §4.2, Figures 15 and 16).
//!
//! The paper measures RelaxFault's performance impact by removing LLC
//! capacity — whole ways per set, or 100 KiB of randomly placed lines —
//! and running memory-intensive multi-threaded (NPB, LULESH) and
//! multi-programmed (SPEC CPU2006) workloads on a simulated 8-core system
//! (Table 3). What those experiments exercise is *LLC-capacity
//! sensitivity*: how throughput (weighted speedup) and DRAM dynamic power
//! respond when repair locks cache lines.
//!
//! MacSim, SPEC binaries, and SimPoint checkpoints are not reproducible
//! offline, so this crate substitutes *synthetic workload models* named
//! after Table 4's benchmarks (see `DESIGN.md` §1). Each model is a
//! parameterized address-stream generator (hot reuse set, streaming scans,
//! random pointer chasing) whose footprint and intensity are chosen to
//! reproduce the qualitative property the paper reports — e.g. LULESH's
//! shared hot working set barely exceeds the LLC when four ways are
//! locked, so it is the one benchmark that degrades.
//!
//! The machine model is honest where it matters for these figures and
//! simplified where it does not (documented in [`machine`]): private
//! L1/L2, a shared hashed 16-way LLC with way/line locking, a per-channel
//! open-page memory controller driving bit-exact DDR3-1600 bank timing
//! from `relaxfault-dram`, limited-MLP out-of-order cores, and TN-41-01
//! energy accounting.
//!
//! # Examples
//!
//! ```
//! use relaxfault_perfsim::{CapacityLoss, SimConfig, Simulation};
//! use relaxfault_perfsim::workload::catalog;
//!
//! let cfg = SimConfig { instructions_per_core: 20_000, ..SimConfig::isca16() };
//! let full = Simulation::run(&cfg, &catalog::lulesh(), CapacityLoss::None, 1);
//! assert!(full.throughput_ipc() > 0.0);
//! ```

pub mod config;
pub mod machine;
pub mod metrics;
pub mod workload;

pub use config::{CapacityLoss, SimConfig};
pub use machine::Simulation;
pub use metrics::{PowerReport, SimResult, WeightedSpeedup};
pub use workload::{CoreSpec, Region, Workload};
