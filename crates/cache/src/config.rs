//! Cache geometry and set-index functions.

use relaxfault_util::bits::{bits_for, mask};

/// How a block address maps to a set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indexing {
    /// Classic contiguous mapping: `set = addr[offset .. offset+set_bits]`
    /// (paper Figure 7b).
    Canonical,
    /// XOR-folded set index (González et al.): every `set_bits`-wide chunk
    /// of the tag is rotated left by `rotation × chunk_number` and XORed
    /// into the canonical index. A nonzero rotation keeps the fold from
    /// cancelling against low tag bits that alias index bits, which is what
    /// lets one-device row *and* column faults spread across sets — the
    /// effect the paper's Figure 8 measures.
    XorFold {
        /// Per-chunk left-rotation step, in bits.
        rotation: u32,
    },
}

/// Geometry and indexing of one cache level.
///
/// # Examples
///
/// ```
/// use relaxfault_cache::CacheConfig;
/// let llc = CacheConfig::isca16_llc();
/// assert_eq!(llc.sets(), 8192);
/// assert_eq!(llc.set_bits(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Set-index function.
    pub indexing: Indexing,
}

impl CacheConfig {
    /// The paper's LLC: 8 MiB, 16-way, 64 B lines, XOR-hashed set index
    /// (the paper applies set-address hashing "when evaluating the repair
    /// mechanisms in detail").
    pub fn isca16_llc() -> Self {
        Self {
            size_bytes: 8 << 20,
            ways: 16,
            line_bytes: 64,
            indexing: Indexing::XorFold { rotation: 5 },
        }
    }

    /// The paper's LLC with canonical (unhashed) indexing, for the
    /// Figure 8 comparison.
    pub fn isca16_llc_no_hash() -> Self {
        Self {
            indexing: Indexing::Canonical,
            ..Self::isca16_llc()
        }
    }

    /// Table 3 L1 data cache: 32 KiB, 8-way, 64 B lines.
    pub fn isca16_l1() -> Self {
        Self {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            indexing: Indexing::Canonical,
        }
    }

    /// Table 3 private L2: 128 KiB, 8-way, 64 B lines.
    pub fn isca16_l2() -> Self {
        Self {
            size_bytes: 128 << 10,
            ways: 8,
            line_bytes: 64,
            indexing: Indexing::Canonical,
        }
    }

    /// Checks structural invariants (powers of two, exact division).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line_bytes must be a power of two, got {}",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".into());
        }
        let line_cap = self.line_bytes as u64 * self.ways as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(line_cap) {
            return Err(format!(
                "size {} is not a multiple of ways×line ({line_cap})",
                self.size_bytes
            ));
        }
        let sets = self.size_bytes / line_cap;
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Width of the set index in bits.
    pub fn set_bits(&self) -> u32 {
        bits_for(self.sets())
    }

    /// Width of the line offset in bits.
    pub fn offset_bits(&self) -> u32 {
        bits_for(self.line_bytes as u64)
    }

    /// Total lines in the cache.
    pub fn total_lines(&self) -> u64 {
        self.sets() * self.ways as u64
    }

    /// Splits a byte address into `(set, tag)` under this config's indexing.
    ///
    /// The tag is the full block address above the set-index field
    /// (canonically `addr >> (offset+set)` bits); with XOR folding the set
    /// changes but the tag does not, so the pair remains unique per block.
    pub fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        let block = addr >> self.offset_bits();
        let sb = self.set_bits();
        let index = block & mask(sb);
        let tag = block >> sb;
        let set = match self.indexing {
            Indexing::Canonical => index,
            Indexing::XorFold { rotation } => {
                let mut set = index;
                let mut rest = tag;
                let mut chunk_no = 1u32;
                while rest != 0 {
                    let chunk = rest & mask(sb);
                    set ^= rotl(chunk, (rotation * chunk_no) % sb.max(1), sb);
                    rest >>= sb;
                    chunk_no += 1;
                }
                set
            }
        };
        (set, tag)
    }

    /// The set an address maps to.
    pub fn set_of(&self, addr: u64) -> u64 {
        self.set_and_tag(addr).0
    }
}

/// Rotates the low `width` bits of `v` left by `by`.
fn rotl(v: u64, by: u32, width: u32) -> u64 {
    if width == 0 || by.is_multiple_of(width) {
        return v & mask(width);
    }
    let by = by % width;
    ((v << by) | (v >> (width - by))) & mask(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::prop;
    use relaxfault_util::{prop_assert, prop_assert_eq};
    use std::collections::HashSet;

    #[test]
    fn llc_geometry() {
        let c = CacheConfig::isca16_llc();
        c.validate().unwrap();
        assert_eq!(c.sets(), 8192);
        assert_eq!(c.set_bits(), 13);
        assert_eq!(c.offset_bits(), 6);
        assert_eq!(c.total_lines(), 131072);
    }

    #[test]
    fn l1_l2_validate() {
        CacheConfig::isca16_l1().validate().unwrap();
        CacheConfig::isca16_l2().validate().unwrap();
        assert_eq!(CacheConfig::isca16_l1().sets(), 64);
        assert_eq!(CacheConfig::isca16_l2().sets(), 256);
    }

    #[test]
    fn validate_rejects_bad_sizes() {
        let mut c = CacheConfig::isca16_llc();
        c.size_bytes = 1000;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::isca16_llc();
        c.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::isca16_llc();
        c.ways = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn canonical_set_is_address_slice() {
        let c = CacheConfig::isca16_llc_no_hash();
        let addr = 0b1011_0101_1100_1010_1100_0000u64;
        let (set, _) = c.set_and_tag(addr);
        assert_eq!(set, (addr >> 6) & 0x1FFF);
    }

    #[test]
    fn hashed_and_canonical_share_tags() {
        let a = 0xDEAD_BEE0u64;
        let (_, t1) = CacheConfig::isca16_llc().set_and_tag(a);
        let (_, t2) = CacheConfig::isca16_llc_no_hash().set_and_tag(a);
        assert_eq!(t1, t2);
    }

    #[test]
    fn xor_fold_spreads_row_varying_addresses() {
        // 512 addresses differing only in bits 19.. (a one-device column
        // fault under the DRAM layout) collapse to one set canonically but
        // spread out with folding.
        let hashed = CacheConfig::isca16_llc();
        let plain = CacheConfig::isca16_llc_no_hash();
        let base = 0x3_0000_1000u64;
        let hashed_sets: HashSet<u64> = (0..512).map(|r| hashed.set_of(base | (r << 20))).collect();
        let plain_sets: HashSet<u64> = (0..512).map(|r| plain.set_of(base | (r << 20))).collect();
        assert_eq!(plain_sets.len(), 1);
        assert_eq!(hashed_sets.len(), 512);
    }

    #[test]
    fn rotl_behaviour() {
        assert_eq!(rotl(0b01, 1, 2), 0b10);
        assert_eq!(rotl(0b10, 1, 2), 0b01);
        assert_eq!(rotl(0b1, 0, 4), 0b1);
        assert_eq!(rotl(0b1000, 1, 4), 0b0001);
    }

    #[test]
    fn set_tag_identifies_block() {
        prop::check(256, |src| {
            let a = src.u64(0, (1u64 << 36) - 1);
            let b = src.u64(0, (1u64 << 36) - 1);
            let c = CacheConfig::isca16_llc();
            let block_a = a >> 6;
            let block_b = b >> 6;
            let sa = c.set_and_tag(a);
            let sb = c.set_and_tag(b);
            // (set, tag) is unique per block and constant within a block.
            prop_assert_eq!(block_a == block_b, sa == sb);
            Ok(())
        });
    }

    #[test]
    fn set_in_range() {
        prop::check(256, |src| {
            let a = src.u64(0, u64::MAX);
            let c = CacheConfig::isca16_llc();
            prop_assert!(c.set_of(a) < c.sets());
            Ok(())
        });
    }
}
