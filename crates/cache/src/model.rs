//! The runtime cache model: LRU, dirty state, locked repair lines.

use crate::config::CacheConfig;

/// Outcome of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the block was resident.
    pub hit: bool,
    /// On a miss that allocated over a valid dirty line, the evicted victim.
    pub evicted: Option<Evicted>,
    /// On a miss in a set whose ways are all locked, the access bypasses the
    /// cache (no allocation).
    pub bypassed: bool,
}

/// A victim written back on eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Byte address of the victim block (reconstructable because the model
    /// stores full block addresses).
    pub addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

/// Aggregate access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses that could not allocate (fully locked set).
    pub bypasses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate over all demand accesses (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    locked: bool,
    /// RelaxFault-indicator bit (Figure 4): repair lines live in a separate
    /// tag space and never match normal lookups.
    repair: bool,
    /// Full block address (so victims can be reported by address).
    block_addr: u64,
    lru: u64,
}

/// A set-associative cache with LRU replacement, way locking, and a
/// RelaxFault tag space.
///
/// Normal accesses go through [`Cache::access`]; repair lines are installed
/// with [`Cache::lock_repair_line`] and looked up with
/// [`Cache::probe_repair`]. A repair line never hits a normal access and
/// vice versa — the one-bit tag extension of the paper's Figure 4.
///
/// # Examples
///
/// ```
/// use relaxfault_cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::isca16_l1());
/// c.access(0x80, true);
/// let r = c.access(0x80, false);
/// assert!(r.hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid CacheConfig");
        Self {
            cfg,
            lines: vec![Line::default(); cfg.total_lines() as usize],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_slice(&self, set: u64) -> std::ops::Range<usize> {
        let base = set as usize * self.cfg.ways as usize;
        base..base + self.cfg.ways as usize
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Demand access to a byte address; allocates on miss (LRU victim among
    /// unlocked ways). Returns hit/miss, any dirty victim, and whether the
    /// access had to bypass a fully locked set.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        let (set, _tag) = self.cfg.set_and_tag(addr);
        let block = addr >> self.cfg.offset_bits();
        let range = self.set_slice(set);
        let tick = self.next_tick();

        // Hit path: match on block address with the repair bit clear.
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.valid && !line.repair && line.block_addr == block {
                line.lru = tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return Access {
                    hit: true,
                    evicted: None,
                    bypassed: false,
                };
            }
        }
        self.stats.misses += 1;

        // Victim: invalid first, else LRU among unlocked.
        let mut victim: Option<usize> = None;
        for i in range.clone() {
            let line = &self.lines[i];
            if line.locked {
                continue;
            }
            if !line.valid {
                victim = Some(i);
                break;
            }
            match victim {
                Some(v) if self.lines[v].lru <= line.lru => {}
                _ => victim = Some(i),
            }
        }
        let Some(v) = victim else {
            self.stats.bypasses += 1;
            return Access {
                hit: false,
                evicted: None,
                bypassed: true,
            };
        };
        let old = self.lines[v];
        let evicted = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            Some(Evicted {
                addr: old.block_addr << self.cfg.offset_bits(),
                dirty: true,
            })
        } else {
            None
        };
        self.lines[v] = Line {
            valid: true,
            dirty: write,
            locked: false,
            repair: false,
            block_addr: block,
            lru: tick,
        };
        Access {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Whether a normal block is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, _) = self.cfg.set_and_tag(addr);
        let block = addr >> self.cfg.offset_bits();
        self.set_slice(set).any(|i| {
            let l = &self.lines[i];
            l.valid && !l.repair && l.block_addr == block
        })
    }

    /// Whether a repair-space line is resident (no state change).
    ///
    /// `repair_addr` is an address in the RelaxFault repair space (built by
    /// `relaxfault-core`'s mapping); it is matched only against lines whose
    /// RelaxFault indicator is set.
    pub fn probe_repair(&self, repair_addr: u64) -> bool {
        let (set, _) = self.cfg.set_and_tag(repair_addr);
        let block = repair_addr >> self.cfg.offset_bits();
        self.set_slice(set).any(|i| {
            let l = &self.lines[i];
            l.valid && l.repair && l.block_addr == block
        })
    }

    /// Installs a locked repair line for `repair_addr`, evicting the LRU
    /// unlocked way of its set if needed. Returns the dirty victim, if any.
    ///
    /// # Errors
    ///
    /// Fails if every way of the set is already locked, or the line is
    /// already present.
    pub fn lock_repair_line(&mut self, repair_addr: u64) -> Result<Option<Evicted>, String> {
        if self.probe_repair(repair_addr) {
            return Err(format!("repair line {repair_addr:#x} already locked"));
        }
        let (set, _) = self.cfg.set_and_tag(repair_addr);
        let block = repair_addr >> self.cfg.offset_bits();
        let range = self.set_slice(set);
        let tick = self.next_tick();
        let mut victim: Option<usize> = None;
        for i in range {
            let line = &self.lines[i];
            if line.locked {
                continue;
            }
            if !line.valid {
                victim = Some(i);
                break;
            }
            match victim {
                Some(v) if self.lines[v].lru <= line.lru => {}
                _ => victim = Some(i),
            }
        }
        let Some(v) = victim else {
            return Err(format!("set {set} fully locked"));
        };
        let old = self.lines[v];
        let evicted = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            Some(Evicted {
                addr: old.block_addr << self.cfg.offset_bits(),
                dirty: true,
            })
        } else {
            None
        };
        self.lines[v] = Line {
            valid: true,
            dirty: false,
            locked: true,
            repair: true,
            block_addr: block,
            lru: tick,
        };
        Ok(evicted)
    }

    /// Locks `n` ways in every set (marks them unavailable for normal
    /// allocation), emulating repair occupancy the way the paper's
    /// performance study does.
    ///
    /// # Panics
    ///
    /// Panics if `n > ways`.
    pub fn lock_ways_per_set(&mut self, n: u32) {
        assert!(n <= self.cfg.ways, "cannot lock more ways than exist");
        let sets = self.cfg.sets();
        for set in 0..sets {
            let mut locked = 0;
            for i in self.set_slice(set) {
                if locked >= n {
                    break;
                }
                if !self.lines[i].locked {
                    self.lines[i] = Line {
                        valid: true,
                        dirty: false,
                        locked: true,
                        repair: true,
                        block_addr: u64::MAX - i as u64, // placeholder tag
                        lru: 0,
                    };
                    locked += 1;
                }
            }
        }
    }

    /// Locks one way in each of `line_count` distinct sets chosen by a
    /// caller-supplied selector (the paper's "randomly assign 100 KiB"
    /// experiment passes a random set sequence).
    ///
    /// Returns how many lines were actually locked (a set already saturated
    /// with locks is skipped).
    pub fn lock_lines_in_sets<I: IntoIterator<Item = u64>>(&mut self, sets: I) -> u64 {
        let mut locked = 0;
        for set in sets {
            let set = set % self.cfg.sets();
            let slot = self.set_slice(set).find(|&i| !self.lines[i].locked);
            if let Some(i) = slot {
                self.lines[i] = Line {
                    valid: true,
                    dirty: false,
                    locked: true,
                    repair: true,
                    block_addr: u64::MAX - i as u64,
                    lru: 0,
                };
                locked += 1;
            }
        }
        locked
    }

    /// Number of locked ways in `set`.
    pub fn locked_ways_in_set(&self, set: u64) -> u32 {
        self.set_slice(set)
            .filter(|&i| self.lines[i].locked)
            .count() as u32
    }

    /// Total locked lines in the cache.
    pub fn total_locked(&self) -> u64 {
        self.lines.iter().filter(|l| l.locked).count() as u64
    }

    /// Unlocks and invalidates every locked line (repair teardown).
    pub fn unlock_all(&mut self) {
        for line in &mut self.lines {
            if line.locked {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Indexing;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4096, // 16 sets × 4 ways × 64 B
            ways: 4,
            line_bytes: 64,
            indexing: Indexing::Canonical,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same line, different byte");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // 5 conflicting blocks in a 4-way set (set 0: addresses k*16*64).
        let addrs: Vec<u64> = (0..5).map(|k| k * 16 * 64).collect();
        for &a in &addrs[..4] {
            c.access(a, false);
        }
        c.access(addrs[0], false); // refresh block 0
        c.access(addrs[4], false); // evicts block 1 (oldest)
        assert!(c.probe(addrs[0]));
        assert!(!c.probe(addrs[1]));
        assert!(c.probe(addrs[4]));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let addrs: Vec<u64> = (0..5).map(|k| k * 16 * 64).collect();
        c.access(addrs[0], true); // dirty
        for &a in &addrs[1..4] {
            c.access(a, false);
        }
        let r = c.access(addrs[4], false);
        assert_eq!(
            r.evicted,
            Some(Evicted {
                addr: addrs[0],
                dirty: true
            })
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn repair_lines_do_not_match_normal_lookups() {
        let mut c = small();
        c.lock_repair_line(0x2000).unwrap();
        assert!(c.probe_repair(0x2000));
        assert!(!c.probe(0x2000), "repair bit isolates the tag space");
        assert!(!c.access(0x2000, false).hit);
        // And the normal line now coexists with the repair line.
        assert!(c.probe(0x2000));
        assert!(c.probe_repair(0x2000));
    }

    #[test]
    fn locked_lines_survive_pressure() {
        let mut c = small();
        c.lock_repair_line(0).unwrap();
        // Hammer the same set with conflicting normal blocks.
        for k in 0..64 {
            c.access(k * 16 * 64, true);
        }
        assert!(c.probe_repair(0));
        assert_eq!(c.locked_ways_in_set(0), 1);
    }

    #[test]
    fn fully_locked_set_bypasses() {
        let mut c = small();
        for k in 0..4 {
            // 4 distinct repair blocks landing in set 0.
            c.lock_repair_line(k * 16 * 64).unwrap();
        }
        let r = c.access(0, false);
        assert!(!r.hit);
        assert!(r.bypassed);
        assert_eq!(c.stats().bypasses, 1);
        // A fifth lock in the same set must fail.
        assert!(c.lock_repair_line(4 * 16 * 64).is_err());
    }

    #[test]
    fn duplicate_repair_lock_fails() {
        let mut c = small();
        c.lock_repair_line(0x40).unwrap();
        assert!(c.lock_repair_line(0x40).is_err());
    }

    #[test]
    fn lock_ways_per_set_reduces_capacity() {
        let mut c = small();
        c.lock_ways_per_set(1);
        assert_eq!(c.total_locked(), 16);
        for set in 0..16 {
            assert_eq!(c.locked_ways_in_set(set), 1);
        }
        // Still functions as a 3-way cache.
        let addrs: Vec<u64> = (0..3).map(|k| k * 16 * 64).collect();
        for &a in &addrs {
            c.access(a, false);
        }
        assert!(addrs.iter().all(|&a| c.probe(a)));
    }

    #[test]
    fn lock_lines_in_sets_counts() {
        let mut c = small();
        let n = c.lock_lines_in_sets([0u64, 1, 2, 0, 0, 0, 0]);
        // Set 0 saturates at 4 ways; 3 extra requests are dropped.
        assert_eq!(n, 6);
        assert_eq!(c.locked_ways_in_set(0), 4);
    }

    #[test]
    fn unlock_all_restores_capacity() {
        let mut c = small();
        c.lock_ways_per_set(4);
        assert!(c.access(0, false).bypassed);
        c.unlock_all();
        assert_eq!(c.total_locked(), 0);
        assert!(!c.access(0, false).bypassed);
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(64 * 16, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::Indexing;
    use relaxfault_util::prop;
    use relaxfault_util::{prop_assert, prop_assert_eq};

    /// Whatever the access pattern, structural invariants hold: lines
    /// per set never exceed associativity, stats balance, and locked
    /// lines survive.
    #[test]
    fn structural_invariants() {
        prop::check(48, |src| {
            let addrs = src.vec(1, 399, |s| (s.u64(0, (1 << 20) - 1), s.bool()));
            let locked_sets = src.vec(0, 7, |s| s.u64(0, 15));
            let cfg = CacheConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
                indexing: Indexing::XorFold { rotation: 3 },
            };
            let mut c = Cache::new(cfg);
            let locked = c.lock_lines_in_sets(locked_sets.iter().copied());
            for &(a, w) in &addrs {
                let r = c.access(a, w);
                // A bypass can only happen in a fully locked set.
                if r.bypassed {
                    prop_assert_eq!(c.locked_ways_in_set(cfg.set_of(a)), cfg.ways);
                }
            }
            prop_assert_eq!(c.total_locked(), locked);
            let s = *c.stats();
            prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
            prop_assert!(s.bypasses <= s.misses);
            // Re-access of the most recent address must hit unless its set
            // is fully locked.
            let (last, _) = addrs[addrs.len() - 1];
            if c.locked_ways_in_set(cfg.set_of(last)) < cfg.ways {
                prop_assert!(c.probe(last));
            }
            Ok(())
        });
    }

    /// LRU is a permutation policy: filling a set with exactly `ways`
    /// distinct blocks keeps them all resident.
    #[test]
    fn full_set_retention() {
        prop::check(48, |src| {
            let base = src.u64(0, 15);
            let cfg = CacheConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
                indexing: Indexing::Canonical,
            };
            let mut c = Cache::new(cfg);
            let addrs: Vec<u64> = (0..4).map(|k| (base + k * 16) * 64).collect();
            for &a in &addrs {
                c.access(a, false);
            }
            for &a in &addrs {
                prop_assert!(c.probe(a));
            }
            Ok(())
        });
    }
}
