//! Set-associative cache model with lockable lines and XOR set-index
//! hashing.
//!
//! The last-level cache is RelaxFault's repair substrate: repaired DRAM data
//! lives in *locked* LLC lines tagged with a one-bit RelaxFault indicator
//! (paper Figure 4), found through either the normal physical-address
//! mapping (Figure 7b) or the dedicated repair mapping (Figure 7c, built in
//! `relaxfault-core`). This crate provides:
//!
//! * [`CacheConfig`] / [`Indexing`] — geometry plus the set-index function,
//!   canonical or XOR-folded (González et al.), whose linear structure
//!   decides whether a fault's repair lines collide in a set;
//! * [`Cache`] — a metadata cache (valid/dirty/locked/repair/LRU) used by
//!   the performance simulator and the repair data-path tests, including
//!   way-locking to emulate capacity lost to repair.
//!
//! # Examples
//!
//! ```
//! use relaxfault_cache::{Cache, CacheConfig};
//!
//! let mut llc = Cache::new(CacheConfig::isca16_llc());
//! let a = 0x4000;
//! assert!(!llc.access(a, false).hit);   // cold miss
//! assert!(llc.access(a, false).hit);    // now resident
//! ```

pub mod config;
pub mod model;

pub use config::{CacheConfig, Indexing};
pub use model::{Access, Cache, CacheStats, Evicted};
