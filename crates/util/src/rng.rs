//! Deterministic pseudo-random generation with zero external dependencies.
//!
//! The workspace's Monte Carlo results are validated against published
//! numbers, so the RNG must be (a) fully specified in-repo and (b) stable
//! across platforms and releases. Two well-known generators provide that:
//!
//! * [`SplitMix64`] — Vigna's 64-bit mixer, used only for seeding (it turns
//!   any `u64` into a full 256-bit state without correlations);
//! * [`Xoshiro256StarStar`] — Vigna & Blackman's xoshiro256\*\*, the
//!   workhorse generator (period 2^256 − 1, passes BigCrush).
//!
//! Both are checked against the reference implementations' published output
//! vectors in this module's tests, so a port or refactor cannot silently
//! change every experiment in the repo.
//!
//! The [`Rng`] trait exposes exactly the narrow surface the codebase uses
//! (`gen`, `gen_bool`, `gen_range`), mirroring the subset of `rand::Rng`
//! the original implementation relied on.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::rng::{Rng, Rng64};
//!
//! let mut rng = Rng64::seed_from_u64(7);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.gen_range(0..6u32);
//! assert!(d < 6);
//! ```

/// Vigna's SplitMix64: a tiny, statistically solid 64-bit generator used
/// here to expand one seed word into generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts the stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix of a tuple, for deriving independent
/// counter-based streams from `(seed, counter, stream)` without
/// constructing a generator.
pub fn mix64(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\*: the workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default generator type (alias kept short because it
/// appears in every simulator signature).
pub type Rng64 = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Builds a generator from full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one inadmissible state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be nonzero"
        );
        Self { s }
    }

    /// Expands one seed word into state via SplitMix64, per the generator
    /// authors' recommendation. Every distinct seed yields an unrelated
    /// stream; this is the only constructor the simulators use.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so all-zero state has
        // probability 2^-256; the assert in from_state still guards it.
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }
}

/// The *first* output of `Rng64::seed_from_u64(seed)` without building
/// the generator: xoshiro256\*\*'s first result reads only `s[1]` (the
/// second SplitMix64 expansion draw), so two mixer steps and the star-star
/// scrambler suffice. The bit-sliced trial kernel uses this to test a
/// whole block's zero-fault gates without constructing any generator
/// state; `tests::first_u64_matches_full_construction` pins the identity.
pub fn first_u64_from_seed(seed: u64) -> u64 {
    let mut sm = SplitMix64::new(seed);
    sm.next_u64();
    let s1 = sm.next_u64();
    s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9)
}

/// The integer threshold `t` such that, for any generator output `u`,
/// `(u >> 11) < t` holds exactly when the canonical `f64` conversion of
/// `u` (see [`FromRng`] for `f64`) is `< p`. In other words:
/// `u64_is_below(u, unit_f64_threshold(p)) == (f64-from-u < p)` bit for
/// bit, with no floating point on the comparison path.
///
/// Why this is exact: the f64 draw is `(u >> 11) · 2⁻⁵³`, a 53-bit
/// integer scaled by a power of two — both the product and `p · 2⁵³` are
/// computed exactly in f64 (no rounding), so the float compare is an
/// integer compare against `⌈p · 2⁵³⌉`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn unit_f64_threshold(p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "threshold probability {p} not in [0, 1]"
    );
    (p * (1u64 << 53) as f64).ceil() as u64
}

/// Whether generator output `u` falls below a [`unit_f64_threshold`] —
/// the float-free form of `f64::from_rng(..) < p`.
#[inline]
pub fn u64_is_below(u: u64, threshold: u64) -> bool {
    (u >> 11) < threshold
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The narrow random-value interface the simulators are written against.
///
/// Any type producing uniform `u64`s gets `gen` / `gen_bool` / `gen_range`
/// for free; the derivations are fixed here so results are reproducible
/// bit-for-bit on every platform.
pub trait Rng {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T` (see [`FromRng`] for each type's recipe).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::from_rng(self) < p
    }

    /// A uniform value in `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`), unbiased via Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        B::sample(range, self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a fixed recipe for deriving a uniform value from `u64`s.
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits (the full mantissa).
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform `u64` in `[0, span)` (`span == 0` means the full domain), by
/// Lemire's multiply-shift with rejection — exact, and one multiply in the
/// common case.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform member of the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Span may overflow $t (e.g. 0..=MAX); widen to u64 where
                // the full-domain case is span == 0 by wrapping.
                let span = (hi - lo) as u64 + 1; // == 0 iff full u64 domain
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, usize);

// u64 needs its own inclusive impl: `hi - lo + 1` overflows on the full
// domain, which must map to span == 0.
impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo.wrapping_add(uniform_u64(rng, (hi - lo).wrapping_add(1)))
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    /// Output of Vigna's reference `splitmix64.c` for seed 0 — the widely
    /// published test vector.
    #[test]
    fn splitmix64_known_answers_seed0() {
        let mut sm = SplitMix64::new(0);
        let expected = [
            0xE220A8397B1DCDAF_u64,
            0x6E789E6AA1B965F4,
            0x06C45D188009454F,
            0xF88BB8A8724C81EC,
            0x1B39896A51A8749B,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    /// Reference `splitmix64.c` output for seed 1234567.
    #[test]
    fn splitmix64_known_answers_seed1234567() {
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            0x599ED017FB08FC85_u64,
            0x2C73F08458540FA5,
            0x883EBCE5A3F27C77,
            0x3FBEF740E9177B3F,
            0xE3B8346708CB5ECD,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    /// Output of the reference `xoshiro256starstar.c` from state
    /// [1, 2, 3, 4] — the vector used by every faithful port.
    #[test]
    fn xoshiro_known_answers() {
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [
            11520_u64,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// seed_from_u64 is SplitMix64 state expansion followed by the
    /// reference update (checked against an independent implementation).
    #[test]
    fn seed_from_u64_composition() {
        let mut rng = Rng64::seed_from_u64(42);
        let expected = [
            1546998764402558742_u64,
            6990951692964543102,
            12544586762248559009,
            17057574109182124193,
            18295552978065317476,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // Same seed reproduces exactly.
        let mut c = Rng64::seed_from_u64(1);
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vc);
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = Rng64::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 500, "count {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
            let w = rng.gen_range(10u64..11);
            assert_eq!(w, 10);
        }
        // Signed ranges.
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_every_member_of_small_ranges() {
        let mut rng = Rng64::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0u32..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..1000 {
            seen_inc[rng.gen_range(0u32..=2) as usize] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = Rng64::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng64::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn full_u64_domain_inclusive_range() {
        let mut rng = Rng64::seed_from_u64(23);
        // Must not panic or loop; spans the wrap-around span == 0 path.
        for _ in 0..10 {
            let _ = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn first_u64_matches_full_construction() {
        for seed in (0..500u64).chain([u64::MAX, 0xDEAD_BEEF, 1 << 63]) {
            let mut rng = Rng64::seed_from_u64(seed);
            assert_eq!(first_u64_from_seed(seed), rng.next_u64(), "seed {seed}");
        }
    }

    #[test]
    fn unit_threshold_matches_float_compare() {
        // The integer gate must agree with the canonical f64 compare for
        // every (draw, probability) pair — including boundary mantissas.
        let probs = [
            0.0,
            1.0,
            0.5,
            0.25,
            1e-12,
            1.0 - 1e-12,
            0.8741,
            f64::from_bits(0x3FE5_5555_5555_5555), // ~2/3, odd mantissa
        ];
        let mut rng = Rng64::seed_from_u64(0x7157);
        for p in probs {
            let t = unit_f64_threshold(p);
            for _ in 0..2000 {
                let u = rng.next_u64();
                let f = (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(u64_is_below(u, t), f < p, "p={p} u={u:#x}");
            }
            // Exact boundary draws: mantissa at, just below, just above t.
            for m in [t.saturating_sub(1), t, t + 1] {
                let u = (m.min((1 << 53) - 1)) << 11;
                let f = (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(u64_is_below(u, t), f < p, "p={p} boundary {m}");
            }
        }
        assert_eq!(unit_f64_threshold(0.0), 0);
        assert_eq!(unit_f64_threshold(1.0), 1 << 53);
    }

    #[test]
    fn mix64_disperses_tuples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0..64u64 {
            for b in 0..64u64 {
                seen.insert(mix64(99, a, b));
            }
        }
        assert_eq!(seen.len(), 64 * 64, "no collisions over a small grid");
        assert_ne!(mix64(1, 2, 3), mix64(2, 2, 3));
    }
}
