//! Exporters from the observability model to external tool formats.
//!
//! Two sinks, both produced by the in-repo JSON/text code with zero new
//! dependencies:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (an array of `"ph": "X"`
//!   complete events), loadable in Perfetto (<https://ui.perfetto.dev>)
//!   or `chrome://tracing`. Wall-clock timestamps would make the file
//!   differ run to run and thread count to thread count, so the exporter
//!   instead uses the *deterministic* merged order from
//!   [`obs::drain_events`]: each event's `ts` is its index in the merged
//!   `(trial, group, seq)` stream, and each `(trial, group)` scope is its
//!   own track (`tid`). Two runs of the same seed produce byte-identical
//!   traces.
//! * [`prometheus_text`] — Prometheus text exposition (version 0.0.4) for
//!   every registered counter, gauge, and histogram (cumulative `le`
//!   buckets from the log-linear layout), plus one gauge per bench
//!   median. Metric names are sanitized to `[a-zA-Z0-9_:]`.

use crate::json::Value;
use crate::obs::{self, Event, MetricSnap, UNSCOPED};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders a drained event stream as Chrome trace-event JSON: an array of
/// `"ph": "X"` slices with `ts` monotone within each track (one track per
/// `(trial, group)` scope; unscoped events share one track). The `args`
/// object carries the event's level, sequence number, scope, and fields.
pub fn chrome_trace(events: &[Event]) -> Value {
    let mut track_ids: HashMap<(u64, u64), u64> = HashMap::new();
    let slices = events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let next = track_ids.len() as u64;
            let tid = *track_ids.entry((e.trial, e.group)).or_insert(next);
            let mut args: Vec<(String, Value)> = vec![
                ("level".into(), Value::from(e.level.as_str())),
                ("seq".into(), Value::from(e.seq)),
            ];
            if e.trial != UNSCOPED {
                args.push(("trial".into(), Value::from(e.trial)));
                args.push(("group".into(), Value::from(e.group)));
            }
            for (k, v) in &e.fields {
                args.push((k.to_string(), v.to_json()));
            }
            Value::object([
                ("name", Value::from(e.name)),
                ("cat", Value::from(e.target)),
                ("ph", Value::from("X")),
                ("ts", Value::from(i as u64)),
                ("dur", Value::from(1u64)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
                ("args", Value::Object(args)),
            ])
        })
        .collect();
    Value::Array(slices)
}

/// Maps a metric name onto the Prometheus name charset: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders every registered metric (and bench median) as Prometheus text
/// exposition, ordered by name so output diffs cleanly.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for (name, snap) in obs::metric_snaps() {
        let pname = prometheus_name(&name);
        match snap {
            MetricSnap::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricSnap::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricSnap::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (le, n) in buckets {
                    cumulative += n;
                    if let Some(le) = le {
                        let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{pname}_sum {sum}");
                let _ = writeln!(out, "{pname}_count {count}");
            }
        }
    }
    for b in obs::bench_records() {
        let pname = format!("bench_{}_median_ns", prometheus_name(&b.name));
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {}", b.median_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{FieldValue, Level};

    fn event(target: &'static str, name: &'static str, trial: u64, group: u64, seq: u64) -> Event {
        Event {
            target,
            level: Level::Debug,
            name,
            trial,
            group,
            seq,
            fields: vec![("n", FieldValue::U64(seq + 1))],
        }
    }

    #[test]
    fn chrome_trace_roundtrips_with_monotone_ts_per_track() {
        // Merged-stream order: (trial, group, seq), then one unscoped event.
        let events = vec![
            event("relsim", "trial_eval", 0, 0, 0),
            event("relsim", "trial_eval", 0, 0, 1),
            event("relsim", "trial_eval", 1, 0, 0),
            event("relsim", "arm_result", UNSCOPED, UNSCOPED, 0),
        ];
        let trace = chrome_trace(&events);
        // Valid Chrome trace-event JSON: round-trips through the strict
        // parser as an array of ph:"X" slices.
        let parsed = Value::parse(&trace.to_pretty()).expect("trace parses");
        let slices = parsed.as_array().expect("array of events");
        assert_eq!(slices.len(), 4);
        let mut last_ts: HashMap<u64, f64> = HashMap::new();
        for s in slices {
            assert_eq!(s.get("ph").and_then(Value::as_str), Some("X"));
            assert!(s.get("dur").and_then(Value::as_f64).unwrap() > 0.0);
            let tid = s.get("tid").and_then(Value::as_f64).expect("tid") as u64;
            let ts = s.get("ts").and_then(Value::as_f64).expect("ts");
            if let Some(prev) = last_ts.insert(tid, ts) {
                assert!(ts > prev, "ts must be monotone within track {tid}");
            }
        }
        // Scopes map to distinct tracks in first-appearance order; the
        // unscoped event gets its own.
        let tids: Vec<u64> = slices
            .iter()
            .map(|s| s.get("tid").and_then(Value::as_f64).unwrap() as u64)
            .collect();
        assert_eq!(tids, [0, 0, 1, 2]);
        // Fields ride along in args.
        let args = slices[1].get("args").expect("args");
        assert_eq!(args.get("n").and_then(Value::as_f64), Some(2.0));
        assert_eq!(args.get("trial").and_then(Value::as_f64), Some(0.0));
        // Determinism: the same stream renders the same bytes.
        assert_eq!(trace.to_pretty(), chrome_trace(&events).to_pretty());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("relsim.trial_ns"), "relsim_trial_ns");
        assert_eq!(prometheus_name("perfsim.llc.hits"), "perfsim_llc_hits");
        assert_eq!(prometheus_name("0weird name"), "_0weird_name");
    }

    #[test]
    fn prometheus_text_covers_all_metric_kinds() {
        let _serial = obs::exclusive();
        obs::reset();
        obs::set_metrics_enabled(true);
        obs::counter("export.requests").add(3);
        obs::gauge("export.load").set(1.5);
        let h = obs::histogram("export.latency_ns");
        for v in [2u64, 5, 100] {
            h.record(v);
        }
        obs::record_bench("export_bench", 42.0, 10, &[40.0, 42.0, 44.0]);
        let text = prometheus_text();
        obs::set_metrics_enabled(false);
        obs::reset();

        assert!(text.contains("# TYPE export_requests counter\nexport_requests 3\n"));
        assert!(text.contains("# TYPE export_load gauge\nexport_load 1.5\n"));
        assert!(text.contains("# TYPE export_latency_ns histogram\n"));
        // Exact buckets for 2 and 5; the value 100 only appears in +Inf,
        // sum, and count.
        assert!(text.contains("export_latency_ns_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("export_latency_ns_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("export_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("export_latency_ns_sum 107\n"));
        assert!(text.contains("export_latency_ns_count 3\n"));
        assert!(text.contains(
            "# TYPE bench_export_bench_median_ns gauge\nbench_export_bench_median_ns 42\n"
        ));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in `{line}`");
        }
    }
}
