//! Self-sampling span profiler with flamegraph-folded output.
//!
//! The metrics histograms in [`crate::obs`] say *how long* each span took;
//! they cannot say *where the time went* when spans nest, and they cannot
//! attribute wall-clock to code that holds no span at all. This module
//! adds a sampling view with zero external tooling: every
//! [`crate::obs::SpanTimer`] pushes its histogram name onto a per-thread
//! **span stack** while the profiler is active, and a background sampler
//! thread wakes at a fixed rate, clones every live stack, and tallies one
//! sample per thread against the stack's `;`-joined rendering. [`stop`]
//! folds the tallies into the textual format flamegraph tooling consumes —
//! one `frame;frame;frame count` line per distinct stack, sorted — which
//! the bench harness writes to `results/obs/<run>.folded`.
//!
//! Threads that currently hold no span are tallied under the stack
//! `(idle)`, so the output also shows what fraction of samples found the
//! workers outside instrumented code.
//!
//! # Cost
//!
//! While the profiler is idle (the default), the only tax on span creation
//! is one relaxed atomic load in [`enter`] — the `node_eval` bench holds
//! this inside the existing <1% disabled-path budget. While active, a push
//! and pop take one uncontended mutex each, and the sampler perturbs the
//! run no more than any OS housekeeping thread. Sample counts are
//! wall-clock draws, so folded output is **not** deterministic across runs
//! — it is an attribution artifact, not a comparison artifact, which is
//! why it lives next to (not inside) the deterministic snapshot.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Default sampling rate (Hz), before `RF_PROF_HZ`. A prime, so the
/// sampler cannot phase-lock with millisecond-periodic work.
pub const DEFAULT_HZ: u32 = 997;

/// One worker thread's stack of active span names, innermost last.
type SpanStack = Arc<Mutex<Vec<&'static str>>>;

struct ProfGlobal {
    on: AtomicBool,
    stacks: Mutex<Vec<SpanStack>>,
    /// Folded-stack rendering -> samples observed there.
    samples: Mutex<BTreeMap<String, u64>>,
    /// The sampler thread and its shutdown flag, while one is running.
    sampler: Mutex<Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>>,
}

fn global() -> &'static ProfGlobal {
    static GLOBAL: OnceLock<ProfGlobal> = OnceLock::new();
    GLOBAL.get_or_init(|| ProfGlobal {
        on: AtomicBool::new(false),
        stacks: Mutex::new(Vec::new()),
        samples: Mutex::new(BTreeMap::new()),
        sampler: Mutex::new(None),
    })
}

thread_local! {
    static LOCAL_STACK: RefCell<Option<SpanStack>> = const { RefCell::new(None) };
}

/// Whether the profiler is currently collecting.
#[inline]
pub fn active() -> bool {
    global().on.load(Ordering::Relaxed)
}

/// Pushes a span name onto the calling thread's stack; returns whether it
/// was pushed (the caller must [`exit`] iff so). One relaxed load when the
/// profiler is idle.
#[inline]
pub fn enter(name: &'static str) -> bool {
    let g = global();
    if !g.on.load(Ordering::Relaxed) {
        return false;
    }
    LOCAL_STACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let stack: SpanStack = Arc::new(Mutex::new(Vec::new()));
            g.stacks
                .lock()
                .expect("profiler stack registry")
                .push(stack.clone());
            stack
        });
        stack.lock().expect("span stack").push(name);
    });
    true
}

/// Pops the innermost span from the calling thread's stack. Spans are
/// strictly nested RAII guards, so pop always matches the latest push.
pub fn exit() {
    LOCAL_STACK.with(|cell| {
        if let Some(stack) = cell.borrow().as_ref() {
            stack.lock().expect("span stack").pop();
        }
    });
}

/// Takes one sample now: every registered thread stack contributes one
/// count to its current `;`-joined rendering (`(idle)` when empty). The
/// sampler thread calls this on its schedule; tests call it directly.
pub fn sample_once() {
    let g = global();
    let stacks: Vec<SpanStack> = g.stacks.lock().expect("profiler stack registry").clone();
    let mut rendered: Vec<String> = Vec::with_capacity(stacks.len());
    for stack in &stacks {
        let frames = stack.lock().expect("span stack");
        if frames.is_empty() {
            rendered.push("(idle)".to_string());
        } else {
            rendered.push(frames.join(";"));
        }
    }
    let mut samples = g.samples.lock().expect("profiler samples");
    for line in rendered {
        *samples.entry(line).or_insert(0) += 1;
    }
}

/// Starts collecting and spawns the sampler thread at `hz` (clamped to
/// 1..=10_000). No-op if already running. Samples accumulate on top of
/// whatever was collected before; call [`stop`] to harvest and clear.
pub fn start(hz: u32) {
    let g = global();
    let mut sampler = g.sampler.lock().expect("profiler sampler");
    if sampler.is_some() {
        return;
    }
    g.on.store(true, Ordering::Relaxed);
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz.clamp(1, 10_000)));
    let run = Arc::new(AtomicBool::new(true));
    let run_in_thread = run.clone();
    let handle = std::thread::Builder::new()
        .name("rf-prof-sampler".into())
        .spawn(move || {
            while run_in_thread.load(Ordering::Relaxed) {
                sample_once();
                std::thread::sleep(period);
            }
        })
        .expect("spawning profiler sampler");
    *sampler = Some((run, handle));
}

/// Stops the sampler, renders everything collected as folded stacks, and
/// clears the sample store (stacks of still-running spans survive, so a
/// later [`start`] resumes cleanly). Returns the folded text: one
/// `frame;frame count` line per distinct stack, sorted by stack name.
pub fn stop() -> String {
    let g = global();
    if let Some((run, handle)) = g.sampler.lock().expect("profiler sampler").take() {
        run.store(false, Ordering::Relaxed);
        let _ = handle.join();
    }
    g.on.store(false, Ordering::Relaxed);
    let mut samples = g.samples.lock().expect("profiler samples");
    let folded = render_folded(&samples);
    samples.clear();
    g.stacks
        .lock()
        .expect("profiler stack registry")
        .retain(|s| Arc::strong_count(s) > 1);
    folded
}

/// Renders the current tallies without stopping (the live view).
pub fn folded() -> String {
    render_folded(&global().samples.lock().expect("profiler samples"))
}

fn render_folded(samples: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, count) in samples {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs;

    #[test]
    fn folded_output_is_deterministically_sorted() {
        // folded-diff and the CI comparisons treat `.folded` files as
        // comparable text: insertion order must never leak into the
        // rendering, only the sorted stack order.
        let mut samples = BTreeMap::new();
        for stack in ["zz.last", "aa.first", "mm.mid;leaf", "mm.mid"] {
            samples.insert(stack.to_string(), 1u64);
        }
        let rendered = render_folded(&samples);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(
            lines,
            ["aa.first 1", "mm.mid 1", "mm.mid;leaf 1", "zz.last 1"],
            "folded output must be sorted by stack"
        );
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn idle_profiler_pushes_nothing() {
        let _serial = obs::exclusive();
        assert!(!active());
        assert!(!enter("should.not.record"));
        assert_eq!(folded(), "");
    }

    #[test]
    fn samples_attribute_nested_spans_and_idle_threads() {
        let _serial = obs::exclusive();
        let g = global();
        g.on.store(true, Ordering::Relaxed);
        assert!(enter("outer_ns"));
        assert!(enter("inner_ns"));
        sample_once();
        sample_once();
        exit();
        sample_once();
        exit();
        sample_once();
        let text = stop();
        assert!(
            text.contains("outer_ns;inner_ns 2"),
            "nested stack missing from:\n{text}"
        );
        // Worker threads from other tests may also be registered and tallied
        // as idle, so assert presence rather than an exact idle count.
        assert!(
            text.contains("outer_ns 1") && text.contains("(idle) "),
            "outer-only and idle samples missing from:\n{text}"
        );
        assert!(!active(), "stop() deactivates");
        assert_eq!(stop(), "", "samples were cleared");
    }

    #[test]
    fn sampler_thread_collects_from_span_timers() {
        let _serial = obs::exclusive();
        obs::reset();
        obs::set_metrics_enabled(true);
        start(2000);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut text = String::new();
        while std::time::Instant::now() < deadline {
            let _span = obs::span("proftest.busy_ns");
            std::thread::sleep(Duration::from_millis(5));
            drop(_span);
            text = folded();
            if text.contains("proftest.busy_ns") {
                break;
            }
        }
        let final_text = stop();
        obs::set_metrics_enabled(false);
        obs::reset();
        assert!(
            text.contains("proftest.busy_ns") || final_text.contains("proftest.busy_ns"),
            "sampler never caught the span; live:\n{text}\nfinal:\n{final_text}"
        );
    }
}
