//! Cross-run perf-history ledger: the longitudinal layer behind the
//! observatory.
//!
//! Every obs snapshot is a *point* measurement; `obs_diff` compares two
//! of them. This module gives the repo the missing axis — **time across
//! runs** — as an append-only, schema-versioned ledger at
//! `<results>/history/ledger.jsonl`. Each line is one [`HistoryEntry`]
//! (a [`Persist`] artifact, kind `history_entry`): a run's manifest
//! identity (run name, git SHA, config hash, threads, wall clock)
//! distilled together with its bench medians and counters. Grouping the
//! entries by `(metric, config_hash, threads)` yields per-series time
//! series ([`series`]) that the trend analytics in [`crate::stats`]
//! (MAD outlier scores, CUSUM changepoints) and the `obs_report`
//! dashboard consume.
//!
//! Design rules the format enforces:
//!
//! * **One record, one line.** Records are compact JSON terminated by
//!   `\n`; a file that does not end in a newline was truncated mid-append
//!   and is rejected by [`Ledger::parse_entries`].
//! * **Append-only and idempotent.** Each entry carries a content digest
//!   `id`; ingesting a `results/` tree skips entries whose id the ledger
//!   already holds, so re-running ingest over the same tree is a
//!   byte-level no-op ([`Ledger::ingest_dir`]).
//! * **Self-verifying.** The id is recomputed from the decoded fields on
//!   load, so a corrupted line cannot masquerade as a valid record.
//! * **Monotone per series.** Within one `(config_hash, threads)` run
//!   lineage, wall clocks must be non-decreasing in ledger order —
//!   [`check_invariants`] (wired into `relcheck ledger`) enforces it.

use crate::json::Value;
use crate::obs;
use crate::persist::{self, Persist};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the ledger inside `<results>/history/`.
pub const LEDGER_BASENAME: &str = "ledger.jsonl";

/// The `kind` tag of one ledger record (mirrors [`HistoryEntry::KIND`]
/// for callers that dispatch on parsed JSON, like `obs_validate`).
pub const HISTORY_KIND: &str = "history_entry";

/// One run distilled into the ledger: manifest identity plus the scalar
/// series values (bench medians, counters) worth tracking across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Content digest over every other field — the dedupe key that makes
    /// re-ingestion idempotent. Always equals [`HistoryEntry::content_id`].
    pub id: u64,
    /// Run name from the snapshot manifest.
    pub run: String,
    /// Commit SHA the run was built from.
    pub git_sha: String,
    /// The manifest's order-sensitive configuration fold; series never
    /// mix entries with different config hashes.
    pub config_hash: u64,
    /// Worker threads the run used; part of the series key.
    pub threads: u64,
    /// Wall clock of the run (ms since the epoch, from the manifest).
    pub wall_clock_ms: u64,
    /// `(bench name, median_ns)`, sorted by name.
    pub benches: Vec<(String, f64)>,
    /// `(counter name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl HistoryEntry {
    /// The content digest the `id` field must equal: an order-sensitive
    /// fold over every non-`id` field.
    pub fn content_id(&self) -> u64 {
        let mut acc = persist::digest_debug(&(
            &self.run,
            &self.git_sha,
            self.config_hash,
            self.threads,
            self.wall_clock_ms,
        ));
        for (name, v) in &self.benches {
            acc = persist::fold_digest(acc, persist::digest_debug(&(name, v.to_bits())));
        }
        for (name, v) in &self.counters {
            acc = persist::fold_digest(acc, persist::digest_debug(&(name, *v)));
        }
        acc
    }

    /// Normalizes (sorts the series sections) and stamps the content id.
    pub fn seal(mut self) -> HistoryEntry {
        self.benches.sort_by(|(a, _), (b, _)| a.cmp(b));
        self.counters.sort_by(|(a, _), (b, _)| a.cmp(b));
        self.id = self.content_id();
        self
    }

    /// The one-line JSONL rendering of this entry.
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().to_string();
        line.push('\n');
        line
    }
}

impl Persist for HistoryEntry {
    const KIND: &'static str = HISTORY_KIND;
    const SCHEMA_VERSION: u64 = 1;

    fn to_json(&self) -> Value {
        Value::object([
            ("schema_version", Value::from(Self::SCHEMA_VERSION)),
            ("kind", Value::from(Self::KIND)),
            ("id", persist::hex(self.id)),
            ("run", Value::from(self.run.as_str())),
            ("git_sha", Value::from(self.git_sha.as_str())),
            ("config_hash", persist::hex(self.config_hash)),
            ("threads", Value::from(self.threads)),
            ("wall_clock_ms", Value::from(self.wall_clock_ms)),
            (
                "benches",
                Value::Object(
                    self.benches
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
            (
                "counters",
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Self::check_header(v)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{key} must be a string"))
        };
        let mut benches = Vec::new();
        match v.get("benches") {
            Some(Value::Object(pairs)) => {
                for (name, val) in pairs {
                    let median = val
                        .as_f64()
                        .filter(|m| m.is_finite())
                        .ok_or_else(|| format!("bench {name} must be a finite number"))?;
                    benches.push((name.clone(), median));
                }
            }
            _ => return Err("benches must be an object".into()),
        }
        let mut counters = Vec::new();
        match v.get("counters") {
            Some(Value::Object(pairs)) => {
                for (name, _) in pairs {
                    counters.push((
                        name.clone(),
                        persist::parse_u64_field(v.get("counters").expect("checked"), name)?,
                    ));
                }
            }
            _ => return Err("counters must be an object".into()),
        }
        let entry = HistoryEntry {
            id: persist::parse_hex_field(v, "id")?,
            run: str_field("run")?,
            git_sha: str_field("git_sha")?,
            config_hash: persist::parse_hex_field(v, "config_hash")?,
            threads: persist::parse_u64_field(v, "threads")?,
            wall_clock_ms: persist::parse_u64_field(v, "wall_clock_ms")?,
            benches,
            counters,
        };
        let expect = entry.content_id();
        if entry.id != expect {
            return Err(format!(
                "id {:#018x} does not match content digest {expect:#018x} (corrupted record?)",
                entry.id
            ));
        }
        Ok(entry)
    }
}

/// Distills one obs metrics snapshot (the `results/obs/<run>.json`
/// document) into a ledger entry. Counters too large for exact `f64`
/// representation cannot round-trip through JSON and are rejected rather
/// than silently rounded.
///
/// # Errors
///
/// Rejects documents that are not current-schema obs snapshots (wrong
/// `schema_version`, a `kind` tag marking another artifact family, or a
/// missing manifest).
pub fn entry_from_snapshot(doc: &Value) -> Result<HistoryEntry, String> {
    if let Some(kind) = doc.get("kind").and_then(Value::as_str) {
        return Err(format!("not a metrics snapshot (kind {kind:?})"));
    }
    let version = doc.get("schema_version").and_then(Value::as_f64);
    if version != Some(obs::SCHEMA_VERSION as f64) {
        return Err(format!(
            "snapshot schema_version {version:?}, expected {}",
            obs::SCHEMA_VERSION
        ));
    }
    let manifest = doc.get("manifest").ok_or("snapshot has no manifest")?;
    let man_str = |key: &str| -> Result<String, String> {
        manifest
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("manifest.{key} must be a string"))
    };
    let config_hash = manifest
        .get("config_hash")
        .and_then(persist::parse_hex)
        .ok_or("manifest.config_hash must be a hex string")?;
    let mut benches = Vec::new();
    if let Some(Value::Object(pairs)) = doc.get("benches") {
        for (name, b) in pairs {
            let median = b
                .get("median_ns")
                .and_then(Value::as_f64)
                .filter(|m| m.is_finite())
                .ok_or_else(|| format!("bench {name} has no finite median_ns"))?;
            benches.push((name.clone(), median));
        }
    }
    let mut counters = Vec::new();
    if let Some(Value::Object(pairs)) = doc.get("counters") {
        for (name, _) in pairs {
            counters.push((
                name.clone(),
                persist::parse_u64_field(doc.get("counters").expect("checked"), name)
                    .map_err(|e| format!("counter {e}"))?,
            ));
        }
    }
    Ok(HistoryEntry {
        id: 0,
        run: man_str("run")?,
        git_sha: man_str("git_sha")?,
        config_hash,
        threads: persist::parse_u64_field(manifest, "threads")
            .map_err(|e| format!("manifest.{e}"))?,
        wall_clock_ms: persist::parse_u64_field(manifest, "wall_clock_ms")
            .map_err(|e| format!("manifest.{e}"))?,
        benches,
        counters,
    }
    .seal())
}

/// What one [`Ledger::ingest_dir`] pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Entries appended to the ledger.
    pub added: usize,
    /// Snapshots whose entries were already present (idempotent skips).
    pub duplicate: usize,
    /// Files under `obs/` that are not ingestable snapshots (traces,
    /// crash dumps, repro cases, …), with the reason each was skipped.
    pub skipped: Vec<(PathBuf, String)>,
}

/// The on-disk ledger plus its decoded entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Where the ledger lives (exists once the first entry is appended).
    pub path: PathBuf,
    /// Every entry, in file (append) order.
    pub entries: Vec<HistoryEntry>,
}

impl Ledger {
    /// The canonical ledger location under a results tree:
    /// `<results_dir>/history/ledger.jsonl`.
    pub fn default_path(results_dir: &str) -> PathBuf {
        Path::new(results_dir).join("history").join(LEDGER_BASENAME)
    }

    /// Loads the ledger at `path`; a missing file is an empty ledger
    /// (the state before the first append), any other failure is an
    /// error.
    ///
    /// # Errors
    ///
    /// Propagates read failures and every [`Ledger::parse_entries`]
    /// rejection, prefixed with the path.
    pub fn load(path: &Path) -> Result<Ledger, String> {
        let entries = match std::fs::read_to_string(path) {
            Ok(text) => {
                Self::parse_entries(&text).map_err(|e| format!("{}: {e}", path.display()))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{}: cannot read: {e}", path.display())),
        };
        Ok(Ledger {
            path: path.to_path_buf(),
            entries,
        })
    }

    /// Strict JSONL decoding: every line must parse as a current-kind
    /// [`HistoryEntry`] (which re-verifies each content digest), and the
    /// text must end with a newline — a missing final newline means the
    /// last append was cut short, and an append-only file never repairs
    /// itself, so the whole ledger is rejected.
    ///
    /// # Errors
    ///
    /// Reports the first offending line (1-based) and why it failed.
    pub fn parse_entries(text: &str) -> Result<Vec<HistoryEntry>, String> {
        if text.is_empty() {
            return Ok(Vec::new());
        }
        if !text.ends_with('\n') {
            return Err("truncated ledger: final line has no newline".into());
        }
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                return Err(format!("line {}: blank line in ledger", i + 1));
            }
            let entry =
                HistoryEntry::parse_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            entries.push(entry);
        }
        Ok(entries)
    }

    /// Appends the entries whose ids the ledger does not already hold,
    /// in deterministic `(wall_clock_ms, run, id)` order, creating the
    /// file on first use. Returns how many were appended; appending
    /// nothing leaves the file bytes untouched (idempotence).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures with path
    /// context.
    pub fn append(&mut self, candidates: Vec<HistoryEntry>) -> Result<usize, String> {
        let known: BTreeSet<u64> = self.entries.iter().map(|e| e.id).collect();
        let mut fresh: Vec<HistoryEntry> = candidates
            .into_iter()
            .filter(|e| !known.contains(&e.id))
            .collect();
        fresh.sort_by(|a, b| (a.wall_clock_ms, &a.run, a.id).cmp(&(b.wall_clock_ms, &b.run, b.id)));
        fresh.dedup_by_key(|e| e.id);
        if fresh.is_empty() {
            return Ok(0);
        }
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("{}: cannot create dir: {e}", dir.display()))?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("{}: cannot open for append: {e}", self.path.display()))?;
        for entry in &fresh {
            file.write_all(entry.to_line().as_bytes())
                .map_err(|e| format!("{}: append failed: {e}", self.path.display()))?;
        }
        let added = fresh.len();
        self.entries.append(&mut fresh);
        Ok(added)
    }

    /// Ingests every metrics snapshot under `<results_dir>/obs/` into the
    /// ledger at [`Ledger::default_path`]. Non-snapshot artifacts
    /// (traces, crash dumps, repro cases, Prometheus text, folded
    /// profiles) are skipped and listed in the report; snapshots already
    /// ledgered count as duplicates. Running this twice over an unchanged
    /// tree leaves the ledger file byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates ledger load/append failures; an absent `obs/`
    /// directory is an error (nothing to ingest is a caller bug).
    pub fn ingest_dir(results_dir: &str) -> Result<(Ledger, IngestReport), String> {
        let mut ledger = Ledger::load(&Self::default_path(results_dir))?;
        let obs_dir = Path::new(results_dir).join("obs");
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&obs_dir)
            .map_err(|e| format!("{}: cannot read: {e}", obs_dir.display()))?
            .flatten()
            .map(|e| e.path())
            .collect();
        paths.sort();
        let mut report = IngestReport::default();
        let known: BTreeSet<u64> = ledger.entries.iter().map(|e| e.id).collect();
        let mut candidates = Vec::new();
        for path in paths {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if !name.ends_with(".json") || name.ends_with(".trace.json") {
                continue; // not snapshot-shaped; other validators own these
            }
            let parsed = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read: {e}"))
                .and_then(|text| Value::parse(&text).map_err(|e| format!("invalid JSON: {e}")))
                .and_then(|doc| entry_from_snapshot(&doc));
            match parsed {
                Ok(entry) if known.contains(&entry.id) => report.duplicate += 1,
                Ok(entry) => candidates.push(entry),
                Err(reason) => report.skipped.push((path, reason)),
            }
        }
        report.added = ledger.append(candidates)?;
        Ok((ledger, report))
    }
}

/// Appends one just-written run snapshot (`<results_dir>/obs/<run>.json`)
/// to the ledger — the `obs_finish()` hook every bench binary runs.
/// Returns `Ok(true)` when a new entry landed, `Ok(false)` when the run
/// was already ledgered.
///
/// # Errors
///
/// Propagates missing/corrupt snapshot files and ledger I/O failures.
pub fn append_run_snapshot(results_dir: &str, run: &str) -> Result<bool, String> {
    let path = Path::new(results_dir)
        .join("obs")
        .join(format!("{run}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let doc = Value::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let entry = entry_from_snapshot(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut ledger = Ledger::load(&Ledger::default_path(results_dir))?;
    Ok(ledger.append(vec![entry])? == 1)
}

/// Which snapshot section a series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// A bench median (`median_ns`); the regression-gate signal.
    Bench,
    /// A deterministic counter.
    Counter,
}

impl SeriesKind {
    /// Short lowercase label used in series ids and reports.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Bench => "bench",
            SeriesKind::Counter => "counter",
        }
    }
}

/// Identity of one time series: a metric observed under one configuration
/// at one thread count. Entries with different config hashes or thread
/// counts never share a series — comparing them would conflate config
/// changes with perf changes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Bench or counter.
    pub kind: SeriesKind,
    /// Metric name (e.g. `engine_hot.fig10_mix`).
    pub name: String,
    /// Manifest config hash shared by every point.
    pub config_hash: u64,
    /// Worker threads shared by every point.
    pub threads: u64,
}

impl SeriesKey {
    /// Human/grep-friendly rendering:
    /// `bench:engine_hot.fig10_mix cfg=50c1207f80689ff5 t=1`.
    pub fn label(&self) -> String {
        format!(
            "{}:{} cfg={:016x} t={}",
            self.kind.label(),
            self.name,
            self.config_hash,
            self.threads
        )
    }
}

/// One observation in a series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Epoch within the series (0-based position in ledger order) — the
    /// coordinate changepoints are reported in.
    pub epoch: usize,
    /// Index of the source entry in [`Ledger::entries`].
    pub entry_index: usize,
    /// Run name of the source entry.
    pub run: String,
    /// Wall clock of the source entry.
    pub wall_clock_ms: u64,
    /// The observed value (bench `median_ns`, or counter value).
    pub value: f64,
}

/// Groups ledger entries into per-series time series, in ledger order.
pub fn series(entries: &[HistoryEntry]) -> BTreeMap<SeriesKey, Vec<SeriesPoint>> {
    let mut out: BTreeMap<SeriesKey, Vec<SeriesPoint>> = BTreeMap::new();
    let mut push = |key: SeriesKey, entry_index: usize, entry: &HistoryEntry, value: f64| {
        let points = out.entry(key).or_default();
        points.push(SeriesPoint {
            epoch: points.len(),
            entry_index,
            run: entry.run.clone(),
            wall_clock_ms: entry.wall_clock_ms,
            value,
        });
    };
    for (entry_index, entry) in entries.iter().enumerate() {
        for (name, median) in &entry.benches {
            push(
                SeriesKey {
                    kind: SeriesKind::Bench,
                    name: name.clone(),
                    config_hash: entry.config_hash,
                    threads: entry.threads,
                },
                entry_index,
                entry,
                *median,
            );
        }
        for (name, value) in &entry.counters {
            push(
                SeriesKey {
                    kind: SeriesKind::Counter,
                    name: name.clone(),
                    config_hash: entry.config_hash,
                    threads: entry.threads,
                },
                entry_index,
                entry,
                *value as f64,
            );
        }
    }
    out
}

/// Structural invariants `relcheck ledger` enforces on a loaded ledger:
///
/// * every id is unique (the parse already proved each matches its
///   content);
/// * run names are valid file stems;
/// * bench medians are finite and non-negative;
/// * **series monotonicity** — within one `(config_hash, threads)` run
///   lineage, `wall_clock_ms` never decreases in ledger (append) order,
///   so the epoch axis of every derived series is genuinely time-ordered.
///
/// # Errors
///
/// Describes the first violated invariant, naming the offending entry.
pub fn check_invariants(ledger: &Ledger) -> Result<(), String> {
    let mut seen_ids = BTreeSet::new();
    let mut last_clock: BTreeMap<(u64, u64), (u64, String)> = BTreeMap::new();
    for (i, entry) in ledger.entries.iter().enumerate() {
        if !seen_ids.insert(entry.id) {
            return Err(format!(
                "entry {i} (run {}): duplicate id {:#018x}",
                entry.run, entry.id
            ));
        }
        obs::validate_run_name(&entry.run).map_err(|e| format!("entry {i}: {e}"))?;
        for (name, median) in &entry.benches {
            if !median.is_finite() || *median < 0.0 {
                return Err(format!(
                    "entry {i} (run {}): bench {name} median {median} is not a \
                     non-negative finite number",
                    entry.run
                ));
            }
        }
        let lineage = (entry.config_hash, entry.threads);
        if let Some((clock, run)) = last_clock.get(&lineage) {
            if entry.wall_clock_ms < *clock {
                return Err(format!(
                    "entry {i} (run {}): wall_clock_ms {} precedes {} of earlier run {} \
                     in the same (config, threads) lineage — series are no longer \
                     time-ordered",
                    entry.run, entry.wall_clock_ms, clock, run
                ));
            }
        }
        last_clock.insert(lineage, (entry.wall_clock_ms, entry.run.clone()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: &str, clock: u64, median: f64) -> HistoryEntry {
        HistoryEntry {
            id: 0,
            run: run.to_string(),
            git_sha: "abc123".to_string(),
            config_hash: 0x50c1_207f_8068_9ff5,
            threads: 1,
            wall_clock_ms: clock,
            benches: vec![("engine_hot.fig10_mix".to_string(), median)],
            counters: vec![("relsim.trials".to_string(), 4000)],
        }
        .seal()
    }

    fn snapshot_doc(run: &str, clock: u64, median: f64) -> Value {
        Value::parse(&format!(
            r#"{{
              "schema_version": {v},
              "manifest": {{"run": "{run}", "git_sha": "abc123", "profile": "release",
                           "threads": 1, "seeds": [2016], "config_hash": "50c1207f80689ff5",
                           "sim_runs": 1, "epochs": 0, "shards": 0,
                           "wall_clock_ms": {clock}}},
              "counters": {{"relsim.trials": 4000}},
              "gauges": {{}},
              "histograms": {{}},
              "benches": {{"engine_hot.fig10_mix": {{"median_ns": {median}, "iters": 10,
                           "batch_ns": [{median}]}}}},
              "dropped_events": 0
            }}"#,
            v = obs::SCHEMA_VERSION
        ))
        .expect("fixture parses")
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rf_history_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("obs")).expect("scratch dir");
        dir
    }

    #[test]
    fn entry_round_trips_and_verifies_content_id() {
        let e = entry("fig08_hashing", 1000, 123.5);
        let line = e.to_line();
        assert_eq!(line.matches('\n').count(), 1, "one record, one line");
        let back = HistoryEntry::parse_str(line.trim_end()).expect("round trip");
        assert_eq!(back, e);

        // Tampering with a value breaks the content digest.
        let tampered = line.replace("123.5", "124.5");
        let err = HistoryEntry::parse_str(tampered.trim_end()).unwrap_err();
        assert!(err.contains("content digest"), "{err}");
    }

    #[test]
    fn parse_entries_rejects_truncation_and_mixed_versions() {
        let good = format!(
            "{}{}",
            entry("a", 1, 10.0).to_line(),
            entry("b", 2, 11.0).to_line()
        );
        assert_eq!(Ledger::parse_entries(&good).expect("parses").len(), 2);

        let truncated = &good[..good.len() - 1];
        let err = Ledger::parse_entries(truncated).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        let mixed = good.replace("\"schema_version\":1", "\"schema_version\":99");
        let err = Ledger::parse_entries(&mixed).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");

        let garbage = format!("{good}not json\n");
        assert!(Ledger::parse_entries(&garbage).is_err());
        assert!(Ledger::parse_entries("").expect("empty ok").is_empty());
    }

    #[test]
    fn ingest_is_idempotent_byte_for_byte() {
        let dir = scratch_dir("ingest");
        let results = dir.to_str().expect("utf8 path");
        for (run, clock, median) in [("run_a", 100, 50.0), ("run_b", 200, 51.0)] {
            std::fs::write(
                dir.join("obs").join(format!("{run}.json")),
                snapshot_doc(run, clock, median).to_pretty(),
            )
            .expect("write snapshot");
        }
        // Non-snapshot artifacts are skipped, not fatal.
        std::fs::write(dir.join("obs/run_a.prom"), "# TYPE x counter\n").expect("write");
        std::fs::write(dir.join("obs/junk.json"), "{\"kind\": \"crash_dump\"}").expect("write");

        let (ledger, report) = Ledger::ingest_dir(results).expect("first ingest");
        assert_eq!(report.added, 2);
        assert_eq!(report.duplicate, 0);
        assert_eq!(report.skipped.len(), 1, "{:?}", report.skipped);
        assert_eq!(ledger.entries.len(), 2);
        // Deterministic order: by wall clock.
        assert_eq!(ledger.entries[0].run, "run_a");

        let bytes_before = std::fs::read(&ledger.path).expect("ledger exists");
        let (ledger2, report2) = Ledger::ingest_dir(results).expect("second ingest");
        assert_eq!(report2.added, 0);
        assert_eq!(report2.duplicate, 2);
        assert_eq!(ledger2.entries, ledger.entries);
        let bytes_after = std::fs::read(&ledger2.path).expect("ledger exists");
        assert_eq!(
            bytes_before, bytes_after,
            "re-ingest must be a byte-level no-op"
        );

        // A third run appended later extends, again idempotently.
        std::fs::write(
            dir.join("obs/run_c.json"),
            snapshot_doc("run_c", 300, 49.0).to_pretty(),
        )
        .expect("write snapshot");
        let (ledger3, report3) = Ledger::ingest_dir(results).expect("third ingest");
        assert_eq!((report3.added, report3.duplicate), (1, 2));
        assert_eq!(ledger3.entries.len(), 3);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn append_run_snapshot_hooks_one_run() {
        let dir = scratch_dir("hook");
        let results = dir.to_str().expect("utf8 path");
        std::fs::write(
            dir.join("obs/fig08_hashing.json"),
            snapshot_doc("fig08_hashing", 500, 42.0).to_pretty(),
        )
        .expect("write snapshot");
        assert!(append_run_snapshot(results, "fig08_hashing").expect("append"));
        assert!(
            !append_run_snapshot(results, "fig08_hashing").expect("append"),
            "second call is a duplicate"
        );
        let ledger = Ledger::load(&Ledger::default_path(results)).expect("load");
        assert_eq!(ledger.entries.len(), 1);
        assert!(append_run_snapshot(results, "missing_run").is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn series_group_by_metric_config_and_threads() {
        let mut entries = vec![entry("a", 1, 10.0), entry("b", 2, 12.0)];
        // Same metric at a different thread count: its own series.
        let mut other = entry("c", 3, 11.0);
        other.threads = 4;
        entries.push(other.seal());
        let all = series(&entries);
        let bench_keys: Vec<&SeriesKey> =
            all.keys().filter(|k| k.kind == SeriesKind::Bench).collect();
        assert_eq!(bench_keys.len(), 2, "{bench_keys:?}");
        let main = &all[bench_keys[0]];
        assert_eq!(main.len(), 2);
        assert_eq!((main[0].epoch, main[0].value), (0, 10.0));
        assert_eq!((main[1].epoch, main[1].run.as_str()), (1, "b"));
        assert!(bench_keys[0].label().contains("bench:engine_hot.fig10_mix"));
    }

    #[test]
    fn invariants_catch_duplicates_and_time_reversal() {
        let dir = std::env::temp_dir();
        let mk = |entries: Vec<HistoryEntry>| Ledger {
            path: dir.join("unused.jsonl"),
            entries,
        };
        assert!(check_invariants(&mk(vec![entry("a", 1, 10.0), entry("b", 2, 11.0)])).is_ok());

        let dup = entry("a", 1, 10.0);
        let err = check_invariants(&mk(vec![dup.clone(), dup])).unwrap_err();
        assert!(err.contains("duplicate id"), "{err}");

        // Wall clock going backwards within one lineage.
        let err = check_invariants(&mk(vec![
            entry("late", 100, 10.0),
            entry("early", 50, 10.0),
        ]))
        .unwrap_err();
        assert!(err.contains("precedes"), "{err}");

        // ...but a different config hash is a different lineage: fine.
        let mut other = entry("early", 50, 10.0);
        other.config_hash = 7;
        let ok = check_invariants(&mk(vec![entry("late", 100, 10.0), other.seal()]));
        assert!(ok.is_ok(), "{ok:?}");
    }
}
