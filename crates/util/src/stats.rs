//! Streaming statistics, empirical CDFs, and binomial confidence intervals.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use relaxfault_util::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.add(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

/// Empirical distribution over `f64` samples with percentile and
/// fraction-below queries. Used to build the coverage-vs-capacity CDFs of
/// the paper's Figures 10 and 11.
///
/// # Examples
///
/// ```
/// use relaxfault_util::stats::Ecdf;
/// let mut e = Ecdf::new();
/// e.extend([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.fraction_at_most(2.5), 0.5);
/// assert_eq!(e.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    samples: Vec<f64>,
    sorted: bool,
}

/// Two distributions are equal when they hold the same multiset of samples
/// (bit-for-bit), regardless of insertion order — parallel reductions merge
/// per-worker chunks, so insertion order is not meaningful.
impl PartialEq for Ecdf {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        let mut a = self.samples.clone();
        let mut b = other.samples.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

impl Ecdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        self.samples.extend(xs);
        self.sorted = false;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Ecdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x` (0 if empty).
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `p`-th percentile (nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty distribution");
        assert!((0.0..=100.0).contains(&p));
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Returns `(low, high)`. Well-behaved for small counts and extreme
/// proportions, unlike the normal approximation.
///
/// # Panics
///
/// Panics if `successes > trials`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = relaxfault_util::stats::wilson_interval(90, 100);
/// assert!(lo < 0.9 && 0.9 < hi);
/// ```
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    assert!(successes <= trials, "successes exceed trials");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - spread) / denom).max(0.0),
        ((centre + spread) / denom).min(1.0),
    )
}

/// Distribution-free ~95% confidence interval for the **median** of a
/// sample, via binomial order statistics: the interval between ranks
/// `n/2 ± z·√n/2` (z = 1.96) covers the true median with ≈95% probability
/// regardless of the underlying distribution. Used by the bench regression
/// reporter to decide whether two runs' timing medians are statistically
/// distinguishable.
///
/// Returns `(low, high)`. For very small samples (fewer than ~6
/// observations) the interval degenerates to `(min, max)`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
///
/// # Examples
///
/// ```
/// let xs: Vec<f64> = (1..=100).map(f64::from).collect();
/// let (lo, hi) = relaxfault_util::stats::median_ci(&xs);
/// assert!(lo <= 50.0 && 50.0 <= hi);
/// assert!(lo >= 40.0 && hi <= 61.0);
/// ```
pub fn median_ci(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "median_ci of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let n = sorted.len();
    let z = 1.96f64;
    let half_width = z * (n as f64).sqrt() / 2.0;
    let lo_rank = (n as f64 / 2.0 - half_width).floor() as i64;
    let hi_rank = (n as f64 / 2.0 + half_width).ceil() as i64;
    let lo_idx = lo_rank.clamp(0, n as i64 - 1) as usize;
    let hi_idx = hi_rank.clamp(0, n as i64 - 1) as usize;
    (sorted[lo_idx], sorted[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(3.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ecdf_fraction_and_percentile() {
        let mut e = Ecdf::new();
        e.extend((1..=100).map(|i| i as f64));
        assert_eq!(e.len(), 100);
        assert!((e.fraction_at_most(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.fraction_at_most(0.0), 0.0);
        assert_eq!(e.fraction_at_most(1000.0), 1.0);
        assert_eq!(e.percentile(90.0), 90.0);
        assert_eq!(e.percentile(0.0), 1.0);
        assert_eq!(e.percentile(100.0), 100.0);
    }

    #[test]
    fn ecdf_merge() {
        let mut a = Ecdf::new();
        a.extend([1.0, 2.0]);
        let mut b = Ecdf::new();
        b.extend([3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.fraction_at_most(2.0), 0.5);
    }

    #[test]
    fn wilson_contains_truth_and_shrinks() {
        let (lo1, hi1) = wilson_interval(50, 100);
        let (lo2, hi2) = wilson_interval(5_000, 10_000);
        assert!(lo1 < 0.5 && 0.5 < hi1);
        assert!(lo2 < 0.5 && 0.5 < hi2);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn median_ci_contains_median_and_shrinks() {
        let small: Vec<f64> = (1..=25).map(f64::from).collect();
        let large: Vec<f64> = (1..=2500).map(f64::from).collect();
        let (lo1, hi1) = median_ci(&small);
        let (lo2, hi2) = median_ci(&large);
        assert!(lo1 <= 13.0 && 13.0 <= hi1);
        assert!(lo2 <= 1250.5 && 1250.5 <= hi2);
        // Relative width shrinks roughly as 1/sqrt(n).
        assert!((hi2 - lo2) / 1250.0 < (hi1 - lo1) / 13.0);
    }

    #[test]
    fn median_ci_small_samples_degenerate_to_range() {
        assert_eq!(median_ci(&[7.0]), (7.0, 7.0));
        assert_eq!(median_ci(&[3.0, 1.0]), (1.0, 3.0));
        let (lo, hi) = median_ci(&[5.0, 1.0, 3.0]);
        assert_eq!((lo, hi), (1.0, 5.0));
    }

    #[test]
    fn median_ci_is_order_independent() {
        let a = [9.0, 2.0, 7.0, 4.0, 6.0, 1.0, 8.0, 3.0, 5.0, 10.0];
        let mut b = a;
        b.reverse();
        assert_eq!(median_ci(&a), median_ci(&b));
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 10);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.5);
        let (lo, hi) = wilson_interval(10, 10);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.5);
    }
}
