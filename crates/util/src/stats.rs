//! Streaming statistics, empirical CDFs, binomial confidence intervals,
//! and robust trend analytics (MAD outlier scores, CUSUM changepoints)
//! for the cross-run perf-history ledger.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use relaxfault_util::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.add(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

/// Empirical distribution over `f64` samples with percentile and
/// fraction-below queries. Used to build the coverage-vs-capacity CDFs of
/// the paper's Figures 10 and 11.
///
/// # Examples
///
/// ```
/// use relaxfault_util::stats::Ecdf;
/// let mut e = Ecdf::new();
/// e.extend([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.fraction_at_most(2.5), 0.5);
/// assert_eq!(e.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    samples: Vec<f64>,
    sorted: bool,
}

/// Two distributions are equal when they hold the same multiset of samples
/// (bit-for-bit), regardless of insertion order — parallel reductions merge
/// per-worker chunks, so insertion order is not meaningful.
impl PartialEq for Ecdf {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        let mut a = self.samples.clone();
        let mut b = other.samples.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

impl Ecdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        self.samples.extend(xs);
        self.sorted = false;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Ecdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x` (0 if empty).
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The samples in ascending order (sorting in place if needed) —
    /// the canonical form for digesting or serializing a distribution,
    /// independent of merge order.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// The `p`-th percentile (nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty distribution");
        assert!((0.0..=100.0).contains(&p));
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Returns `(low, high)`. Well-behaved for small counts and extreme
/// proportions, unlike the normal approximation.
///
/// # Panics
///
/// Panics if `successes > trials`.
///
/// # Examples
///
/// ```
/// let (lo, hi) = relaxfault_util::stats::wilson_interval(90, 100);
/// assert!(lo < 0.9 && 0.9 < hi);
/// ```
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    assert!(successes <= trials, "successes exceed trials");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - spread) / denom).max(0.0),
        ((centre + spread) / denom).min(1.0),
    )
}

/// Distribution-free ~95% confidence interval for the **median** of a
/// sample, via binomial order statistics: the interval between ranks
/// `n/2 ± z·√n/2` (z = 1.96) covers the true median with ≈95% probability
/// regardless of the underlying distribution. Used by the bench regression
/// reporter to decide whether two runs' timing medians are statistically
/// distinguishable.
///
/// Returns `(low, high)`. For very small samples (fewer than ~6
/// observations) the interval degenerates to `(min, max)`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
///
/// # Examples
///
/// ```
/// let xs: Vec<f64> = (1..=100).map(f64::from).collect();
/// let (lo, hi) = relaxfault_util::stats::median_ci(&xs);
/// assert!(lo <= 50.0 && 50.0 <= hi);
/// assert!(lo >= 40.0 && hi <= 61.0);
/// ```
pub fn median_ci(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "median_ci of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let n = sorted.len();
    let z = 1.96f64;
    let half_width = z * (n as f64).sqrt() / 2.0;
    let lo_rank = (n as f64 / 2.0 - half_width).floor() as i64;
    let hi_rank = (n as f64 / 2.0 + half_width).ceil() as i64;
    let lo_idx = lo_rank.clamp(0, n as i64 - 1) as usize;
    let hi_idx = hi_rank.clamp(0, n as i64 - 1) as usize;
    (sorted[lo_idx], sorted[hi_idx])
}

/// Median of a sample (mean of the middle pair for even lengths).
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation: the median of `|x - median(xs)|`. With a
/// 50% breakdown point it stays anchored to the majority of a series even
/// when a long tail of regressed runs pulls the mean — which is exactly
/// why the trend analytics standardize on it instead of the standard
/// deviation.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// The robust scale estimate the trend analytics divide by:
/// `1.4826 * MAD` (consistent with the standard deviation under
/// normality). When the MAD degenerates to zero (over half the samples
/// identical — the common case for a healthy deterministic series), falls
/// back to a tiny scale proportional to the median's magnitude so *any*
/// genuine departure still scores enormous rather than dividing by zero.
fn robust_scale(samples: &[f64]) -> f64 {
    let s = 1.4826 * mad(samples);
    if s > 0.0 {
        s
    } else {
        let m = median(samples).abs();
        (if m > 0.0 { m } else { 1.0 }) * 1e-9
    }
}

/// MAD-based outlier scores: each sample's distance from the sample
/// median in robust-scale units (a "robust z-score", sign-preserving).
/// Scores beyond ±3.5 are the conventional outlier threshold. Returns an
/// empty vector for an empty sample.
pub fn mad_scores(samples: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return Vec::new();
    }
    let m = median(samples);
    let scale = robust_scale(samples);
    // Cap the scores so degenerate scales cannot produce infinities that
    // poison downstream accumulation (CUSUM sums these).
    samples
        .iter()
        .map(|x| ((x - m) / scale).clamp(-1e6, 1e6))
        .collect()
}

/// A level shift detected in a series by [`cusum_changepoints`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Changepoint {
    /// Index of the first point of the shifted regime (0-based).
    pub index: usize,
    /// `+1` for an upward shift (a regression for time-like series),
    /// `-1` for a downward shift (an improvement).
    pub direction: i8,
    /// Relative size of the shift: the median of the shifted regime over
    /// the median it shifted away from (the series median, or the head
    /// regime for a mid-excursion segment open), minus one (e.g. `+1.0`
    /// for a 2x regression).
    pub shift: f64,
}

/// Default CUSUM slack: shifts under half a robust standard deviation
/// accumulate nothing, so seed-level jitter never drifts the statistic.
pub const CUSUM_K: f64 = 0.5;

/// Default CUSUM decision threshold, in robust standard deviations of
/// accumulated evidence.
pub const CUSUM_H: f64 = 5.0;

/// Two-sided CUSUM changepoint detection over a series, standardized by
/// the series' own median/MAD so the detector responds to *level shifts
/// against the trend* rather than to a single archived number. `k` is the
/// per-point slack and `h` the decision threshold (see [`CUSUM_K`],
/// [`CUSUM_H`]); both are in robust-scale units. Series shorter than 4
/// points carry too little evidence and report no changepoints.
///
/// After each detection the remainder of the series is re-standardized
/// before detection continues, so a persistent shift reports exactly one
/// changepoint instead of one per shifted point. The reported index is
/// the first point of the excursion that crossed the threshold.
///
/// A segment can also *open* mid-excursion — the whole series starts on
/// a regime its bulk later left (an archived pre-optimization head), or
/// re-scanning resumes right after a spike. There is no in-segment
/// pre-regime to anchor that shift, so the reported changepoint is the
/// *return* to the bulk: its index is the first post-excursion point and
/// its direction is opposite to the excursion's, with the shift measured
/// against the head regime. Detection then continues past it, so an
/// outlier head can never mask later shifts.
pub fn cusum_changepoints(series: &[f64], k: f64, h: f64) -> Vec<Changepoint> {
    let mut out = Vec::new();
    let mut offset = 0;
    while let Some(mut cp) = first_changepoint(&series[offset..], k, h) {
        if cp.index == 0 {
            let seg = &series[offset..];
            let scores = mad_scores(seg);
            let dir = f64::from(cp.direction);
            let Some(end) = scores[1..].iter().position(|&z| dir * z <= k) else {
                break; // the head excursion never returns to the bulk
            };
            let end = end + 1;
            let head = median(&seg[..end]);
            let regime = median(&seg[end..]);
            out.push(Changepoint {
                index: offset + end,
                direction: -cp.direction,
                shift: if head != 0.0 {
                    regime / head - 1.0
                } else {
                    0.0
                },
            });
            offset += end;
            continue;
        }
        cp.index += offset;
        offset = cp.index;
        out.push(cp);
    }
    out
}

/// The first CUSUM threshold crossing in `series`, standardized by the
/// whole slice's median/MAD (see [`cusum_changepoints`]).
fn first_changepoint(series: &[f64], k: f64, h: f64) -> Option<Changepoint> {
    if series.len() < 4 {
        return None;
    }
    let scores = mad_scores(series);
    let m = median(series);
    let (mut s_hi, mut s_lo) = (0.0f64, 0.0f64);
    let (mut hi_start, mut lo_start) = (0usize, 0usize);
    for (i, &z) in scores.iter().enumerate() {
        let prev_hi = s_hi;
        let prev_lo = s_lo;
        s_hi = (s_hi + z - k).max(0.0);
        s_lo = (s_lo + z + k).min(0.0);
        if prev_hi == 0.0 && s_hi > 0.0 {
            hi_start = i;
        }
        if prev_lo == 0.0 && s_lo < 0.0 {
            lo_start = i;
        }
        if s_hi > h || s_lo < -h {
            let (direction, start) = if s_hi > h {
                (1, hi_start)
            } else {
                (-1, lo_start)
            };
            let regime = median(&series[start..]);
            let shift = if m != 0.0 { regime / m - 1.0 } else { 0.0 };
            return Some(Changepoint {
                index: start,
                direction,
                shift,
            });
        }
    }
    None
}

/// Baseline-rotation policy: when the `window` most recent runs of a
/// series *all* sit below the committed baseline by more than `margin`
/// (relative, e.g. `0.05` = 5% faster), the baseline is stale and a new
/// one — the median of that window — is proposed. Returns `None` while
/// any recent run still touches the baseline, or when fewer than `window`
/// runs exist.
pub fn propose_baseline(series: &[f64], baseline: f64, window: usize, margin: f64) -> Option<f64> {
    if window == 0 || series.len() < window || baseline <= 0.0 {
        return None;
    }
    let recent = &series[series.len() - window..];
    let cutoff = baseline * (1.0 - margin);
    if recent.iter().all(|&x| x < cutoff) {
        Some(median(recent))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(3.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ecdf_fraction_and_percentile() {
        let mut e = Ecdf::new();
        e.extend((1..=100).map(|i| i as f64));
        assert_eq!(e.len(), 100);
        assert!((e.fraction_at_most(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.fraction_at_most(0.0), 0.0);
        assert_eq!(e.fraction_at_most(1000.0), 1.0);
        assert_eq!(e.percentile(90.0), 90.0);
        assert_eq!(e.percentile(0.0), 1.0);
        assert_eq!(e.percentile(100.0), 100.0);
    }

    #[test]
    fn ecdf_merge() {
        let mut a = Ecdf::new();
        a.extend([1.0, 2.0]);
        let mut b = Ecdf::new();
        b.extend([3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.fraction_at_most(2.0), 0.5);
    }

    #[test]
    fn wilson_contains_truth_and_shrinks() {
        let (lo1, hi1) = wilson_interval(50, 100);
        let (lo2, hi2) = wilson_interval(5_000, 10_000);
        assert!(lo1 < 0.5 && 0.5 < hi1);
        assert!(lo2 < 0.5 && 0.5 < hi2);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn median_ci_contains_median_and_shrinks() {
        let small: Vec<f64> = (1..=25).map(f64::from).collect();
        let large: Vec<f64> = (1..=2500).map(f64::from).collect();
        let (lo1, hi1) = median_ci(&small);
        let (lo2, hi2) = median_ci(&large);
        assert!(lo1 <= 13.0 && 13.0 <= hi1);
        assert!(lo2 <= 1250.5 && 1250.5 <= hi2);
        // Relative width shrinks roughly as 1/sqrt(n).
        assert!((hi2 - lo2) / 1250.0 < (hi1 - lo1) / 13.0);
    }

    #[test]
    fn median_ci_small_samples_degenerate_to_range() {
        assert_eq!(median_ci(&[7.0]), (7.0, 7.0));
        assert_eq!(median_ci(&[3.0, 1.0]), (1.0, 3.0));
        let (lo, hi) = median_ci(&[5.0, 1.0, 3.0]);
        assert_eq!((lo, hi), (1.0, 5.0));
    }

    #[test]
    fn median_ci_is_order_independent() {
        let a = [9.0, 2.0, 7.0, 4.0, 6.0, 1.0, 8.0, 3.0, 5.0, 10.0];
        let mut b = a;
        b.reverse();
        assert_eq!(median_ci(&a), median_ci(&b));
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mad(&[1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn mad_scores_flag_outliers_not_jitter() {
        // Tight cluster plus one wild point: only the wild point scores
        // beyond the conventional 3.5 threshold.
        let xs = [10.0, 10.1, 9.9, 10.05, 9.95, 10.0, 30.0];
        let scores = mad_scores(&xs);
        assert!(scores[6] > 3.5, "outlier score {}", scores[6]);
        for (i, s) in scores.iter().enumerate().take(6) {
            assert!(s.abs() < 3.5, "point {i} falsely flagged: {s}");
        }
        assert!(mad_scores(&[]).is_empty());
    }

    #[test]
    fn mad_scores_survive_degenerate_scale() {
        // All-identical series: MAD is 0; scores must stay finite zeros.
        let flat = [7.0; 8];
        assert!(mad_scores(&flat).iter().all(|&s| s == 0.0));
        // Identical majority + deviant: the deviant scores huge but finite.
        let mut xs = vec![7.0; 8];
        xs.push(14.0);
        let scores = mad_scores(&xs);
        assert!(scores[8].is_finite() && scores[8] > 1e5);
    }

    #[test]
    fn cusum_detects_upward_step_at_right_epoch() {
        // 8 clean points, then a persistent 2x regression.
        let mut xs = vec![100.0, 101.0, 99.0, 100.5, 100.0, 99.5, 100.2, 100.0];
        xs.extend([200.0, 201.0, 199.0]);
        let cps = cusum_changepoints(&xs, CUSUM_K, CUSUM_H);
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert_eq!(cps[0].index, 8);
        assert_eq!(cps[0].direction, 1);
        assert!((cps[0].shift - 1.0).abs() < 0.1, "shift {}", cps[0].shift);
    }

    #[test]
    fn cusum_detects_downward_step_and_flat_series_is_quiet() {
        let mut xs = vec![100.0; 8];
        xs.extend([50.0, 50.0, 50.0]);
        let cps = cusum_changepoints(&xs, CUSUM_K, CUSUM_H);
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert_eq!(cps[0].direction, -1);
        assert_eq!(cps[0].index, 8);

        assert!(cusum_changepoints(&[100.0; 20], CUSUM_K, CUSUM_H).is_empty());
        // Noisy but stationary: no detections.
        let noisy: Vec<f64> = (0..40).map(|i| 100.0 + ((i * 7) % 5) as f64).collect();
        assert!(cusum_changepoints(&noisy, CUSUM_K, CUSUM_H).is_empty());
    }

    #[test]
    fn cusum_head_regime_reports_return_and_cannot_mask_later_shifts() {
        // The series *opens* on a slower regime (an archived
        // pre-optimization head): the drop to the bulk is reported as a
        // downward changepoint at the return index, measured against the
        // head.
        let mut xs = vec![200.0, 201.0];
        xs.extend([100.0; 9]);
        let cps = cusum_changepoints(&xs, CUSUM_K, CUSUM_H);
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert_eq!(cps[0].index, 2);
        assert_eq!(cps[0].direction, -1);
        assert!((cps[0].shift + 0.5).abs() < 0.1, "shift {}", cps[0].shift);

        // And the head must not swallow a genuine regression after it:
        // detection continues past the return boundary.
        xs.extend([200.0, 199.0, 201.0]);
        let cps = cusum_changepoints(&xs, CUSUM_K, CUSUM_H);
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert_eq!((cps[1].index, cps[1].direction), (11, 1));
        assert!((cps[1].shift - 1.0).abs() < 0.1, "shift {}", cps[1].shift);

        // A 50/50 split is a noisy stationary series to the robust
        // scale, not a head regime: no report.
        assert!(cusum_changepoints(&[300.0, 300.0, 1.0, 1.0], CUSUM_K, CUSUM_H).is_empty());

        // A majority-regression series (short clean head, long shifted
        // bulk) is the other masked shape: the bulk *is* the median, so
        // the old detector saw only an index-0 excursion and reported
        // nothing. The return boundary is the regression.
        let xs = [
            100.0, 100.0, 100.0, 100.0, 200.0, 200.0, 200.0, 200.0, 200.0, 200.0,
        ];
        let cps = cusum_changepoints(&xs, CUSUM_K, CUSUM_H);
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert_eq!((cps[0].index, cps[0].direction), (4, 1));
        assert!((cps[0].shift - 1.0).abs() < 0.1, "shift {}", cps[0].shift);
    }

    #[test]
    fn cusum_short_series_report_nothing() {
        assert!(cusum_changepoints(&[1.0, 100.0, 1.0], CUSUM_K, CUSUM_H).is_empty());
    }

    #[test]
    fn propose_baseline_requires_full_window_below_margin() {
        // Last 3 runs all >5% under the baseline: propose their median.
        let xs = [100.0, 100.0, 80.0, 82.0, 81.0];
        assert_eq!(propose_baseline(&xs, 100.0, 3, 0.05), Some(81.0));
        // One recent run touching the baseline vetoes the proposal.
        let xs = [100.0, 80.0, 96.0, 81.0];
        assert_eq!(propose_baseline(&xs, 100.0, 3, 0.05), None);
        // Too few runs, or a degenerate baseline: no proposal.
        assert_eq!(propose_baseline(&[80.0], 100.0, 3, 0.05), None);
        assert_eq!(propose_baseline(&xs, 0.0, 3, 0.05), None);
        assert_eq!(propose_baseline(&xs, 100.0, 0, 0.05), None);
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 10);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.5);
        let (lo, hi) = wilson_interval(10, 10);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.5);
    }
}
