//! A small seeded property-testing harness.
//!
//! The workspace's invariant suites (address-map round trips, GF(2)
//! invertibility, repair-plan way limits, …) need random structured inputs,
//! failure shrinking, and reproducible runs — but not a general-purpose
//! framework. This module provides the minimal version of that contract,
//! in the style of Hypothesis/minithesis: every generated value is derived
//! from a recorded stream of bounded integer *choices*, and shrinking
//! operates on that stream (delete choices, zero them, halve them),
//! re-running the property and keeping only candidates that still fail.
//! Because generators are plain functions of a [`Source`], any shrunk
//! choice stream replays to a valid value of the same shape.
//!
//! Runs are deterministic: the case seed is fixed (override with the
//! `RF_PROP_SEED` environment variable to explore different corners), so a
//! failure reported by CI reproduces locally with no extra state.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::prop::{self, Source};
//! use relaxfault_util::prop_assert;
//!
//! fn arb_pair(src: &mut Source) -> (u32, u32) {
//!     let a = src.u32(0, 100);
//!     (a, src.u32(a, 100))
//! }
//!
//! prop::check(64, |src| {
//!     let (lo, hi) = arb_pair(src);
//!     prop_assert!(lo <= hi, "generator must order the pair");
//!     Ok(())
//! });
//! ```

use crate::rng::{mix64, Rng, Rng64};

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failed {
    /// A `prop_assume!` precondition did not hold; the case is discarded
    /// and does not count against the property.
    Assumption,
    /// A `prop_assert!`-family assertion failed with this message.
    Assertion(String),
}

/// Result of one property invocation.
pub type PropResult = Result<(), Failed>;

/// Fails the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::Failed::Assertion(format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::Failed::Assertion(format!(
                "{} (`{}`) at {}:{}",
                format!($($fmt)+),
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::Failed::Assertion(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::prop::Failed::Assertion(format!(
                "{}: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                format!($($fmt)+),
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the property unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::prop::Failed::Assertion(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::Failed::Assumption);
        }
    };
}

/// The choice stream a property draws its input from.
///
/// Fresh runs draw from a seeded [`Rng64`] and record every choice; shrink
/// replays force a candidate stream back through the same generators
/// (out-of-range values wrap, exhausted streams continue with zeros), so
/// any stream decodes to a structurally valid input.
pub struct Source {
    rng: Rng64,
    forced: Vec<u64>,
    recorded: Vec<u64>,
    replaying: bool,
}

impl Source {
    fn fresh(seed: u64) -> Self {
        Self {
            rng: Rng64::seed_from_u64(seed),
            forced: Vec::new(),
            recorded: Vec::new(),
            replaying: false,
        }
    }

    fn replay(forced: Vec<u64>) -> Self {
        Self {
            rng: Rng64::seed_from_u64(0),
            forced,
            recorded: Vec::new(),
            replaying: true,
        }
    }

    /// A source that draws fresh random choices from `seed`, for running a
    /// generator outside [`check`] (e.g. smoke drivers).
    pub fn from_seed(seed: u64) -> Self {
        Self::fresh(seed)
    }

    /// A source that replays a recorded choice stream through the same
    /// generators (out-of-range values wrap, an exhausted stream continues
    /// with zeros). This is how an externally stored counterexample — say a
    /// repro JSON — is decoded back into the value it describes.
    pub fn from_choices(choices: Vec<u64>) -> Self {
        Self::replay(choices)
    }

    /// The canonical choice stream drawn so far; replaying it through the
    /// same generator reproduces the generated value exactly.
    pub fn choices(&self) -> &[u64] {
        &self.recorded
    }

    /// Draws one choice in `[0, span)`; `span == 0` means the full u64
    /// domain. All typed draws funnel through here so the recorded stream
    /// is the complete description of the generated value.
    fn draw(&mut self, span: u64) -> u64 {
        let i = self.recorded.len();
        let off = if i < self.forced.len() {
            let f = self.forced[i];
            if span == 0 {
                f
            } else {
                f % span
            }
        } else if self.replaying {
            0
        } else if span == 0 {
            self.rng.gen()
        } else {
            self.rng.gen_range(0..=span - 1)
        };
        self.recorded.push(off);
        off
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        // hi - lo + 1 wraps to 0 exactly when the range is the full domain,
        // which is the span encoding draw() expects.
        lo.wrapping_add(self.draw((hi - lo).wrapping_add(1)))
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform boolean (shrinks toward `false`).
    pub fn bool(&mut self) -> bool {
        self.u64(0, 1) == 1
    }

    /// Uniform `f64` in `[0, 1)` (shrinks toward 0).
    pub fn f64_unit(&mut self) -> f64 {
        (self.draw(0) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks one of `n` alternatives (shrinks toward the first) — the
    /// building block for `oneof`-style generators.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choice_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "choice_index needs at least one alternative");
        self.usize(0, n - 1)
    }

    /// A vector of `len_lo..=len_hi` elements drawn by `f` (shrinks toward
    /// shorter vectors of smaller elements).
    pub fn vec<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let len = self.usize(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// Picks an index with probability proportional to its weight, using a
    /// single choice (shrinks toward index 0 — put the simplest alternative
    /// first). The building block for generators biased toward the corner
    /// cases a uniform `choice_index` rarely reaches.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted needs a nonzero total weight");
        let mut pick = self.u64(0, total - 1);
        for (i, &w) in weights.iter().enumerate() {
            if pick < w as u64 {
                return i;
            }
            pick -= w as u64;
        }
        unreachable!("pick bounded by total weight")
    }
}

fn base_seed() -> u64 {
    match std::env::var("RF_PROP_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("RF_PROP_SEED must be a u64, got {s:?}")),
        // Arbitrary fixed constant: runs are reproducible by default.
        Err(_) => 0x5EED_2016,
    }
}

/// A shrunk failing input, as found by [`find_counterexample`]: the
/// minimal choice stream plus enough metadata to reproduce the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// Minimal choice stream; decode with [`Source::from_choices`].
    pub choices: Vec<u64>,
    /// The (shrunk) assertion message.
    pub message: String,
    /// The base seed of the run that found it.
    pub seed: u64,
    /// Which generated case first failed (before shrinking).
    pub case: u64,
}

/// Runs `property` against `cases` generated inputs; on failure, shrinks
/// the choice stream and panics with the minimal reproduction.
///
/// The property draws its input from the [`Source`] and returns `Ok(())`
/// to pass, or fails via the `prop_assert!` / `prop_assume!` macros.
///
/// # Panics
///
/// Panics if any case fails (after shrinking) or if too many cases are
/// discarded by `prop_assume!`.
pub fn check<F>(cases: u32, mut property: F)
where
    F: FnMut(&mut Source) -> PropResult,
{
    if let Some(ce) = find_counterexample(cases, &mut property) {
        panic!(
            "property failed (seed {}, case {}): {}\n\
             minimal choice stream: {:?}",
            ce.seed, ce.case, ce.message, ce.choices
        );
    }
}

/// Like [`check`], but returns the shrunk failing input instead of
/// panicking, so callers (e.g. a repro emitter) can persist it.
///
/// # Panics
///
/// Panics if too many cases are discarded by `prop_assume!`.
pub fn find_counterexample<F>(cases: u32, mut property: F) -> Option<CounterExample>
where
    F: FnMut(&mut Source) -> PropResult,
{
    let seed = base_seed();
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = cases as u64 * 10 + 100;
    while passed < cases {
        if attempt >= max_attempts {
            panic!(
                "property discarded too many cases: {passed}/{cases} passed \
                 in {attempt} attempts (weaken the prop_assume! precondition)"
            );
        }
        let mut src = Source::fresh(mix64(seed, attempt, 0));
        attempt += 1;
        match property(&mut src) {
            Ok(()) => passed += 1,
            Err(Failed::Assumption) => {}
            Err(Failed::Assertion(msg)) => {
                let (choices, message) = shrink(&mut property, src.recorded, msg);
                return Some(CounterExample {
                    choices,
                    message,
                    seed,
                    case: attempt - 1,
                });
            }
        }
    }
    None
}

/// Replays `candidate`; returns the canonical recorded stream and message
/// if the property still fails.
fn try_fail<F>(property: &mut F, candidate: &[u64]) -> Option<(Vec<u64>, String)>
where
    F: FnMut(&mut Source) -> PropResult,
{
    let mut src = Source::replay(candidate.to_vec());
    match property(&mut src) {
        Err(Failed::Assertion(msg)) => Some((src.recorded, msg)),
        _ => None,
    }
}

/// Stream-level shrinking: repeatedly try simpler streams (shorter, then
/// pointwise smaller), keeping any that still fail, until a fixpoint or
/// the attempt budget runs out.
fn shrink<F>(property: &mut F, mut best: Vec<u64>, mut msg: String) -> (Vec<u64>, String)
where
    F: FnMut(&mut Source) -> PropResult,
{
    let simpler = |a: &[u64], b: &[u64]| (a.len(), a) < (b.len(), b);
    let mut budget = 1000u32;
    let mut improved = true;
    while improved && budget > 0 {
        improved = false;

        // Pass 1: drop trailing choices, halving the cut until it sticks.
        let mut cut = best.len();
        while cut > 0 && budget > 0 {
            budget -= 1;
            match try_fail(property, &best[..best.len() - cut]) {
                Some((rec, m)) if simpler(&rec, &best) => {
                    best = rec;
                    msg = m;
                    improved = true;
                    cut = cut.min(best.len());
                }
                _ => cut /= 2,
            }
        }

        // Pass 2: delete interior chunks (collapses vector elements).
        for size in [8usize, 4, 2, 1] {
            let mut start = best.len().saturating_sub(size);
            loop {
                if budget == 0 || best.len() < size {
                    break;
                }
                if start + size <= best.len() {
                    let mut cand = best.clone();
                    cand.drain(start..start + size);
                    budget -= 1;
                    if let Some((rec, m)) = try_fail(property, &cand) {
                        if simpler(&rec, &best) {
                            best = rec;
                            msg = m;
                            improved = true;
                        }
                    }
                }
                if start == 0 {
                    break;
                }
                start -= 1;
            }
        }

        // Pass 3: minimize individual choices (zero, then halve, then -1).
        for pos in (0..best.len()).rev() {
            if best.get(pos).copied().unwrap_or(0) == 0 {
                continue;
            }
            for replacement in [0, best[pos] / 2, best[pos] - 1] {
                if budget == 0 || pos >= best.len() || replacement >= best[pos] {
                    break;
                }
                let mut cand = best.clone();
                cand[pos] = replacement;
                budget -= 1;
                if let Some((rec, m)) = try_fail(property, &cand) {
                    if simpler(&rec, &best) {
                        best = rec;
                        msg = m;
                        improved = true;
                        break;
                    }
                }
            }
        }
    }
    (best, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0;
        check(50, |src| {
            runs += 1;
            let v = src.u64(3, 9);
            prop_assert!((3..=9).contains(&v));
            Ok(())
        });
        assert_eq!(runs, 50);
    }

    #[test]
    fn draws_cover_range_and_respect_bounds() {
        let mut seen = [false; 5];
        check(200, |src| {
            let v = src.usize(0, 4);
            seen[v] = true;
            let f = src.f64_unit();
            prop_assert!((0.0..1.0).contains(&f));
            let items = src.vec(1, 4, |s| s.u32(10, 20));
            prop_assert!((1..=4).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| (10..=20).contains(&x)));
            Ok(())
        });
        assert!(
            seen.iter().all(|&s| s),
            "small range fully covered: {seen:?}"
        );
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(200, |src| {
                let v = src.u64(0, 1000);
                prop_assert!(v < 37, "value {v}");
                Ok(())
            });
        }));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        // The minimal counterexample to `v < 37` is exactly 37.
        assert!(msg.contains("value 37"), "shrunk message: {msg}");
        assert!(msg.contains("[37]"), "minimal stream: {msg}");
    }

    #[test]
    fn shrinking_preserves_structure() {
        // Failing inputs are vectors with a duplicate; the shrunk
        // counterexample should be the smallest such vector: [0, 0].
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(500, |src| {
                let v = src.vec(0, 8, |s| s.u64(0, 50));
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert!(sorted.len() == v.len(), "dup in {v:?}");
                Ok(())
            });
        }));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("dup in [0, 0]"), "shrunk message: {msg}");
    }

    #[test]
    fn assume_discards_without_failing() {
        let mut evens = 0;
        check(30, |src| {
            let v = src.u64(0, 100);
            prop_assume!(v % 2 == 0);
            evens += 1;
            prop_assert!(v % 2 == 0);
            Ok(())
        });
        assert_eq!(evens, 30);
    }

    #[test]
    fn impossible_assumption_reports_discards() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(10, |src| {
                let v = src.u64(0, 10);
                prop_assume!(v > 10);
                Ok(())
            });
        }));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discarded too many"), "{msg}");
    }

    #[test]
    fn choice_index_is_bounded_and_shrinks_first() {
        check(100, |src| {
            let c = src.choice_index(3);
            prop_assert!(c < 3);
            Ok(())
        });
        // Zero stream decodes every choice to the first alternative.
        let mut src = Source::replay(vec![]);
        assert_eq!(src.choice_index(5), 0);
        assert!(!src.bool());
        assert_eq!(src.u64(7, 20), 7);
        assert_eq!(src.f64_unit(), 0.0);
    }

    #[test]
    fn weighted_is_bounded_biased_and_shrinks_first() {
        let mut hits = [0u32; 3];
        check(300, |src| {
            let i = src.weighted(&[1, 0, 8]);
            prop_assert!(i < 3);
            prop_assert!(i != 1, "zero-weight alternative must never fire");
            hits[i] += 1;
            Ok(())
        });
        assert!(
            hits[2] > hits[0],
            "8:1 weighting should favour the heavy arm: {hits:?}"
        );
        // The zero stream decodes to the first nonzero-weight alternative.
        let mut src = Source::from_choices(vec![]);
        assert_eq!(src.weighted(&[2, 5]), 0);
        let mut src = Source::from_choices(vec![]);
        assert_eq!(src.weighted(&[0, 5]), 1);
    }

    #[test]
    fn find_counterexample_returns_shrunk_stream() {
        let ce = find_counterexample(200, |src| {
            let v = src.u64(0, 1000);
            prop_assert!(v < 37, "value {v}");
            Ok(())
        })
        .expect("property must fail");
        assert_eq!(ce.choices, vec![37]);
        assert!(ce.message.contains("value 37"), "{}", ce.message);
        // Replaying the stored stream reproduces the failing value.
        let mut src = Source::from_choices(ce.choices);
        assert_eq!(src.u64(0, 1000), 37);
        // And a passing property yields no counterexample.
        assert!(find_counterexample(50, |src| {
            let _ = src.u64(0, 10);
            Ok(())
        })
        .is_none());
    }

    #[test]
    fn replay_reproduces_recorded_stream() {
        let mut fresh = Source::fresh(99);
        let a = (
            fresh.u64(0, 1 << 20),
            fresh.bool(),
            fresh.vec(0, 6, |s| s.u32(0, 9)),
        );
        let stream = fresh.recorded.clone();
        let mut replayed = Source::replay(stream);
        let b = (
            replayed.u64(0, 1 << 20),
            replayed.bool(),
            replayed.vec(0, 6, |s| s.u32(0, 9)),
        );
        assert_eq!(a, b);
    }
}
