//! Bit-field manipulation and linear maps over GF(2).
//!
//! Hardware address mappings scatter contiguous logical fields (row, column,
//! bank, ...) across physical address bits and often XOR-fold high bits into
//! low ones ("bank hashing", "cache set-index hashing"). All of these are
//! linear transforms of the address interpreted as a vector over GF(2), so a
//! small bit-matrix type lets us build, compose, and *verify* them.

/// Extracts the `width`-bit field starting at `lsb` from `value`.
///
/// # Panics
///
/// Panics if `lsb + width > 64` or `width == 0 && lsb >= 64`.
///
/// # Examples
///
/// ```
/// use relaxfault_util::bits::extract;
/// assert_eq!(extract(0b1011_0100, 2, 4), 0b1101);
/// ```
#[inline]
pub fn extract(value: u64, lsb: u32, width: u32) -> u64 {
    assert!(
        lsb + width <= 64,
        "field out of range: lsb={lsb} width={width}"
    );
    if width == 0 {
        return 0;
    }
    (value >> lsb) & mask(width)
}

/// Deposits the low `width` bits of `field` into `value` at position `lsb`,
/// replacing whatever was there.
///
/// # Panics
///
/// Panics if `lsb + width > 64` or if `field` does not fit in `width` bits.
///
/// # Examples
///
/// ```
/// use relaxfault_util::bits::deposit;
/// assert_eq!(deposit(0, 2, 4, 0b1101), 0b0011_0100);
/// ```
#[inline]
pub fn deposit(value: u64, lsb: u32, width: u32, field: u64) -> u64 {
    assert!(
        lsb + width <= 64,
        "field out of range: lsb={lsb} width={width}"
    );
    assert!(
        width == 64 || field <= mask(width),
        "field value {field:#x} wider than {width} bits"
    );
    if width == 0 {
        return value;
    }
    (value & !(mask(width) << lsb)) | (field << lsb)
}

/// Returns a mask with the low `width` bits set.
///
/// # Panics
///
/// Panics if `width > 64`.
#[inline]
pub fn mask(width: u32) -> u64 {
    assert!(width <= 64);
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Parity (XOR-reduction) of the set bits of `x`, as 0 or 1.
#[inline]
pub fn parity(x: u64) -> u64 {
    (x.count_ones() & 1) as u64
}

/// Number of bits required to represent values `0..n` (i.e. `ceil(log2(n))`).
///
/// By convention `bits_for(0)` and `bits_for(1)` are `0`.
///
/// # Examples
///
/// ```
/// use relaxfault_util::bits::bits_for;
/// assert_eq!(bits_for(8), 3);
/// assert_eq!(bits_for(9), 4);
/// assert_eq!(bits_for(1), 0);
/// ```
#[inline]
pub fn bits_for(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// A linear map over GF(2) on up to 64-bit vectors.
///
/// Row `i` of the matrix is a 64-bit mask; output bit `i` of
/// [`BitMatrix::apply`] is the parity of `input & row[i]`. This is the
/// standard model for XOR-based address hashes: each output (set-index) bit
/// is the XOR of a subset of input (address) bits.
///
/// # Examples
///
/// ```
/// use relaxfault_util::bits::BitMatrix;
///
/// // set = index ^ tag_low  (a 2-bit XOR hash folding bits 2..4 onto 0..2)
/// let hash = BitMatrix::from_rows(2, &[0b0101, 0b1010]);
/// assert_eq!(hash.apply(0b1100), 0b11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    out_bits: u32,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// Identity map on `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn identity(n: u32) -> Self {
        assert!(n <= 64);
        Self {
            out_bits: n,
            rows: (0..n).map(|i| 1u64 << i).collect(),
        }
    }

    /// Builds a matrix from explicit rows (row `i` produces output bit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != out_bits as usize` or `out_bits > 64`.
    pub fn from_rows(out_bits: u32, rows: &[u64]) -> Self {
        assert!(out_bits <= 64);
        assert_eq!(
            rows.len(),
            out_bits as usize,
            "row count must match out_bits"
        );
        Self {
            out_bits,
            rows: rows.to_vec(),
        }
    }

    /// Number of output bits.
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// The row masks (one per output bit).
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Applies the map to `input`.
    #[inline]
    pub fn apply(&self, input: u64) -> u64 {
        let mut out = 0u64;
        for (i, &row) in self.rows.iter().enumerate() {
            out |= parity(input & row) << i;
        }
        out
    }

    /// XORs another map of identical shape into this one
    /// (pointwise addition over GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if the two maps have different `out_bits`.
    pub fn xor_with(&mut self, other: &BitMatrix) {
        assert_eq!(self.out_bits, other.out_bits);
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a ^= b;
        }
    }

    /// Rank of the matrix restricted to the `in_bits` low input columns.
    pub fn rank(&self, in_bits: u32) -> u32 {
        let m = mask(in_bits);
        let mut basis: Vec<u64> = Vec::new();
        for &row in &self.rows {
            let mut v = row & m;
            for &b in &basis {
                v = v.min(v ^ b);
            }
            if v != 0 {
                basis.push(v);
                basis.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        basis.len() as u32
    }

    /// Whether the map is a bijection from `out_bits`-wide inputs to
    /// `out_bits`-wide outputs (square and full-rank).
    pub fn is_invertible(&self) -> bool {
        self.rank(self.out_bits) == self.out_bits
    }

    /// Returns whether the restriction of this map to the input subspace
    /// spanned by the given input-bit positions is injective.
    ///
    /// This is the question repair planning cares about: "if addresses vary
    /// only in these (e.g. column) bits, do they land in distinct sets?"
    pub fn injective_on(&self, input_bits: &[u32]) -> bool {
        // Columns of the matrix restricted to the chosen inputs, expressed in
        // the output space; injectivity == columns linearly independent.
        let mut basis: Vec<u64> = Vec::new();
        for &bit in input_bits {
            let mut col = 0u64;
            for (i, &row) in self.rows.iter().enumerate() {
                col |= ((row >> bit) & 1) << i;
            }
            let mut v = col;
            for &b in &basis {
                v = v.min(v ^ b);
            }
            if v == 0 {
                return false;
            }
            basis.push(v);
            basis.sort_unstable_by(|a, b| b.cmp(a));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_deposit_roundtrip() {
        let v = deposit(0, 7, 9, 0x1AB);
        assert_eq!(extract(v, 7, 9), 0x1AB);
        assert_eq!(extract(v, 0, 7), 0);
        assert_eq!(extract(v, 16, 16), 0);
    }

    #[test]
    fn deposit_replaces_existing_field() {
        let v = deposit(u64::MAX, 4, 4, 0b0101);
        assert_eq!(extract(v, 4, 4), 0b0101);
        assert_eq!(extract(v, 0, 4), 0b1111);
        assert_eq!(extract(v, 8, 8), 0xFF);
    }

    #[test]
    fn zero_width_fields_are_inert() {
        assert_eq!(extract(0xDEAD, 3, 0), 0);
        assert_eq!(deposit(0xDEAD, 3, 0, 0), 0xDEAD);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn deposit_rejects_oversized_field() {
        deposit(0, 0, 2, 0b100);
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(65536), 16);
        assert_eq!(bits_for(65537), 17);
    }

    #[test]
    fn identity_is_invertible_and_inert() {
        let id = BitMatrix::identity(13);
        assert!(id.is_invertible());
        assert_eq!(id.apply(0x1ABC), 0x1ABC & mask(13));
    }

    #[test]
    fn xor_hash_is_still_bijective_on_index() {
        // set = index ^ tag_low: as a map of the *index* bits alone it is
        // the identity, hence injective on them.
        let mut m = BitMatrix::identity(13);
        let fold = BitMatrix::from_rows(13, &(0..13).map(|i| 1u64 << (i + 13)).collect::<Vec<_>>());
        m.xor_with(&fold);
        assert!(m.injective_on(&(0..13).collect::<Vec<_>>()));
        assert!(m.injective_on(&(13..26).collect::<Vec<_>>()));
        // But varying an index bit and the tag bit it folds with together is
        // not injective: both map to the same output bit.
        assert!(!m.injective_on(&[0, 13]));
    }

    #[test]
    fn rank_detects_degenerate_maps() {
        let m = BitMatrix::from_rows(3, &[0b001, 0b010, 0b011]);
        assert_eq!(m.rank(3), 2);
        assert!(!m.is_invertible());
    }

    #[test]
    fn parity_matches_count_ones() {
        for x in [0u64, 1, 0b1011, u64::MAX] {
            assert_eq!(parity(x), (x.count_ones() as u64) & 1);
        }
    }
}
