//! Random distributions for the Monte Carlo fault model.
//!
//! Implemented directly on [`crate::rng::Rng`] so that the numeric recipe
//! is visible and stable: Knuth multiplication for small-mean Poisson with
//! a normal approximation above a documented cutoff, Box–Muller for
//! normals, and the usual transforms for lognormal / log-uniform.

use crate::rng::Rng;

/// Mean above which [`poisson`] switches from Knuth's multiplication method
/// to a rounded normal approximation. The DRAM fault processes modelled in
/// this workspace have means far below this, so the approximation only
/// matters for stress tests.
pub const POISSON_NORMAL_CUTOFF: f64 = 256.0;

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for `mean <= POISSON_NORMAL_CUTOFF`
/// (exact, O(mean) uniforms) and a continuity-corrected normal approximation
/// above it.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
///
/// # Examples
///
/// ```
/// use relaxfault_util::rng::Rng64;
/// let mut rng = Rng64::seed_from_u64(7);
/// let n = relaxfault_util::dist::poisson(&mut rng, 0.5);
/// assert!(n < 20);
/// ```
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be finite and >= 0"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean <= POISSON_NORMAL_CUTOFF {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let sample = mean + mean.sqrt() * standard_normal(rng) + 0.5;
        if sample < 0.0 {
            0
        } else {
            sample as u64
        }
    }
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0): map the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A lognormal distribution parameterized by its *arithmetic* mean and
/// coefficient of variation (std/mean), which is how the paper specifies the
/// device-to-device FIT variation ("a variance that is 1/4 of the mean").
///
/// # Examples
///
/// ```
/// use relaxfault_util::dist::LogNormal;
/// use relaxfault_util::rng::Rng64;
///
/// let ln = LogNormal::from_mean_cv(2.0, 0.5);
/// let mut rng = Rng64::seed_from_u64(1);
/// let mut sum = 0.0;
/// for _ in 0..20_000 { sum += ln.sample(&mut rng); }
/// assert!((sum / 20_000.0 - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Builds the distribution whose arithmetic mean is `mean` and whose
    /// coefficient of variation is `cv`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`, or either is not finite.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv >= 0.0, "cv must be >= 0");
        let sigma2 = (1.0 + cv * cv).ln();
        Self {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Underlying normal location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Underlying normal scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Samples log-uniformly from `[lo, hi]`: `exp(U(ln lo, ln hi))`.
///
/// Used for the size distribution of bank-level fault clusters, where field
/// studies only constrain the order of magnitude.
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi < lo`, or either is not finite.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo);
    if lo == hi {
        return lo;
    }
    (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
}

/// Draws `count` event times uniformly over `[0, horizon)` and returns them
/// sorted ascending — the standard order-statistics construction for a
/// homogeneous Poisson process conditioned on its count.
pub fn sorted_event_times<R: Rng + ?Sized>(rng: &mut R, count: usize, horizon: f64) -> Vec<f64> {
    let mut times: Vec<f64> = (0..count).map(|_| rng.gen::<f64>() * horizon).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn poisson_small_mean_matches_moments() {
        let mut rng = Rng64::seed_from_u64(11);
        let mean = 0.8;
        let n = 200_000;
        let mut sum = 0u64;
        let mut sumsq = 0u64;
        for _ in 0..n {
            let k = poisson(&mut rng, mean);
            sum += k;
            sumsq += k * k;
        }
        let m = sum as f64 / n as f64;
        let var = sumsq as f64 / n as f64 - m * m;
        assert!((m - mean).abs() < 0.01, "mean {m}");
        assert!((var - mean).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_rare_events_hit_expected_rate() {
        // The regime the fault model lives in: P(k >= 1) ~= mean.
        let mut rng = Rng64::seed_from_u64(5);
        let mean = 1e-3;
        let n = 2_000_000;
        let hits = (0..n).filter(|_| poisson(&mut rng, mean) > 0).count();
        let p = hits as f64 / n as f64;
        assert!((p - mean).abs() < 2e-4, "p={p}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx_sanely() {
        let mut rng = Rng64::seed_from_u64(19);
        let mean = 10_000.0;
        let n = 2_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += poisson(&mut rng, mean) as f64;
        }
        let m = sum / n as f64;
        assert!((m - mean).abs() < 20.0, "mean {m}");
    }

    #[test]
    fn lognormal_mean_and_cv() {
        let ln = LogNormal::from_mean_cv(5.0, 0.5);
        let mut rng = Rng64::seed_from_u64(23);
        let n = 300_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = ln.sample(&mut rng);
            assert!(x > 0.0);
            sum += x;
            sumsq += x * x;
        }
        let m = sum / n as f64;
        let var = sumsq / n as f64 - m * m;
        let cv = var.sqrt() / m;
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((cv - 0.5).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_constant() {
        let ln = LogNormal::from_mean_cv(3.0, 0.0);
        let mut rng = Rng64::seed_from_u64(2);
        for _ in 0..10 {
            assert!((ln.sample(&mut rng) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = Rng64::seed_from_u64(29);
        for _ in 0..10_000 {
            let x = log_uniform(&mut rng, 4.0, 4096.0);
            assert!((4.0..=4096.0).contains(&x));
        }
        assert_eq!(log_uniform(&mut rng, 7.0, 7.0), 7.0);
    }

    #[test]
    fn log_uniform_median_is_geometric_mean() {
        let mut rng = Rng64::seed_from_u64(31);
        let n = 100_000;
        let gm = (4.0f64 * 4096.0).sqrt();
        let below = (0..n)
            .filter(|_| log_uniform(&mut rng, 4.0, 4096.0) < gm)
            .count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn event_times_sorted_and_bounded() {
        let mut rng = Rng64::seed_from_u64(37);
        let times = sorted_event_times(&mut rng, 100, 6.0);
        assert_eq!(times.len(), 100);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times.iter().all(|&t| (0.0..6.0).contains(&t)));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng64::seed_from_u64(41);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let m = sum / n as f64;
        let var = sumsq / n as f64 - m * m;
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
