//! Crash dumps: drain the telemetry plane on the way down.
//!
//! A multi-minute fleet run that panics (or hits the injected
//! `RF_FLEET_CRASH_AT` death) used to lose every event since start —
//! snapshots only materialize at clean exit. A [`CrashDump`] freezes what
//! the live plane knows at the moment of death into one
//! schema-versioned [`Persist`] artifact at
//! `results/obs/<run>.crashdump.json`:
//!
//! ```json
//! {"schema_version": 1, "kind": "crash_dump", "run": "...",
//!  "reason": "...", "wall_clock_ms": ...,
//!  "snapshot": { ... the full obs snapshot, manifest embedded ... },
//!  "flight":   [ ... recent events, merged-trace JSON schema ... ],
//!  "checkpoint": { ... embedded fleet_checkpoint document or null ... }}
//! ```
//!
//! The embedded checkpoint is what makes a dump *actionable* rather than
//! merely descriptive: it carries the `(seed, epoch, shard-digest)`
//! coordinates of the last durable state, so `relcheck replay` can
//! re-execute the run up to the crash bit-exactly, and `obs_validate`
//! gates the schema like every other artifact. The checkpoint is stored
//! as a raw JSON value — `util` stays ignorant of `relsim`'s types; the
//! consumer (`relcheck`) decodes it with `FleetCheckpoint::from_json`.
//!
//! [`install_panic_hook`] chains onto the default hook so *any* panic in
//! an instrumented binary leaves a dump (without a checkpoint — a panic
//! can strike anywhere, so only durable on-disk state is trustworthy);
//! the simulated-crash path in `fleet_forecast` calls
//! [`CrashDump::write`] directly with the newest on-disk checkpoint.

use crate::flight;
use crate::json::Value;
use crate::obs;
use crate::persist::{parse_u64_field, Persist};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The `kind` header tag of crash-dump artifacts.
pub const KIND: &str = "crash_dump";

/// Everything the live plane knew when the process died.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashDump {
    /// Run name (the artifact's file stem, before `.crashdump.json`).
    pub run: String,
    /// Human-readable cause: the panic message or the injected crash.
    pub reason: String,
    /// Wall-clock milliseconds since the epoch at dump time.
    pub wall_clock_ms: u64,
    /// The full obs snapshot (counters, gauges, histograms, manifest).
    pub snapshot: Value,
    /// Flight-recorder contents in the merged-trace JSON schema.
    pub flight: Value,
    /// The newest durable `fleet_checkpoint` document, when the dying run
    /// was a fleet simulation with checkpointing enabled.
    pub checkpoint: Option<Value>,
}

impl Persist for CrashDump {
    const KIND: &'static str = KIND;
    const SCHEMA_VERSION: u64 = 1;

    fn to_json(&self) -> Value {
        Value::object([
            ("schema_version", Value::from(Self::SCHEMA_VERSION)),
            ("kind", Value::from(Self::KIND)),
            ("run", Value::from(self.run.as_str())),
            ("reason", Value::from(self.reason.as_str())),
            ("wall_clock_ms", Value::from(self.wall_clock_ms)),
            ("snapshot", self.snapshot.clone()),
            ("flight", self.flight.clone()),
            ("checkpoint", self.checkpoint.clone().unwrap_or(Value::Null)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Self::check_header(v)?;
        let run = v
            .get("run")
            .and_then(Value::as_str)
            .ok_or("run must be a string")?
            .to_string();
        obs::validate_run_name(&run)?;
        let reason = v
            .get("reason")
            .and_then(Value::as_str)
            .ok_or("reason must be a string")?
            .to_string();
        if reason.is_empty() {
            return Err("reason must be non-empty".into());
        }
        let wall_clock_ms = parse_u64_field(v, "wall_clock_ms")?;
        let snapshot = v.get("snapshot").cloned().ok_or("missing snapshot")?;
        for section in ["manifest", "counters", "gauges", "histograms"] {
            if snapshot.get(section).is_none() {
                return Err(format!("snapshot missing its {section} section"));
            }
        }
        let flight = v.get("flight").cloned().ok_or("missing flight")?;
        if flight.as_array().is_none() {
            return Err("flight must be an array of events".into());
        }
        let checkpoint = match v.get("checkpoint") {
            None | Some(Value::Null) => None,
            Some(ckpt) => {
                if ckpt.get("kind").and_then(Value::as_str).is_none() {
                    return Err("checkpoint must be a kind-tagged object or null".into());
                }
                Some(ckpt.clone())
            }
        };
        Ok(CrashDump {
            run,
            reason,
            wall_clock_ms,
            snapshot,
            flight,
            checkpoint,
        })
    }
}

impl CrashDump {
    /// Drains the live plane into a dump: the obs snapshot, the flight
    /// recorder (as merged-trace JSON), and the given durable checkpoint.
    pub fn collect(run: &str, reason: &str, checkpoint: Option<Value>) -> CrashDump {
        CrashDump {
            run: run.to_string(),
            reason: reason.to_string(),
            wall_clock_ms: obs::now_ms(),
            snapshot: obs::snapshot(),
            flight: obs::events_to_json(&flight::snapshot()),
            checkpoint,
        }
    }

    /// Where a dump for `run` lives:
    /// `<RF_RESULTS_DIR|results>/obs/<run>.crashdump.json`.
    pub fn default_path(run: &str) -> PathBuf {
        Path::new(&obs::results_dir())
            .join("obs")
            .join(format!("{run}.crashdump.json"))
    }

    /// Collects and saves a dump for `run` at [`CrashDump::default_path`],
    /// returning the path written.
    ///
    /// # Errors
    ///
    /// Rejects invalid run names and propagates save failures with path
    /// context; never panics (it runs inside panic hooks).
    pub fn write(run: &str, reason: &str, checkpoint: Option<Value>) -> Result<String, String> {
        obs::validate_run_name(run)?;
        let path = Self::default_path(run);
        Self::collect(run, reason, checkpoint).save(&path)?;
        Ok(path.display().to_string())
    }
}

/// Chains a crash-dump writer onto the current panic hook: any panic in
/// this process first writes `results/obs/<run>.crashdump.json`, then
/// runs the previous hook (the default backtrace printer). Installed at
/// most once per process; later calls with a different run name are
/// ignored.
pub fn install_panic_hook(run: &str) {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    let run = run.to_string();
    INSTALLED.get_or_init(move || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = panic_reason(info);
            // A second panic inside a panic hook aborts the process;
            // shield the drain so a poisoned obs lock cannot eat the
            // original report.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                CrashDump::write(&run, &reason, None)
            }));
            match outcome {
                Ok(Ok(path)) => eprintln!("crash dump written: {path}"),
                Ok(Err(e)) => eprintln!("crash dump failed: {e}"),
                Err(_) => eprintln!("crash dump failed: telemetry state unusable mid-panic"),
            }
            prev(info);
        }));
    });
}

fn panic_reason(info: &std::panic::PanicHookInfo<'_>) -> String {
    let payload = info.payload();
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string());
    match info.location() {
        Some(loc) => format!("panic at {}:{}: {message}", loc.file(), loc.line()),
        None => format!("panic: {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_event;

    fn sample_dump() -> CrashDump {
        let _serial = obs::exclusive();
        obs::reset();
        obs::set_filter("crashtest=debug").unwrap();
        obs::counter("crashtest.steps").add(5);
        {
            let _scope = obs::scope(2, 0);
            trace_event!(target: "crashtest", obs::Level::Debug, "last_words", step = 5u64);
        }
        let dump = CrashDump::collect(
            "crashtest",
            "simulated death",
            Some(Value::object([
                ("kind", Value::from("fleet_checkpoint")),
                ("schema_version", Value::from(1u64)),
            ])),
        );
        obs::set_filter("").unwrap();
        obs::set_metrics_enabled(false);
        obs::reset();
        dump
    }

    #[test]
    fn roundtrips_through_json() {
        let dump = sample_dump();
        let back = CrashDump::parse_str(&dump.to_json().to_pretty()).expect("roundtrip");
        assert_eq!(back, dump);
        assert!(back.flight.as_array().is_some_and(|a| !a.is_empty()));
        assert!(back.checkpoint.is_some());
    }

    #[test]
    fn truncated_dump_is_rejected() {
        let dump = sample_dump();
        let text = dump.to_json().to_pretty();
        let truncated = &text[..text.len() / 2];
        let err = CrashDump::parse_str(truncated).expect_err("truncation must not parse");
        assert!(err.contains("invalid JSON"), "unexpected error: {err}");
    }

    #[test]
    fn structural_damage_is_rejected() {
        let dump = sample_dump();
        let mut doc = dump.to_json();
        doc.set("reason", Value::from(""));
        assert!(CrashDump::from_json(&doc).is_err(), "empty reason accepted");
        let mut doc = dump.to_json();
        doc.set("snapshot", Value::Object(Vec::new()));
        assert!(
            CrashDump::from_json(&doc).is_err(),
            "gutted snapshot accepted"
        );
        let mut doc = dump.to_json();
        doc.set("kind", Value::from("repro_case"));
        assert!(CrashDump::from_json(&doc).is_err(), "foreign kind accepted");
        let mut doc = dump.to_json();
        doc.set("checkpoint", Value::from(42u64));
        assert!(
            CrashDump::from_json(&doc).is_err(),
            "non-object checkpoint accepted"
        );
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dump = CrashDump::collect("crashtest2", "no fleet involved", None);
        let back = CrashDump::parse_str(&dump.to_json().to_pretty()).expect("roundtrip");
        assert_eq!(back.checkpoint, None);
    }

    #[test]
    fn panic_hook_writes_a_dump() {
        let _serial = obs::exclusive();
        let dir = std::env::temp_dir().join(format!("rf_crashdump_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Scoped env override: this test owns obs::exclusive, and no other
        // test writes artifacts concurrently.
        std::env::set_var("RF_RESULTS_DIR", dir.display().to_string());
        install_panic_hook("hooktest");
        let joined = std::thread::Builder::new()
            .spawn(|| panic!("deliberate test panic"))
            .expect("spawn panicking thread")
            .join();
        std::env::remove_var("RF_RESULTS_DIR");
        assert!(joined.is_err(), "thread must have panicked");
        let path = dir.join("obs/hooktest.crashdump.json");
        let dump = CrashDump::load(&path).expect("hook wrote a loadable dump");
        assert!(
            dump.reason.contains("deliberate test panic"),
            "reason: {}",
            dump.reason
        );
        assert_eq!(dump.checkpoint, None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
