//! Shared utilities for the RelaxFault reproduction workspace.
//!
//! This crate deliberately stays small and dependency-light. It provides the
//! three ingredients every other crate needs:
//!
//! * [`bits`] — bit-field scatter/gather and linear maps over GF(2). DRAM and
//!   cache address mappings (including XOR set-index hashing) are linear
//!   transforms of address bits, so we model them as such and can *prove*
//!   properties (bijectivity, rank) instead of hoping.
//! * [`dist`] — the random distributions the Monte Carlo fault model needs
//!   (Poisson, lognormal, log-uniform), implemented directly on top of
//!   [`rand`] so numeric behaviour is documented and reproducible.
//! * [`stats`] — streaming summaries, empirical CDFs, and binomial confidence
//!   intervals used by every experiment harness.
//! * [`table`] — minimal fixed-width table/CSV rendering for the
//!   figure-regeneration binaries.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::bits::BitMatrix;
//!
//! // A 2-bit swap is a bijective linear map.
//! let swap = BitMatrix::from_rows(2, &[0b10, 0b01]);
//! assert_eq!(swap.apply(0b01), 0b10);
//! assert!(swap.is_invertible());
//! ```

pub mod bits;
pub mod dist;
pub mod stats;
pub mod table;
