//! Shared utilities for the RelaxFault reproduction workspace.
//!
//! This crate has **zero external dependencies** — it is the layer that
//! keeps the whole workspace building and testing fully offline. It
//! provides the ingredients every other crate needs:
//!
//! * [`bits`] — bit-field scatter/gather and linear maps over GF(2). DRAM and
//!   cache address mappings (including XOR set-index hashing) are linear
//!   transforms of address bits, so we model them as such and can *prove*
//!   properties (bijectivity, rank) instead of hoping.
//! * [`rng`] — deterministic pseudo-random generation (SplitMix64 seeding,
//!   xoshiro256\*\* core) behind the narrow [`rng::Rng`] trait the
//!   simulators are written against, validated by published test vectors.
//! * [`dist`] — the random distributions the Monte Carlo fault model needs
//!   (Poisson, lognormal, log-uniform), implemented directly on top of
//!   [`rng`] so numeric behaviour is documented and reproducible.
//! * [`persist`] — schema-versioned, kind-tagged JSON persistence with
//!   atomic writes and shared digest helpers; repro cases and fleet
//!   checkpoints both implement its [`persist::Persist`] trait.
//! * [`prop`] — a seeded property-test harness (generators over a recorded
//!   choice stream, with shrinking) the invariant suites run on.
//! * [`json`] — a minimal JSON value/emitter/parser for machine-readable
//!   results and scenario dumps.
//! * [`lanes`] — bitplane lanes (u64/u128) for the bit-sliced Monte Carlo
//!   trial kernel: transpose, popcount-reduce, lane-masked select, and the
//!   run-time [`lanes::LaneMode`] selector.
//! * [`obs`] — structured observability: leveled event tracing with a
//!   deterministic merged stream, a metrics registry (counters, gauges,
//!   log-linear histograms), RAII span timers, and text/JSON sinks, all
//!   gated to be free when disabled.
//! * [`export`] — exporters from the [`obs`] model to external tool
//!   formats: Chrome trace-event JSON (Perfetto-loadable) and Prometheus
//!   text exposition, both built on the in-repo JSON/text code.
//! * [`flight`] — the flight recorder: always-on bounded rings of the most
//!   recent events per thread, drainable at any time (the live `/flight`
//!   route and crash dumps read it).
//! * [`serve`] — an opt-in in-process HTTP endpoint serving `/metrics`,
//!   `/health`, `/progress`, and `/flight` from a live run.
//! * [`crashdump`] — drains the flight recorder, metrics, and manifest
//!   into a schema-versioned `crash_dump` artifact on panic or injected
//!   crash, with the newest durable fleet checkpoint embedded for replay.
//! * [`profiler`] — a self-sampling span profiler emitting
//!   flamegraph-folded stacks (`<run>.folded`) with no external tooling.
//! * [`hash`] — a fast deterministic (non-cryptographic) hasher plus
//!   `HashMap`/`HashSet` aliases for hot-loop lookups.
//! * [`stats`] — streaming summaries, empirical CDFs, and binomial confidence
//!   intervals used by every experiment harness.
//! * [`table`] — minimal fixed-width table/CSV rendering for the
//!   figure-regeneration binaries.
//! * [`timing`] — a tiny calibrated wall-clock harness for the bench
//!   targets.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::bits::BitMatrix;
//!
//! // A 2-bit swap is a bijective linear map.
//! let swap = BitMatrix::from_rows(2, &[0b10, 0b01]);
//! assert_eq!(swap.apply(0b01), 0b10);
//! assert!(swap.is_invertible());
//! ```

pub mod bits;
pub mod crashdump;
pub mod dist;
pub mod export;
pub mod flight;
pub mod hash;
pub mod history;
pub mod json;
pub mod lanes;
pub mod obs;
pub mod persist;
pub mod profiler;
pub mod prop;
pub mod rng;
pub mod serve;
pub mod stats;
pub mod table;
pub mod timing;
